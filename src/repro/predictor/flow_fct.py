"""FCT predictors for flow-level scheduling (§4.1 of the paper).

Each predictor answers, for a hypothetical new flow of size ``s0`` placed on
a link with state ``F_l``:

* ``fct(s0, link)`` — FCT(f0, l), equations (3), (4), (7);
* ``delta(s0, s_f, link)`` — ΔFCT(f, l), the increase the new flow causes
  to an existing flow of residual size ``s_f``, equations (5), (8);
* ``delta_sum(s0, link)`` — Σ_{f∈F_l} ΔFCT(f, l);
* ``link_objective(s0, link)`` — FCT + ΣΔ, the per-link term of the
  alternative objective (2).

Path-level helpers take the bottleneck (max) across links, as the paper
does.  All predictors assume work-conserving scheduling and, per §4, ignore
future arrivals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.predictor.state import LinkState


class FlowFCTPredictor(ABC):
    """Completion-time model of one network scheduling policy."""

    #: Policy name this predictor models, e.g. ``"fair"``.
    name: str = "abstract"

    @abstractmethod
    def fct(self, new_size: float, link: LinkState) -> float:
        """Predicted FCT of a new flow of ``new_size`` bits on ``link``."""

    @abstractmethod
    def delta(self, new_size: float, existing_size: float, link: LinkState) -> float:
        """Predicted FCT increase of one existing flow due to the new one."""

    def delta_sum(self, new_size: float, link: LinkState) -> float:
        """Σ over existing flows of :meth:`delta`."""
        return sum(
            self.delta(new_size, s, link) for s in link.flow_sizes
        )

    def link_objective(self, new_size: float, link: LinkState) -> float:
        """The per-link term of objective (2): FCT(f0,l) + Σ ΔFCT(f,l)."""
        return self.fct(new_size, link) + self.delta_sum(new_size, link)

    # ------------------------------------------------------------------
    # Path (bottleneck) aggregation
    # ------------------------------------------------------------------
    def predict_path(self, new_size: float, links: Sequence[LinkState]) -> float:
        """max_l FCT(f0, l) — the new flow's own predicted completion."""
        if not links:
            return 0.0  # host-local transfer
        return max(self.fct(new_size, link) for link in links)

    def objective(self, new_size: float, links: Sequence[LinkState]) -> float:
        """Objective (2) for a candidate path: max_l (FCT + ΣΔ)."""
        if not links:
            return 0.0
        return max(self.link_objective(new_size, link) for link in links)


class FCFSPredictor(FlowFCTPredictor):
    """Equation (3): the new flow waits for every queued byte."""

    name = "fcfs"

    def fct(self, new_size: float, link: LinkState) -> float:
        return (new_size + link.total_bits) / link.capacity

    def delta(self, new_size: float, existing_size: float, link: LinkState) -> float:
        # The new flow is served last; existing flows are unaffected.
        return 0.0


class FairPredictor(FlowFCTPredictor):
    """Equations (4)-(5): fair sharing (also exact for LAS, §4.1.2 remark).

    By the time f0 finishes, each existing flow has transmitted
    ``min(s_f, s0)`` bits; smaller flows finish inside f0's lifetime and
    larger ones progress alongside it.
    """

    name = "fair"

    def fct(self, new_size: float, link: LinkState) -> float:
        shared = sum(min(s, new_size) for s in link.flow_sizes)
        return (new_size + shared) / link.capacity

    def delta(self, new_size: float, existing_size: float, link: LinkState) -> float:
        return min(existing_size, new_size) / link.capacity


class LASPredictor(FairPredictor):
    """LAS with preemption is equivalent to fair sharing (§4.1.2 remark)."""

    name = "las"


class SRPTPredictor(FlowFCTPredictor):
    """Equations (7)-(8): only smaller-or-equal flows are served first."""

    name = "srpt"

    def fct(self, new_size: float, link: LinkState) -> float:
        ahead = sum(s for s in link.flow_sizes if s <= new_size)
        return (new_size + ahead) / link.capacity

    def delta(self, new_size: float, existing_size: float, link: LinkState) -> float:
        if existing_size > new_size:
            return new_size / link.capacity
        return 0.0
