"""The paper's placement objectives (equations (1) and (2) of §4).

Objective (1) is the true increase in the sum of flow completion times due
to placing the new flow; computing it needs every cross-flow's full path.
Objective (2) is NEAT's per-link approximation: the bottleneck over the new
flow's links of ``FCT(f0,l) + Σ_f ΔFCT(f,l)``, which the network daemons can
evaluate from edge-link state alone.

This module implements both so the approximation quality (and the
invariance Propositions 4.1/4.2) can be measured directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import PredictionError
from repro.predictor.flow_fct import FlowFCTPredictor
from repro.predictor.state import LinkState
from repro.topology.base import LinkId


@dataclass(frozen=True)
class CrossFlowView:
    """An existing flow as seen by the objective computation.

    Attributes:
        size: residual size in bits.
        links: the links the flow traverses.
    """

    size: float
    links: Tuple[LinkId, ...]


def objective_one(
    predictor: FlowFCTPredictor,
    new_size: float,
    new_links: Sequence[LinkId],
    flows: Sequence[CrossFlowView],
    link_states: Mapping[LinkId, LinkState],
) -> float:
    """Equation (1): exact increase in the sum FCT over all active flows.

    Args:
        predictor: policy model for FCT / ΔFCT.
        new_size: size of the new flow f0 (bits).
        new_links: the candidate path p_{f0}.
        flows: every active flow (non-cross-flows are skipped internally).
        link_states: per-link state *including* every active flow.
    """
    for link_id in new_links:
        if link_id not in link_states:
            raise PredictionError(f"missing link state for {link_id!r}")

    new_link_set = set(new_links)

    # Term 1: the new flow's own bottleneck FCT.
    total = max(
        (predictor.fct(new_size, link_states[link_id]) for link_id in new_links),
        default=0.0,
    )

    # Term 2: per cross-flow increase of its bottleneck completion time.
    for flow in flows:
        if not new_link_set.intersection(flow.links):
            continue  # not a cross-flow
        before = 0.0
        after = 0.0
        for link_id in flow.links:
            state = link_states.get(link_id)
            if state is None:
                raise PredictionError(f"missing link state for {link_id!r}")
            own_view = state.without_one(flow.size)
            fct_before = predictor.fct(flow.size, own_view)
            fct_after = fct_before
            if link_id in new_link_set:
                fct_after += predictor.delta(new_size, flow.size, state)
            before = max(before, fct_before)
            after = max(after, fct_after)
        total += after - before
    return total


def objective_two(
    predictor: FlowFCTPredictor,
    new_size: float,
    new_links: Sequence[LinkId],
    link_states: Mapping[LinkId, LinkState],
) -> float:
    """Equation (2), bottleneck form: max_l (FCT(f0,l) + Σ ΔFCT(f,l)).

    This is what NEAT minimises; under Propositions 4.1/4.2 it ranks
    candidate placements identically to the fair-sharing FCT.
    """
    states = [link_states[link_id] for link_id in new_links]
    return predictor.objective(new_size, states)


def objective_two_upper(
    predictor: FlowFCTPredictor,
    new_size: float,
    new_links: Sequence[LinkId],
    link_states: Mapping[LinkId, LinkState],
) -> float:
    """The left-hand side of (2): max_l FCT + max_l ΣΔ (an upper bound on
    the bottleneck form, shown for completeness)."""
    if not new_links:
        return 0.0
    states = [link_states[link_id] for link_id in new_links]
    return max(predictor.fct(new_size, s) for s in states) + max(
        predictor.delta_sum(new_size, s) for s in states
    )


def build_link_states(
    flows: Sequence[CrossFlowView],
    capacities: Mapping[LinkId, float],
) -> Dict[LinkId, LinkState]:
    """Assemble per-link :class:`LinkState` from a set of flow views."""
    sizes: Dict[LinkId, list] = {link_id: [] for link_id in capacities}
    for flow in flows:
        for link_id in flow.links:
            if link_id in sizes:
                sizes[link_id].append(flow.size)
    return {
        link_id: LinkState(
            link_id=link_id,
            capacity=capacity,
            flow_sizes=tuple(sizes[link_id]),
        )
        for link_id, capacity in capacities.items()
    }
