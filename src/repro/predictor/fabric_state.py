"""Builders turning live fabric state into predictor snapshots.

Network daemons, omniscient baselines (minFCT), path-aware NEAT, and the
joint coflow placer all need the same two conversions:

* the residual flow sizes on a link -> :class:`LinkState`;
* the coflows crossing a link (grouped, with totals) -> :class:`CoflowLinkState`.

Centralising them keeps the grouping rules (bare flows count as singleton
coflows; totals are residual) identical everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.network.fabric import NetworkFabric
from repro.predictor.state import (
    CoflowLinkState,
    CoflowOnLink,
    LinkState,
    link_state_from_flows,
)
from repro.topology.base import LinkId


def flow_link_state(fabric: NetworkFabric, link_id: LinkId) -> LinkState:
    """Exact flow-level snapshot of one link (residual sizes)."""
    link = fabric.topology.link(link_id)
    return link_state_from_flows(
        link_id,
        link.capacity,
        (f.remaining for f in fabric.flows_on_link(link_id)),
    )


def coflow_link_state(fabric: NetworkFabric, link_id: LinkId) -> CoflowLinkState:
    """Exact coflow-level snapshot of one link.

    Flows of the same coflow are aggregated into one
    :class:`CoflowOnLink` (residual total + residual on-link bytes); bare
    flows become singleton coflows.
    """
    link = fabric.topology.link(link_id)
    groups: Dict[Tuple, List[float]] = {}
    for flow in fabric.flows_on_link(link_id):
        if flow.coflow is None:
            key = ("flow", flow.flow_id)
            entry = groups.setdefault(
                key, [flow.remaining, 0.0, flow.arrival_time]
            )
        else:
            key = ("coflow", flow.coflow.coflow_id)
            entry = groups.setdefault(
                key,
                [
                    max(flow.coflow.remaining_total, 1e-9),
                    0.0,
                    flow.coflow.arrival_time,
                ],
            )
        entry[1] += flow.remaining
    return CoflowLinkState(
        link_id=link_id,
        capacity=link.capacity,
        coflows=tuple(
            CoflowOnLink(
                total_size=total,
                size_on_link=min(on_link, total),
                arrival_time=arrival,
            )
            for total, on_link, arrival in groups.values()
            if on_link > 0
        ),
    )
