"""NEAT's task performance predictor (SS4): the paper's core contribution.

Predicts the completion time of a task's data transfer (FCT for flows,
CCT for coflows) on a candidate link/path under a given network scheduling
policy and the current network state, plus the increase it inflicts on
existing traffic (objectives (1) and (2)) and histogram-compressed
approximations of both (SS5.2).
"""

from repro.predictor.coflow_cct import (
    CoflowCCTPredictor,
    CoflowFCFSPredictor,
    CoflowFairPredictor,
    CoflowLASPredictor,
    PermutationPredictor,
    TCFPredictor,
)
from repro.predictor.compressed import CompressedLinkState, exponential_bins
from repro.predictor.fabric_state import coflow_link_state, flow_link_state
from repro.predictor.flow_fct import (
    FCFSPredictor,
    FairPredictor,
    FlowFCTPredictor,
    LASPredictor,
    SRPTPredictor,
)
from repro.predictor.objectives import (
    CrossFlowView,
    build_link_states,
    objective_one,
    objective_two,
    objective_two_upper,
)
from repro.predictor.registry import (
    available_coflow_predictors,
    available_flow_predictors,
    make_coflow_predictor,
    make_flow_predictor,
    register_coflow_predictor,
    register_flow_predictor,
)
from repro.predictor.state import (
    CoflowLinkState,
    CoflowOnLink,
    LinkState,
    link_state_from_flows,
)

__all__ = [
    "FlowFCTPredictor",
    "FCFSPredictor",
    "FairPredictor",
    "LASPredictor",
    "SRPTPredictor",
    "CoflowCCTPredictor",
    "CoflowFCFSPredictor",
    "CoflowFairPredictor",
    "CoflowLASPredictor",
    "PermutationPredictor",
    "TCFPredictor",
    "LinkState",
    "flow_link_state",
    "coflow_link_state",
    "CoflowLinkState",
    "CoflowOnLink",
    "link_state_from_flows",
    "CompressedLinkState",
    "exponential_bins",
    "CrossFlowView",
    "build_link_states",
    "objective_one",
    "objective_two",
    "objective_two_upper",
    "make_flow_predictor",
    "make_coflow_predictor",
    "register_flow_predictor",
    "register_coflow_predictor",
    "available_flow_predictors",
    "available_coflow_predictors",
]
