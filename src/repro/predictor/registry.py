"""Name-based registries for FCT and CCT predictors."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigError
from repro.predictor.coflow_cct import (
    CoflowCCTPredictor,
    CoflowFCFSPredictor,
    CoflowFairPredictor,
    CoflowLASPredictor,
    TCFPredictor,
)
from repro.predictor.flow_fct import (
    FCFSPredictor,
    FairPredictor,
    FlowFCTPredictor,
    LASPredictor,
    SRPTPredictor,
)

_FLOW_FACTORIES: Dict[str, Callable[[], FlowFCTPredictor]] = {
    "fcfs": FCFSPredictor,
    "fair": FairPredictor,
    "las": LASPredictor,
    "srpt": SRPTPredictor,
    # transports -> the policies they approximate
    "dctcp": FairPredictor,
    "l2dct": LASPredictor,
    "pase": SRPTPredictor,
}

_COFLOW_FACTORIES: Dict[str, Callable[[], CoflowCCTPredictor]] = {
    "coflow-fcfs": CoflowFCFSPredictor,
    "baraat": CoflowFCFSPredictor,
    "coflow-fair": CoflowFairPredictor,
    "coflow-las": CoflowLASPredictor,
    "aalo": CoflowLASPredictor,
    "tcf": TCFPredictor,
    # Varys (SEBF) and SCF both schedule small-total-size coflows first;
    # the paper predicts their CCT with the TCF model (SS6.1).
    "varys": TCFPredictor,
    "sebf": TCFPredictor,
    "scf": TCFPredictor,
}


def make_flow_predictor(name: str) -> FlowFCTPredictor:
    """Instantiate the FCT predictor registered under ``name``."""
    try:
        return _FLOW_FACTORIES[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_FLOW_FACTORIES))
        raise ConfigError(
            f"unknown FCT predictor {name!r}; known: {known}"
        ) from None


def make_coflow_predictor(name: str) -> CoflowCCTPredictor:
    """Instantiate the CCT predictor registered under ``name``."""
    try:
        return _COFLOW_FACTORIES[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_COFLOW_FACTORIES))
        raise ConfigError(
            f"unknown CCT predictor {name!r}; known: {known}"
        ) from None


def register_flow_predictor(
    name: str, factory: Callable[[], FlowFCTPredictor]
) -> None:
    """Register a custom FCT predictor (the 'pluggable' hook of SS4)."""
    _FLOW_FACTORIES[name.lower()] = factory


def register_coflow_predictor(
    name: str, factory: Callable[[], CoflowCCTPredictor]
) -> None:
    """Register a custom CCT predictor."""
    _COFLOW_FACTORIES[name.lower()] = factory


def available_flow_predictors() -> tuple:
    return tuple(sorted(_FLOW_FACTORIES))


def available_coflow_predictors() -> tuple:
    return tuple(sorted(_COFLOW_FACTORIES))
