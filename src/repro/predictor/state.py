"""Network-state snapshots consumed by the completion-time predictors.

The predictors of §4 need, per link: the link bandwidth and the *residual*
sizes of the flows (or per-link loads of the coflows) crossing it.  These
snapshot types decouple the predictor math from the simulator, so the same
predictor code runs inside the network daemons (on live fabric state), in
unit tests (on hand-built states), and on compressed states (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import PredictionError
from repro.topology.base import LinkId


@dataclass(frozen=True)
class LinkState:
    """Residual flow sizes on one link (flow-level scheduling).

    Attributes:
        link_id: which link this snapshot describes.
        capacity: bandwidth B_l in bits/sec.
        flow_sizes: residual sizes (bits) of the cross-flows F_l.
    """

    link_id: LinkId
    capacity: float
    flow_sizes: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise PredictionError(
                f"link {self.link_id!r} needs positive capacity, "
                f"got {self.capacity!r}"
            )
        if any(s <= 0 for s in self.flow_sizes):
            raise PredictionError("flow sizes must be positive")

    @property
    def total_bits(self) -> float:
        """Total queued bits on the link."""
        return sum(self.flow_sizes)

    @property
    def num_flows(self) -> int:
        return len(self.flow_sizes)

    @property
    def min_flow_size(self) -> float:
        """The node-state quantity of §5.1.1 (inf when idle)."""
        return min(self.flow_sizes) if self.flow_sizes else float("inf")

    def without_one(self, size: float) -> "LinkState":
        """Snapshot with one flow of ``size`` removed (used when computing
        an *existing* flow's FCT, where it must not count itself)."""
        sizes = list(self.flow_sizes)
        try:
            sizes.remove(size)
        except ValueError:
            raise PredictionError(
                f"no flow of size {size!r} on link {self.link_id!r}"
            ) from None
        return LinkState(self.link_id, self.capacity, tuple(sizes))


@dataclass(frozen=True)
class CoflowOnLink:
    """One cross-coflow's view from a link (§4.2 quantities).

    Attributes:
        total_size: s_c — the coflow's total residual bytes (bits here).
        size_on_link: s_{c,l} — its residual bytes crossing this link.
        arrival_time: used by permutation predictors that order by arrival.
    """

    total_size: float
    size_on_link: float
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if self.total_size <= 0:
            raise PredictionError("coflow total size must be positive")
        if not 0 < self.size_on_link <= self.total_size + 1e-6:
            raise PredictionError(
                "coflow on-link size must be in (0, total_size]"
            )

    @property
    def normalized_load(self) -> float:
        """s_{c,l} / s_c — the e_{l,n} building block of §5.2."""
        return self.size_on_link / self.total_size


@dataclass(frozen=True)
class CoflowLinkState:
    """Residual coflow loads on one link (coflow-level scheduling)."""

    link_id: LinkId
    capacity: float
    coflows: Tuple[CoflowOnLink, ...] = ()

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise PredictionError(
                f"link {self.link_id!r} needs positive capacity, "
                f"got {self.capacity!r}"
            )

    @property
    def total_link_bits(self) -> float:
        """Total residual bits crossing this link over all coflows."""
        return sum(c.size_on_link for c in self.coflows)


def link_state_from_flows(
    link_id: LinkId,
    capacity: float,
    remaining_sizes: Iterable[float],
) -> LinkState:
    """Build a :class:`LinkState`, silently dropping finished (<=0) flows."""
    sizes = tuple(s for s in remaining_sizes if s > 0)
    return LinkState(link_id=link_id, capacity=capacity, flow_sizes=sizes)
