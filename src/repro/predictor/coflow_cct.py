"""CCT predictors for coflow-level scheduling (§4.2 of the paper).

A hypothetical new coflow ``c0`` is described, per candidate link, by the
pair ``(s_{c0}, s_{c0,l})`` — its total size and the portion crossing that
link.  Assumptions (§4.2): flows of a coflow share one priority and finish
simultaneously (Varys-style rate adaptation), so a coflow transferring ``b``
bytes in total moves ``b * s_{c,l} / s_c`` bytes over link ``l``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence, Tuple

from repro.predictor.state import CoflowLinkState, CoflowOnLink


class CoflowCCTPredictor(ABC):
    """Completion-time model of one coflow scheduling policy."""

    #: Policy name this predictor models, e.g. ``"varys"``.
    name: str = "abstract"

    @abstractmethod
    def cct(
        self, new_total: float, new_on_link: float, link: CoflowLinkState
    ) -> float:
        """Predicted CCT contribution of link ``l`` for the new coflow."""

    @abstractmethod
    def delta_sum(
        self, new_total: float, new_on_link: float, link: CoflowLinkState
    ) -> float:
        """Σ over existing coflows of ΔCCT(c, l)."""

    def link_objective(
        self, new_total: float, new_on_link: float, link: CoflowLinkState
    ) -> float:
        """Per-link term of objective (2): CCT(c0,l) + Σ ΔCCT(c,l)."""
        return self.cct(new_total, new_on_link, link) + self.delta_sum(
            new_total, new_on_link, link
        )

    # ------------------------------------------------------------------
    # Path-set (bottleneck) aggregation
    # ------------------------------------------------------------------
    def predict_links(
        self,
        new_total: float,
        placements: Sequence[Tuple[float, CoflowLinkState]],
    ) -> float:
        """max over (on_link_size, link) pairs of the new coflow's CCT."""
        if not placements:
            return 0.0
        return max(
            self.cct(new_total, on_link, link) for on_link, link in placements
        )

    def objective(
        self,
        new_total: float,
        placements: Sequence[Tuple[float, CoflowLinkState]],
    ) -> float:
        """Objective (2) over the links the new coflow would traverse."""
        if not placements:
            return 0.0
        return max(
            self.link_objective(new_total, on_link, link)
            for on_link, link in placements
        )


class CoflowFCFSPredictor(CoflowCCTPredictor):
    """Equation (10): all existing coflow bytes on the link go first."""

    name = "coflow-fcfs"

    def cct(
        self, new_total: float, new_on_link: float, link: CoflowLinkState
    ) -> float:
        queued = sum(c.size_on_link for c in link.coflows)
        return (new_on_link + queued) / link.capacity

    def delta_sum(
        self, new_total: float, new_on_link: float, link: CoflowLinkState
    ) -> float:
        return 0.0


class CoflowFairPredictor(CoflowCCTPredictor):
    """Equations (11)-(13): fair sharing / LAS at coflow granularity.

    Existing coflows smaller (in total size) than c0 finish within c0's
    lifetime, contributing their full on-link load; larger ones contribute
    proportionally to the progress they make (s_{c0} of their total).
    """

    name = "coflow-fair"

    def cct(
        self, new_total: float, new_on_link: float, link: CoflowLinkState
    ) -> float:
        load = new_on_link
        for c in link.coflows:
            if c.total_size <= new_total:
                load += c.size_on_link
            else:
                load += new_total * c.size_on_link / c.total_size
        return load / link.capacity

    def delta_sum(
        self, new_total: float, new_on_link: float, link: CoflowLinkState
    ) -> float:
        # Equation (12) summed: (s_{c0,l} / s_{c0}) * min(s_c, s_{c0}) / B_l.
        total = 0.0
        for c in link.coflows:
            total += min(c.total_size, new_total)
        return (new_on_link / new_total) * total / link.capacity


class CoflowLASPredictor(CoflowFairPredictor):
    """Coflow LAS with preemption is modelled as coflow fair sharing."""

    name = "coflow-las"


class PermutationPredictor(CoflowCCTPredictor):
    """Equations (14)-(16): serve coflows sequentially in a permutation.

    The permutation is derived from a priority key over
    :class:`CoflowOnLink`; the new coflow's key is computed from its
    ``(total, on_link)`` pair.  TCF (smallest-total-coflow-first, eq (17))
    and FIFO orderings are the instances used in the paper.
    """

    name = "permutation"

    def __init__(
        self,
        key: Callable[[float, float, float], float],
        name: str = "permutation",
    ) -> None:
        """Args:
            key: maps ``(total_size, size_on_link, arrival_time)`` to a
                priority value; smaller is served earlier.
            name: registry/report name.
        """
        self._key = key
        self.name = name

    def _new_key(
        self, new_total: float, new_on_link: float
    ) -> float:
        # A newly arriving coflow has the latest arrival time; +inf keeps
        # FIFO-style keys consistent without knowing "now".
        return self._key(new_total, new_on_link, float("inf"))

    def cct(
        self, new_total: float, new_on_link: float, link: CoflowLinkState
    ) -> float:
        # Equation (14): bytes of every coflow at or ahead of c0's rank.
        new_key = self._new_key(new_total, new_on_link)
        ahead = sum(
            c.size_on_link
            for c in link.coflows
            if self._key(c.total_size, c.size_on_link, c.arrival_time)
            <= new_key
        )
        return (new_on_link + ahead) / link.capacity

    def delta_sum(
        self, new_total: float, new_on_link: float, link: CoflowLinkState
    ) -> float:
        # Equation (15) summed: each lower-priority coflow waits for the
        # new coflow's on-link bytes.
        new_key = self._new_key(new_total, new_on_link)
        behind = sum(
            1
            for c in link.coflows
            if self._key(c.total_size, c.size_on_link, c.arrival_time)
            > new_key
        )
        return new_on_link * behind / link.capacity


class TCFPredictor(PermutationPredictor):
    """Smallest-total-coflow-first (eq (17)); the SRPT analogue (Varys/SCF)."""

    name = "tcf"

    def __init__(self) -> None:
        super().__init__(
            key=lambda total, on_link, arrival: total, name="tcf"
        )
