"""Compressed flow state (§5.2) and its approximate predictions.

Keeping per-flow state at the network daemon grows linearly with load;
NEAT instead quantises flow sizes into a fixed number of bins per link and
keeps only summary statistics per bin:

* flow scheduling — per bin ``n``: bounds ``[s^(1), s^(2))``, total bits
  ``b_{l,n}``, flow count ``c_{l,n}``  (equation (18));
* coflow scheduling — additionally total on-link load ``d_{l,n}`` and
  total normalised load ``e_{l,n} = Σ s_{c,l}/s_c``  (equations (19)-(21)).

Bin boundaries are a design parameter; for heavy-tailed datacenter traffic
the paper recommends exponentially growing bins, which
:func:`exponential_bins` provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import PredictionError
from repro.predictor.state import CoflowLinkState, LinkState
from repro.topology.base import LinkId


def exponential_bins(
    min_size: float, max_size: float, count: int
) -> Tuple[float, ...]:
    """Geometrically spaced bin boundaries covering [min_size, max_size].

    Returns ``count + 1`` ascending boundaries; the first is 0 so no flow
    underflows, and the last is +inf so none overflows.
    """
    if count < 1:
        raise PredictionError(f"need at least one bin, got {count}")
    if not 0 < min_size < max_size:
        raise PredictionError(
            f"need 0 < min_size < max_size, got {min_size!r}, {max_size!r}"
        )
    if count == 1:
        return (0.0, float("inf"))
    ratio = (max_size / min_size) ** (1.0 / (count - 1))
    inner = [min_size * ratio ** i for i in range(count - 1)]
    return (0.0, *inner, float("inf"))


@dataclass
class _Bin:
    """Summary statistics for one flow-size bin on one link."""

    lower: float
    upper: float
    count: int = 0          # c_{l,n}
    total_bits: float = 0.0  # b_{l,n}
    link_load: float = 0.0   # d_{l,n} (coflows only)
    normalized_load: float = 0.0  # e_{l,n} (coflows only)


class CompressedLinkState:
    """Histogram-compressed view of one link's flows (or coflows).

    The size of this structure is O(number of bins), independent of the
    number of flows — the paper's scalability argument.  Flows are added
    and removed incrementally as they start/finish; the approximate
    predictions mirror the exact formulas of §4 with per-bin sums.
    """

    def __init__(
        self,
        link_id: LinkId,
        capacity: float,
        boundaries: Sequence[float],
    ) -> None:
        if capacity <= 0:
            raise PredictionError("capacity must be positive")
        if len(boundaries) < 2 or any(
            nxt <= cur for cur, nxt in zip(boundaries, boundaries[1:])
        ):
            raise PredictionError("bin boundaries must be strictly ascending")
        self.link_id = link_id
        self.capacity = float(capacity)
        self._bounds = tuple(float(b) for b in boundaries)
        self._bins = [
            _Bin(lower=lo, upper=hi)
            for lo, hi in zip(self._bounds, self._bounds[1:])
        ]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def num_bins(self) -> int:
        return len(self._bins)

    def bin_index(self, size: float) -> int:
        """Index of the bin containing ``size`` (m_l(s) in the paper)."""
        if size < 0:
            raise PredictionError(f"size must be >= 0, got {size!r}")
        lo, hi = 0, len(self._bins) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if size < self._bins[mid].upper:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def add_flow(self, size: float) -> None:
        """Account for a new flow of (residual) ``size`` bits."""
        b = self._bins[self.bin_index(size)]
        b.count += 1
        b.total_bits += size

    def remove_flow(self, size: float) -> None:
        """Remove a flow previously added with the same ``size``."""
        b = self._bins[self.bin_index(size)]
        # Tolerance is relative: at multi-gigabit magnitudes one float ulp
        # of the running sum exceeds any fixed absolute epsilon.
        slack = 1e-6 + b.total_bits * 1e-9
        if b.count < 1 or b.total_bits < size - slack:
            raise PredictionError(
                f"removing unknown flow of size {size!r} from "
                f"link {self.link_id!r}"
            )
        b.count -= 1
        b.total_bits = max(0.0, b.total_bits - size)

    def add_coflow(self, total_size: float, size_on_link: float) -> None:
        """Account for a coflow with the given total / on-link loads."""
        if not 0 < size_on_link <= total_size + 1e-6:
            raise PredictionError("on-link size must be in (0, total]")
        b = self._bins[self.bin_index(total_size)]
        b.count += 1
        b.total_bits += total_size
        b.link_load += size_on_link
        b.normalized_load += size_on_link / total_size

    def remove_coflow(self, total_size: float, size_on_link: float) -> None:
        """Remove a coflow previously added with identical loads."""
        b = self._bins[self.bin_index(total_size)]
        if b.count < 1:
            raise PredictionError(
                f"removing unknown coflow from link {self.link_id!r}"
            )
        b.count -= 1
        b.total_bits = max(0.0, b.total_bits - total_size)
        b.link_load = max(0.0, b.link_load - size_on_link)
        b.normalized_load = max(
            0.0, b.normalized_load - size_on_link / total_size
        )

    # ------------------------------------------------------------------
    # Approximate predictions
    # ------------------------------------------------------------------
    def fair_fct(self, new_size: float) -> float:
        """Equation (18): approximate fair-sharing FCT.

        Bins at or below the new flow's bin contribute their full bits
        (those flows are assumed to finish within f0's lifetime); higher
        bins contribute ``new_size`` per flow.
        """
        p = self.bin_index(new_size)
        load = new_size
        for n, b in enumerate(self._bins):
            if n <= p:
                load += b.total_bits
            else:
                load += new_size * b.count
        return load / self.capacity

    def fair_cct(self, new_total: float, new_on_link: float) -> float:
        """Equation (19): approximate fair-sharing CCT."""
        q = self.bin_index(new_total)
        load = new_on_link
        for n, b in enumerate(self._bins):
            if n <= q:
                load += b.link_load
            else:
                load += new_total * b.normalized_load
        return load / self.capacity

    def fair_cct_delta_sum(self, new_total: float, new_on_link: float) -> float:
        """Equation (20): approximate Σ ΔCCT under fair sharing."""
        q = self.bin_index(new_total)
        acc = 0.0
        for n, b in enumerate(self._bins):
            if n <= q:
                acc += b.total_bits
            else:
                acc += new_total * b.count
        return (new_on_link / (self.capacity * new_total)) * acc

    def tcf_objective(self, new_total: float, new_on_link: float) -> float:
        """Equation (21): approximate objective (2) under TCF scheduling."""
        q = self.bin_index(new_total)
        acc = new_on_link
        for n, b in enumerate(self._bins):
            if n <= q:
                acc += b.link_load
            else:
                acc += new_on_link * b.count
        return acc / self.capacity

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    @classmethod
    def from_link_state(
        cls, state: LinkState, boundaries: Sequence[float]
    ) -> "CompressedLinkState":
        """Compress an exact flow-level :class:`LinkState`."""
        compressed = cls(state.link_id, state.capacity, boundaries)
        for size in state.flow_sizes:
            compressed.add_flow(size)
        return compressed

    @classmethod
    def from_coflow_state(
        cls, state: CoflowLinkState, boundaries: Sequence[float]
    ) -> "CompressedLinkState":
        """Compress an exact coflow-level :class:`CoflowLinkState`."""
        compressed = cls(state.link_id, state.capacity, boundaries)
        for c in state.coflows:
            compressed.add_coflow(c.total_size, c.size_on_link)
        return compressed
