"""Exception hierarchy for the repro (NEAT) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the discrete-event engine reaches an inconsistent state."""


class TopologyError(ReproError):
    """Raised for invalid topology construction or lookups."""


class RoutingError(TopologyError):
    """Raised when no route exists between two topology nodes."""


class FlowError(ReproError):
    """Raised for invalid flow definitions or state transitions."""


class ShadowVerifyError(FlowError):
    """Raised when a scoped (incremental) rate allocation disagrees with the
    full-recompute shadow oracle run side-by-side in ``shadow_verify`` mode."""


class CoflowError(ReproError):
    """Raised for invalid coflow definitions or state transitions."""


class PredictionError(ReproError):
    """Raised when a completion-time prediction cannot be produced."""


class PlacementError(ReproError):
    """Raised when a placement policy cannot place a task."""


class WorkloadError(ReproError):
    """Raised for malformed workload specifications."""


class DaemonError(ReproError):
    """Raised for control-plane (daemon/RPC) protocol violations."""


class DaemonUnreachable(DaemonError):
    """Raised by the message bus when the destination host is down (or the
    endpoint unregistered) under an active fault plan."""


class MessageDropped(DaemonError):
    """Raised by the message bus when a fault plan's loss window drops a
    synchronous request (the caller sees a lost RPC, not a reply)."""


class FaultError(ReproError):
    """Raised for malformed fault plans or invalid fault injections."""


class ConfigError(ReproError):
    """Raised for invalid experiment configuration."""
