"""Unit helpers and constants.

The simulator's canonical units are:

* **time** — seconds (float)
* **data** — bits (float; fractional bits are fine in the fluid model)
* **rate** — bits per second (float)

Helpers below convert human-friendly quantities into canonical units, and
format canonical values back for reports.  Keeping every conversion in one
module avoids the classic megabyte-vs-mebibyte drift between subsystems.
"""

from __future__ import annotations

# Data sizes (decimal, as used in networking).
KILOBIT = 1e3
MEGABIT = 1e6
GIGABIT = 1e9

BYTE = 8.0
KILOBYTE = 8e3
MEGABYTE = 8e6
GIGABYTE = 8e9

# Rates.
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9

# Times.
MICROSECOND = 1e-6
MILLISECOND = 1e-3


def bits(value: float) -> float:
    """Identity helper for readability at call sites."""
    return float(value)


def kilobytes(value: float) -> float:
    """Convert kilobytes to bits."""
    return float(value) * KILOBYTE


def megabytes(value: float) -> float:
    """Convert megabytes to bits."""
    return float(value) * MEGABYTE


def gigabytes(value: float) -> float:
    """Convert gigabytes to bits."""
    return float(value) * GIGABYTE


def gbps(value: float) -> float:
    """Convert gigabits-per-second to bits-per-second."""
    return float(value) * GBPS


def mbps(value: float) -> float:
    """Convert megabits-per-second to bits-per-second."""
    return float(value) * MBPS


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * MICROSECOND


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * MILLISECOND


def format_bits(value: float) -> str:
    """Render a bit count with an adaptive unit, e.g. ``'12.5 MB'``.

    Sizes are shown in (decimal) bytes because datacenter traces quote flow
    sizes in bytes.
    """
    nbytes = value / BYTE
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if nbytes >= scale:
            return f"{nbytes / scale:.1f} {unit}"
    return f"{nbytes:.0f} B"


def format_time(value: float) -> str:
    """Render seconds with an adaptive unit, e.g. ``'312 us'``."""
    if value >= 1.0:
        return f"{value:.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f} ms"
    return f"{value * 1e6:.0f} us"


def format_rate(value: float) -> str:
    """Render bits/second with an adaptive unit, e.g. ``'1.0 Gbps'``."""
    for unit, scale in (("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        if value >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value:.0f} bps"
