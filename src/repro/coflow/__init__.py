"""Coflow abstraction, schedulers, and CCT tracking."""

from repro.coflow.coflow import Coflow, CoflowId, CoflowRecord
from repro.coflow.policies import (
    CoflowFCFSAllocator,
    CoflowFairAllocator,
    CoflowLASAllocator,
    SCFAllocator,
    VarysAllocator,
    available_coflow_policies,
    make_coflow_allocator,
    register_coflow_policy,
)
from repro.coflow.tracking import CoflowTracker

__all__ = [
    "Coflow",
    "CoflowId",
    "CoflowRecord",
    "CoflowTracker",
    "VarysAllocator",
    "SCFAllocator",
    "CoflowFCFSAllocator",
    "CoflowLASAllocator",
    "CoflowFairAllocator",
    "make_coflow_allocator",
    "register_coflow_policy",
    "available_coflow_policies",
]
