"""Coflow lifecycle tracking on top of the network fabric.

:class:`CoflowTracker` is the application-facing entry point for coflow
traffic: it mints :class:`~repro.coflow.coflow.Coflow` objects, submits
their flows through the fabric, and appends a
:class:`~repro.coflow.coflow.CoflowRecord` to its log when a sealed
coflow's last flow completes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.coflow.coflow import Coflow, CoflowRecord
from repro.errors import CoflowError
from repro.network.fabric import NetworkFabric
from repro.network.flow import Flow, FlowRecord
from repro.topology.base import LinkId, NodeId

if TYPE_CHECKING:  # pragma: no cover - avoids a coflow<->telemetry cycle
    from repro.telemetry import Telemetry


class CoflowTracker:
    """Creates coflows, submits their flows, and records CCTs."""

    def __init__(
        self,
        fabric: NetworkFabric,
        *,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self._fabric = fabric
        self._records: List[CoflowRecord] = []
        self._open: Dict[int, Coflow] = {}
        self._next_id = 0
        self._listeners: List = []
        fabric.add_completion_listener(self._on_flow_done)
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._trace = telemetry.trace
        # Causal tracer (None when disabled): ties each sealed coflow and
        # its completion to the task trace that created it.
        self._causal = telemetry.causal if telemetry.causal.active else None
        reg = telemetry.registry
        if reg.enabled:
            self._ctr_submitted = reg.counter("coflow.coflows_submitted")
            self._ctr_completed = reg.counter("coflow.coflows_completed")
            self._hist_cct = reg.histogram("coflow.cct_seconds")
        else:
            self._ctr_submitted = None
            self._ctr_completed = None
            self._hist_cct = None

    def add_completion_listener(self, listener) -> None:
        """Register ``listener(coflow, record)`` fired at each coflow CCT."""
        self._listeners.append(listener)

    @property
    def fabric(self) -> NetworkFabric:
        return self._fabric

    @property
    def records(self) -> Sequence[CoflowRecord]:
        """CCT records, in completion order."""
        return tuple(self._records)

    # ------------------------------------------------------------------
    # Coflow lifecycle
    # ------------------------------------------------------------------
    def new_coflow(self, *, tag: str = "") -> Coflow:
        """Create an (unsealed) coflow arriving now."""
        coflow = Coflow(
            coflow_id=self._next_id,
            arrival_time=self._fabric.engine.now,
            tag=tag,
        )
        self._next_id += 1
        self._open[coflow.coflow_id] = coflow
        return coflow

    def submit_flow(
        self, coflow: Coflow, src: NodeId, dst: NodeId, size: float
    ) -> Flow:
        """Submit one constituent flow of ``coflow``."""
        if coflow.coflow_id not in self._open:
            raise CoflowError(
                f"coflow {coflow.coflow_id} is not open in this tracker"
            )
        return self._fabric.submit(src, dst, size, tag=coflow.tag, coflow=coflow)

    def submit_coflow(
        self,
        transfers: Iterable[Tuple[NodeId, NodeId, float]],
        *,
        tag: str = "",
    ) -> Coflow:
        """Convenience: create, populate, and seal a coflow in one call.

        Args:
            transfers: ``(src, dst, size_bits)`` triples.
        """
        coflow = self.new_coflow(tag=tag)
        count = 0
        for src, dst, size in transfers:
            self.submit_flow(coflow, src, dst, size)
            count += 1
        if count == 0:
            raise CoflowError("submit_coflow needs at least one transfer")
        self.seal(coflow)
        return coflow

    def seal(self, coflow: Coflow) -> None:
        """Mark the coflow complete-on-submission and, if all of its flows
        already finished (e.g. all were host-local), record it now."""
        coflow.seal()
        if self._ctr_submitted is not None:
            self._ctr_submitted.inc()
        if self._trace.active:
            self._trace.emit(
                "coflow_arrival",
                coflow.arrival_time,
                {
                    "coflow_id": coflow.coflow_id,
                    "num_flows": len(coflow.flows),
                    "total_size": coflow.total_size,
                    "tag": coflow.tag,
                },
            )
        if self._causal is not None:
            self._causal.on_coflow(
                coflow.arrival_time,
                coflow.coflow_id,
                tag=coflow.tag,
                flows=[flow.flow_id for flow in coflow.flows],
                total=coflow.total_size,
            )
        if coflow.finished:
            if coflow.completion_time is None:
                coflow.completion_time = self._fabric.engine.now
            self._finalize(coflow)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def optimal_cct(self, coflow: Coflow) -> float:
        """Empty-network CCT: the coflow's intrinsic bottleneck duration."""
        demand: Dict[LinkId, float] = {}
        for flow in coflow.flows:
            for link_id in flow.path:
                demand[link_id] = demand.get(link_id, 0.0) + flow.size
        gamma = 0.0
        topo = self._fabric.topology
        for link_id, bits in demand.items():
            gamma = max(gamma, bits / topo.link(link_id).capacity)
        return gamma

    def _on_flow_done(self, flow: Flow, record: FlowRecord) -> None:
        coflow = flow.coflow
        if coflow is None or coflow.coflow_id not in self._open:
            return
        if coflow.finished:
            self._finalize(coflow)

    def _finalize(self, coflow: Coflow) -> None:
        self._open.pop(coflow.coflow_id, None)
        record = CoflowRecord(
            coflow_id=coflow.coflow_id,
            num_flows=len(coflow.flows),
            total_size=coflow.total_size,
            arrival_time=coflow.arrival_time,
            completion_time=coflow.completion_time
            if coflow.completion_time is not None
            else self._fabric.engine.now,
            optimal_cct=self.optimal_cct(coflow),
            tag=coflow.tag,
        )
        self._records.append(record)
        if self._ctr_completed is not None:
            self._ctr_completed.inc()
            self._hist_cct.observe(record.cct)
        if self._trace.active:
            self._trace.emit(
                "coflow_completion",
                record.completion_time,
                {
                    "coflow_id": record.coflow_id,
                    "num_flows": record.num_flows,
                    "total_size": record.total_size,
                    "cct": record.cct,
                    "optimal_cct": record.optimal_cct,
                    "tag": record.tag,
                },
            )
        if self._causal is not None:
            self._causal.on_coflow_done(
                record.completion_time,
                record.coflow_id,
                cct=record.cct,
                optimal=record.optimal_cct,
            )
        for listener in self._listeners:
            listener(coflow, record)
