"""Coflow model.

A coflow [Chowdhury & Stoica, HotNets'12] is a set of flows with shared
semantics (e.g. a MapReduce shuffle); the application cares about the
completion of the *last* flow (the CCT).  Coflows may be built up
incrementally (NEAT places one flow at a time, §5.1.2), so a coflow is
*sealed* once all of its flows have been submitted; the CCT is recorded when
a sealed coflow's last flow finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import CoflowError
from repro.topology.base import LinkId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.flow import Flow

CoflowId = int


@dataclass(eq=False)
class Coflow:
    """A group of flows scheduled and measured as a unit.

    Attributes:
        coflow_id: unique id.
        arrival_time: when the coflow entered the system.
        tag: free-form label (e.g. job id / stage name).
        flows: flows attached so far (both active and finished).
    """

    coflow_id: CoflowId
    arrival_time: float
    tag: str = ""
    flows: List["Flow"] = field(default_factory=list)
    completion_time: Optional[float] = None
    _sealed: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def attach_flow(self, flow: "Flow") -> None:
        """Register a constituent flow (called by the fabric on submit)."""
        if self._sealed:
            raise CoflowError(
                f"coflow {self.coflow_id} is sealed; cannot attach flows"
            )
        self.flows.append(flow)

    def seal(self) -> None:
        """Declare that every constituent flow has been submitted."""
        if not self.flows:
            raise CoflowError(f"cannot seal empty coflow {self.coflow_id}")
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    # ------------------------------------------------------------------
    # Aggregates (the s_c / s_{c,l} quantities of §4.2)
    # ------------------------------------------------------------------
    @property
    def total_size(self) -> float:
        """Total size s_c of the coflow in bits."""
        return sum(f.size for f in self.flows)

    @property
    def remaining_total(self) -> float:
        """Bits still to transfer across all constituent flows."""
        return sum(f.remaining for f in self.flows)

    @property
    def attained_total(self) -> float:
        """Bits transferred so far across all constituent flows."""
        return sum(f.attained for f in self.flows)

    def size_on_link(self, link_id: LinkId) -> float:
        """s_{c,l}: total (original) size of this coflow's flows crossing
        ``link_id``."""
        return sum(f.size for f in self.flows if link_id in f.path)

    def remaining_on_link(self, link_id: LinkId) -> float:
        """Residual counterpart of :meth:`size_on_link`."""
        return sum(f.remaining for f in self.flows if link_id in f.path)

    def link_demands(self) -> Dict[LinkId, float]:
        """Remaining bits per link over all constituent flows."""
        demands: Dict[LinkId, float] = {}
        for flow in self.flows:
            if flow.finished:
                continue
            for link_id in flow.path:
                demands[link_id] = demands.get(link_id, 0.0) + flow.remaining
        return demands

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._sealed and all(f.completion_time is not None for f in self.flows)

    def note_flow_finished(self, flow: "Flow", now: float) -> None:
        """Called by the fabric when a constituent flow completes."""
        if self.finished and self.completion_time is None:
            self.completion_time = now

    def cct(self) -> float:
        """Coflow completion time (raises if not finished)."""
        if self.completion_time is None:
            raise CoflowError(f"coflow {self.coflow_id} has not completed")
        return self.completion_time - self.arrival_time

    def __repr__(self) -> str:
        state = "done" if self.completion_time is not None else (
            "sealed" if self._sealed else "open"
        )
        return (
            f"Coflow(#{self.coflow_id} flows={len(self.flows)} "
            f"size={self.total_size:.3g}b {state})"
        )


@dataclass(frozen=True)
class CoflowRecord:
    """Immutable CCT record for a completed coflow."""

    coflow_id: CoflowId
    num_flows: int
    total_size: float
    arrival_time: float
    completion_time: float
    optimal_cct: float
    tag: str = ""

    @property
    def cct(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def slowdown(self) -> float:
        if self.optimal_cct <= 0:
            return 1.0
        return self.cct / self.optimal_cct

    @property
    def gap_from_optimal(self) -> float:
        """The paper's metric: ``(CCT - CCT_opt) / CCT_opt``."""
        return self.slowdown - 1.0
