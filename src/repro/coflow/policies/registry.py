"""Name-based registry of coflow scheduling policies."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigError
from repro.coflow.policies.simple import (
    CoflowFCFSAllocator,
    CoflowFairAllocator,
    CoflowLASAllocator,
    SCFAllocator,
)
from repro.coflow.policies.varys import VarysAllocator
from repro.network.policies.base import RateAllocator

_FACTORIES: Dict[str, Callable[[], RateAllocator]] = {
    "varys": VarysAllocator,
    "sebf": VarysAllocator,
    "scf": SCFAllocator,
    "tcf": SCFAllocator,
    "coflow-fcfs": CoflowFCFSAllocator,
    "baraat": CoflowFCFSAllocator,
    "coflow-las": CoflowLASAllocator,
    "aalo": CoflowLASAllocator,
    "coflow-fair": CoflowFairAllocator,
}


def register_coflow_policy(
    name: str, factory: Callable[[], RateAllocator]
) -> None:
    """Register a custom coflow scheduling policy under ``name``."""
    _FACTORIES[name.lower()] = factory


def make_coflow_allocator(name: str) -> RateAllocator:
    """Instantiate the coflow allocator registered under ``name``."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ConfigError(
            f"unknown coflow scheduling policy {name!r}; known: {known}"
        ) from None
    return factory()


def available_coflow_policies() -> tuple:
    """All registered coflow policy names, sorted."""
    return tuple(sorted(_FACTORIES))
