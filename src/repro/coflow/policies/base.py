"""Coflow scheduling machinery shared by the concrete policies.

All priority-based coflow schedulers here follow the Varys structure:

1. order coflows by a policy-specific key (SEBF, total size, arrival, ...);
2. allocate each coflow in order with **MADD** (minimum allocation for
   desired duration [Varys, SIGCOMM'14]): every constituent flow gets rate
   ``remaining_f / Gamma`` where ``Gamma`` is the coflow's bottleneck
   completion time on the *residual* capacities, so all flows would finish
   together without wasting bandwidth;
3. **backfill** leftover capacity max-min fairly across all unfinished
   flows (work conservation).

Flows not attached to any coflow are treated as singleton coflows, so mixed
flow/coflow traffic is handled uniformly.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.coflow.coflow import Coflow
from repro.network.flow import Flow, FlowId
from repro.network.policies.base import RATE_EPSILON, RateAllocator, water_fill
from repro.topology.base import LinkId


def collect_coflows(flows: Sequence[Flow]) -> List[Tuple[Optional[Coflow], List[Flow]]]:
    """Group active flows by owning coflow, preserving first-seen order.

    Returns a list of ``(coflow_or_None, member_flows)``; bare flows appear
    as their own singleton group with ``None``.
    """
    groups: Dict[int, Tuple[Optional[Coflow], List[Flow]]] = {}
    order: List[int] = []
    for flow in flows:
        if flow.coflow is None:
            key = -1 - flow.flow_id  # unique singleton key
            groups[key] = (None, [flow])
            order.append(key)
        else:
            key = flow.coflow.coflow_id
            if key not in groups:
                groups[key] = (flow.coflow, [])
                order.append(key)
            groups[key][1].append(flow)
    return [groups[key] for key in order]


def bottleneck_duration(
    members: Sequence[Flow],
    capacities: Mapping[LinkId, float],
) -> float:
    """Gamma: the coflow's completion time if it alone used ``capacities``.

    ``inf`` when some member's path has a saturated link (the coflow is
    blocked at this priority level and must rely on backfill).
    """
    demand: Dict[LinkId, float] = {}
    for flow in members:
        for link_id in flow.path:
            demand[link_id] = demand.get(link_id, 0.0) + flow.remaining
    gamma = 0.0
    for link_id, bits in demand.items():
        capacity = capacities.get(link_id, 0.0)
        if capacity <= RATE_EPSILON:
            return float("inf")
        gamma = max(gamma, bits / capacity)
    return gamma


def madd_rates(
    members: Sequence[Flow],
    gamma: float,
) -> Dict[FlowId, float]:
    """MADD: rates so every member finishes exactly at ``gamma`` seconds."""
    if gamma <= 0:
        return {flow.flow_id: 0.0 for flow in members}
    return {flow.flow_id: flow.remaining / gamma for flow in members}


class CoflowAllocator(RateAllocator):
    """Priority-ordered coflow scheduler with MADD allocation + backfill.

    Subclasses define :meth:`priority_key`; smaller keys are served first.
    """

    name = "coflow-abstract"

    #: MADD couples a coflow's flows across *disjoint* links (every member's
    #: rate is remaining/Gamma, and Gamma is the coflow-wide bottleneck), so
    #: the allocation does not decompose over link-sharing components: the
    #: fabric must always recompute globally for coflow policies.
    incremental_safe = False

    @abstractmethod
    def priority_key(
        self,
        coflow: Optional[Coflow],
        members: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Tuple:
        """Sort key for a coflow group (smaller = higher priority)."""

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        groups = collect_coflows(flows)
        ordered = sorted(
            groups,
            key=lambda pair: (
                self.priority_key(pair[0], pair[1], capacities),
                # deterministic tie-break by smallest member flow id
                min(f.flow_id for f in pair[1]),
            ),
        )
        residual: Dict[LinkId, float] = dict(capacities)
        rates: Dict[FlowId, float] = {flow.flow_id: 0.0 for flow in flows}
        for _coflow, members in ordered:
            gamma = bottleneck_duration(members, residual)
            if gamma == float("inf"):
                continue  # blocked; members only get backfill
            for flow_id, rate in madd_rates(members, gamma).items():
                rates[flow_id] = rate
            for flow in members:
                for link_id in flow.path:
                    residual[link_id] = max(
                        0.0, residual[link_id] - rates[flow.flow_id]
                    )
        self._backfill(flows, residual, rates)
        return rates

    @staticmethod
    def _backfill(
        flows: Sequence[Flow],
        residual: Dict[LinkId, float],
        rates: Dict[FlowId, float],
    ) -> None:
        """Distribute leftover capacity max-min fairly on top of MADD."""
        extra: Dict[FlowId, float] = {}
        water_fill(flows, residual, extra)
        for flow_id, rate in extra.items():
            if rate > RATE_EPSILON:
                rates[flow_id] = rates.get(flow_id, 0.0) + rate
