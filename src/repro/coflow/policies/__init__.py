"""Coflow scheduling policies."""

from repro.coflow.policies.base import (
    CoflowAllocator,
    bottleneck_duration,
    collect_coflows,
    madd_rates,
)
from repro.coflow.policies.registry import (
    available_coflow_policies,
    make_coflow_allocator,
    register_coflow_policy,
)
from repro.coflow.policies.simple import (
    CoflowFCFSAllocator,
    CoflowFairAllocator,
    CoflowLASAllocator,
    SCFAllocator,
)
from repro.coflow.policies.varys import VarysAllocator

__all__ = [
    "CoflowAllocator",
    "VarysAllocator",
    "SCFAllocator",
    "CoflowFCFSAllocator",
    "CoflowLASAllocator",
    "CoflowFairAllocator",
    "make_coflow_allocator",
    "register_coflow_policy",
    "available_coflow_policies",
    "collect_coflows",
    "bottleneck_duration",
    "madd_rates",
]
