"""Varys: smallest-effective-bottleneck-first (SEBF) coflow scheduling.

Varys [Chowdhury, Zhong & Stoica, SIGCOMM'14] orders coflows by their
*effective bottleneck* — the completion time the coflow would achieve given
the full link capacities — and allocates rates with MADD so a coflow's
flows finish together.  SEBF generalises SRPT to coflows while accounting
for how a coflow's bytes are spread over links.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from repro.coflow.coflow import Coflow
from repro.coflow.policies.base import CoflowAllocator, bottleneck_duration
from repro.network.flow import Flow
from repro.topology.base import LinkId


class VarysAllocator(CoflowAllocator):
    """SEBF ordering + MADD rates + backfill (the full Varys heuristic)."""

    name = "varys"

    def priority_key(
        self,
        coflow: Optional[Coflow],
        members: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Tuple:
        # Effective bottleneck on *full* capacities (not residual): this is
        # the coflow's intrinsic length, independent of current contention.
        gamma = bottleneck_duration(members, capacities)
        arrival = (
            coflow.arrival_time if coflow is not None
            else min(f.arrival_time for f in members)
        )
        return (gamma, arrival)
