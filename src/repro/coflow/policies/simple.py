"""The remaining coflow scheduling policies evaluated or analysed in §4.2.

* :class:`SCFAllocator` — smallest (total remaining size) coflow first, the
  TCF/SCF heuristic of §4.2.3 and Figure 7(b).
* :class:`CoflowFCFSAllocator` — arrival order (Baraat-style FIFO).
* :class:`CoflowLASAllocator` — least attained total service (Aalo-style).
* :class:`CoflowFairAllocator` — max-min fair sharing *between* coflows
  with MADD-proportional splitting *within* each coflow.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.coflow.coflow import Coflow
from repro.coflow.policies.base import (
    CoflowAllocator,
    collect_coflows,
)
from repro.network.flow import Flow, FlowId
from repro.network.policies.base import RATE_EPSILON, RateAllocator
from repro.topology.base import LinkId


class SCFAllocator(CoflowAllocator):
    """Smallest-coflow-first: order by total remaining bytes (TCF in §4.2.3)."""

    name = "scf"

    def priority_key(
        self,
        coflow: Optional[Coflow],
        members: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Tuple:
        remaining = sum(f.remaining for f in members)
        arrival = (
            coflow.arrival_time if coflow is not None
            else min(f.arrival_time for f in members)
        )
        return (remaining, arrival)


class CoflowFCFSAllocator(CoflowAllocator):
    """Serve whole coflows in arrival order (Baraat-style FIFO)."""

    name = "coflow-fcfs"

    def priority_key(
        self,
        coflow: Optional[Coflow],
        members: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Tuple:
        arrival = (
            coflow.arrival_time if coflow is not None
            else min(f.arrival_time for f in members)
        )
        return (arrival,)


class CoflowLASAllocator(CoflowAllocator):
    """Least-attained-service at coflow granularity (Aalo-style).

    The priority key is the coflow's total attained bytes.  Unlike the
    flow-level LAS allocator we do not schedule attained-service crossing
    events; the approximation error is small because coflow experiments
    have frequent arrival/completion events that force re-allocation.
    """

    name = "coflow-las"

    def priority_key(
        self,
        coflow: Optional[Coflow],
        members: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Tuple:
        attained = sum(f.attained for f in members)
        arrival = (
            coflow.arrival_time if coflow is not None
            else min(f.arrival_time for f in members)
        )
        return (attained, arrival)


class CoflowFairAllocator(RateAllocator):
    """Max-min fair sharing between coflows (§4.2.2's Fair model).

    Each coflow is one entity; its progress rate ``R_c`` (total bits/sec
    over all members) is split across members proportionally to their
    remaining sizes (assumption (ii) of §4.2: all flows of a coflow finish
    together).  Link ``l`` then sees load ``R_c * w_{c,l}`` where ``w_{c,l}``
    is the fraction of the coflow's remaining bytes crossing ``l``.
    Progressive filling raises every unfrozen coflow's ``R_c`` uniformly
    until a link saturates.
    """

    name = "coflow-fair"

    #: Coflow-proportional splitting couples flows across disjoint links
    #: (sibling rates move together via R_c), so scoped recomputes are
    #: unsound; the fabric always recomputes globally.
    incremental_safe = False

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        groups = collect_coflows(flows)
        rates: Dict[FlowId, float] = {flow.flow_id: 0.0 for flow in flows}

        # Per-group link weights w_{c,l} = rem_{c,l} / rem_c.
        weights: List[Dict[LinkId, float]] = []
        active: Dict[int, Sequence[Flow]] = {}
        for index, (_coflow, members) in enumerate(groups):
            total = sum(f.remaining for f in members)
            w: Dict[LinkId, float] = {}
            if total > 0:
                for flow in members:
                    frac = flow.remaining / total
                    for link_id in flow.path:
                        w[link_id] = w.get(link_id, 0.0) + frac
            weights.append(w)
            if w:
                active[index] = members

        residual: Dict[LinkId, float] = dict(capacities)
        progress: Dict[int, float] = {}  # frozen R_c values
        while active:
            # Find the link that saturates first as all R_c rise uniformly.
            load: Dict[LinkId, float] = {}
            for index in active:
                for link_id, w in weights[index].items():
                    load[link_id] = load.get(link_id, 0.0) + w
            bottleneck: Optional[LinkId] = None
            fill = float("inf")
            for link_id, total_w in load.items():
                if total_w <= RATE_EPSILON:
                    continue
                level = residual.get(link_id, 0.0) / total_w
                if level < fill:
                    fill = level
                    bottleneck = link_id
            if bottleneck is None:
                break
            fill = max(fill, 0.0)
            frozen = [
                index for index in active if bottleneck in weights[index]
            ]
            for index in frozen:
                progress[index] = fill
                for link_id, w in weights[index].items():
                    residual[link_id] = max(
                        0.0, residual.get(link_id, 0.0) - fill * w
                    )
                del active[index]

        for index, r_c in progress.items():
            _coflow, members = groups[index]
            total = sum(f.remaining for f in members)
            if total <= 0:
                continue
            for flow in members:
                rates[flow.flow_id] = r_c * flow.remaining / total
        CoflowAllocator._backfill(flows, residual, rates)
        return rates
