"""Perf-regression gate over BENCH artifacts.

The benchmarks write a machine-readable artifact
(``benchmarks/BENCH_perf_simulator.json``): one JSON object whose
sections are benchmark cells and whose values include wall-clock
measurements.  :func:`compare_artifacts` diffs two such artifacts cell
by cell and flags *regressions* — a lower-is-better metric (wall
seconds) that grew, or a higher-is-better metric (events/sec, speedup)
that shrank, by more than the allowed fraction.  ``repro bench-compare
baseline.json current.json --max-regress 20%`` renders the diff and
exits nonzero when any metric regressed, which is what CI runs (as a
soft-fail step: shared runners are noisy, so the gate warns loudly
instead of blocking merges).

Only recognised perf metrics are compared; config fields (hosts, flows,
loads) and distribution summaries are ignored.  The ``environment``
section (python/platform/CPU fingerprint written by
``benchmarks/common.py``) is never diffed numerically — a fingerprint
mismatch is reported as a warning because cross-machine wall-clock
comparisons are not apples to apples.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "MetricDelta",
    "ArtifactComparison",
    "compare_artifacts",
    "render_comparison",
    "parse_max_regress",
    "load_artifact",
]

#: Metric keys where smaller is better (suffix match on the key name).
#: ``decision_latency_seconds`` covers the streaming-service percentiles
#: (``p99_decision_latency_seconds`` etc.); ``overhead_ratio`` covers
#: the observability-layer cost ratios (enabled/bare wall clock).
_LOWER_BETTER_SUFFIXES = (
    "wall_seconds",
    "decision_latency_seconds",
    "overhead_ratio",
    "seconds_per_cell",
)

#: Metric keys where larger is better (suffix match on the key name).
#: ``placements_per_second`` is the streaming-service throughput metric.
_HIGHER_BETTER_SUFFIXES = (
    "events_per_second",
    "speedup",
    "placements_per_second",
    "cells_per_second",
)

#: Artifact sections that are not benchmark cells.
_NON_CELL_SECTIONS = frozenset({"environment"})


def _direction(key: str) -> Optional[str]:
    """'lower' / 'higher' when ``key`` is a recognised perf metric."""
    for suffix in _LOWER_BETTER_SUFFIXES:
        if key.endswith(suffix):
            return "lower"
    for suffix in _HIGHER_BETTER_SUFFIXES:
        if key.endswith(suffix):
            return "higher"
    return None


@dataclass
class MetricDelta:
    """One compared metric of one artifact section."""

    section: str
    metric: str
    direction: str  # "lower" | "higher" (what *better* means)
    baseline: float
    current: float
    #: Signed regression fraction: positive means *worse* (slower /
    #: less throughput), negative means improved.
    regression: float
    regressed: bool

    def describe(self) -> str:
        if self.regressed:
            arrow = "WORSE"
        elif self.regression > 0:
            arrow = "worse"
        elif self.regression < 0:
            arrow = "better"
        else:
            arrow = "same"
        return (
            f"{self.section}.{self.metric}: "
            f"{self.baseline:.6g} -> {self.current:.6g} "
            f"({self.regression * 100:+.1f}% {arrow})"
        )


@dataclass
class ArtifactComparison:
    """Full diff of two BENCH artifacts."""

    deltas: List[MetricDelta] = field(default_factory=list)
    #: Sections present in only one artifact (not an error: benchmarks
    #: get added over time), and non-numeric/missing metric notes.
    notes: List[str] = field(default_factory=list)
    environment_mismatch: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _compare_environment(baseline: Dict, current: Dict) -> List[str]:
    base_env = baseline.get("environment")
    cur_env = current.get("environment")
    if not isinstance(base_env, dict) or not isinstance(cur_env, dict):
        return []
    mismatches = []
    for key in sorted(set(base_env) | set(cur_env)):
        if base_env.get(key) != cur_env.get(key):
            mismatches.append(
                f"{key}: {base_env.get(key)!r} vs {cur_env.get(key)!r}"
            )
    return mismatches


def compare_artifacts(
    baseline: Dict, current: Dict, *, max_regress: float = 0.2
) -> ArtifactComparison:
    """Diff two BENCH artifacts; flag per-metric regressions.

    Args:
        baseline: parsed reference artifact (e.g. the committed one).
        current: parsed freshly-measured artifact.
        max_regress: allowed regression as a fraction (0.2 == 20%); a
            recognised metric worse than this is flagged.
    """
    result = ArtifactComparison(
        environment_mismatch=_compare_environment(baseline, current)
    )
    base_cells = {
        k: v for k, v in baseline.items()
        if k not in _NON_CELL_SECTIONS and isinstance(v, dict)
    }
    cur_cells = {
        k: v for k, v in current.items()
        if k not in _NON_CELL_SECTIONS and isinstance(v, dict)
    }
    for section in sorted(set(base_cells) - set(cur_cells)):
        result.notes.append(f"section {section!r} only in baseline")
    for section in sorted(set(cur_cells) - set(base_cells)):
        result.notes.append(f"section {section!r} only in current")
    for section in sorted(set(base_cells) & set(cur_cells)):
        base, cur = base_cells[section], cur_cells[section]
        for key in sorted(base):
            direction = _direction(key)
            if direction is None:
                continue
            base_val, cur_val = base.get(key), cur.get(key)
            if not isinstance(base_val, (int, float)) or not isinstance(
                cur_val, (int, float)
            ):
                result.notes.append(
                    f"{section}.{key}: not comparable "
                    f"({base_val!r} vs {cur_val!r})"
                )
                continue
            if base_val <= 0:
                result.notes.append(
                    f"{section}.{key}: baseline {base_val!r} not positive"
                )
                continue
            if direction == "lower":
                regression = (cur_val - base_val) / base_val
            else:
                regression = (base_val - cur_val) / base_val
            result.deltas.append(
                MetricDelta(
                    section=section,
                    metric=key,
                    direction=direction,
                    baseline=float(base_val),
                    current=float(cur_val),
                    regression=regression,
                    regressed=regression > max_regress,
                )
            )
    return result


def render_comparison(
    comparison: ArtifactComparison, *, max_regress: float = 0.2
) -> str:
    """Human-readable diff report."""
    lines = [
        f"bench comparison (max allowed regression: {max_regress * 100:g}%)",
    ]
    lines.append("=" * len(lines[0]))
    if comparison.environment_mismatch:
        lines.append("")
        lines.append(
            "WARNING: environment fingerprints differ — wall-clock "
            "comparison is cross-machine:"
        )
        for item in comparison.environment_mismatch:
            lines.append(f"  {item}")
    if comparison.deltas:
        lines.append("")
        for delta in comparison.deltas:
            marker = "!! " if delta.regressed else "   "
            lines.append(marker + delta.describe())
    else:
        lines.append("")
        lines.append("no comparable perf metrics found")
    if comparison.notes:
        lines.append("")
        for note in comparison.notes:
            lines.append(f"note: {note}")
    lines.append("")
    bad = comparison.regressions
    if bad:
        lines.append(
            f"RESULT: {len(bad)} metric(s) regressed beyond "
            f"{max_regress * 100:g}%"
        )
    else:
        lines.append("RESULT: no regressions beyond threshold")
    return "\n".join(lines)


def parse_max_regress(text: str) -> float:
    """Parse ``"20%"`` or ``"0.2"`` into the fraction 0.2."""
    text = text.strip()
    if text.endswith("%"):
        value = float(text[:-1]) / 100.0
    else:
        value = float(text)
    if value < 0:
        raise ValueError(f"max regression must be >= 0, got {text!r}")
    return value


def load_artifact(path: str) -> Dict:
    """Read a BENCH artifact, normalising the pre-campaign layout."""
    with open(path, "r", encoding="utf-8") as fp:
        payload = json.load(fp)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: BENCH artifact must be a JSON object")
    if "benchmark" in payload:  # pre-campaign single-section layout
        payload = {payload.pop("benchmark"): payload}
    return payload
