"""Metrics: FCT/CCT statistics, size-binned summaries, report tables."""

from repro.metrics.report import format_table, gap_by_bin_table, ratio_by_bin_table
from repro.metrics.timeline import TimelineSample, TimelineSampler
from repro.metrics.stats import (
    BinSummary,
    afct,
    average_gap,
    average_slowdown,
    log_bins,
    mean,
    percentile,
    summarize_by_size,
)

__all__ = [
    "mean",
    "percentile",
    "afct",
    "average_gap",
    "average_slowdown",
    "BinSummary",
    "log_bins",
    "summarize_by_size",
    "format_table",
    "gap_by_bin_table",
    "ratio_by_bin_table",
    "TimelineSampler",
    "TimelineSample",
]
