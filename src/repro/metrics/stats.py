"""Summary statistics over FCT/CCT records.

The paper reports *gap from optimal* — ``(FCT - FCT_opt)/FCT_opt``, i.e.
slowdown minus one — per flow-size bin, plus averages (AFCT / average CCT).
These helpers are shared by every experiment and benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not values:
        raise ConfigError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ConfigError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ConfigError(f"percentile q must be in [0,100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    frac = rank - lower
    return ordered[lower] * (1 - frac) + ordered[upper] * frac


def afct(records) -> float:
    """Average flow (or coflow) completion time in seconds."""
    return mean([r.fct if hasattr(r, "fct") else r.cct for r in records])


def average_gap(records) -> float:
    """Mean gap-from-optimal over records with a positive optimum."""
    gaps = [r.gap_from_optimal for r in records if _optimal_of(r) > 0]
    if not gaps:
        return 0.0
    return mean(gaps)


def average_slowdown(records) -> float:
    """Mean slowdown (stretch) over records with a positive optimum."""
    return average_gap(records) + 1.0


def _optimal_of(record) -> float:
    return getattr(record, "optimal_fct", None) or getattr(
        record, "optimal_cct", 0.0
    ) or 0.0


def _size_of(record) -> float:
    return getattr(record, "size", None) or getattr(record, "total_size")


def _completion_of(record) -> float:
    return record.fct if hasattr(record, "fct") else record.cct


@dataclass(frozen=True)
class BinSummary:
    """Aggregated statistics for one flow-size bin."""

    lower: float
    upper: float
    count: int
    mean_fct: float
    mean_gap: float
    p95_gap: float

    @property
    def label(self) -> str:
        from repro.units import format_bits

        upper = "inf" if self.upper == float("inf") else format_bits(self.upper)
        return f"[{format_bits(self.lower)}, {upper})"


def log_bins(min_size: float, max_size: float, count: int) -> Tuple[float, ...]:
    """Geometric bin boundaries for size-binned reporting."""
    if count < 1 or not 0 < min_size < max_size:
        raise ConfigError("invalid bin specification")
    ratio = (max_size / min_size) ** (1.0 / count)
    bounds = [min_size * ratio ** i for i in range(count)]
    return (0.0, *bounds[1:], float("inf"))


def summarize_by_size(
    records,
    boundaries: Optional[Sequence[float]] = None,
    *,
    num_bins: int = 8,
) -> List[BinSummary]:
    """Group records into size bins and summarise each.

    When ``boundaries`` is omitted, geometric bins spanning the observed
    sizes are used.  Records on links with zero optimal time (host-local)
    are excluded from gap statistics but counted.
    """
    records = list(records)
    if not records:
        return []
    if boundaries is None:
        sizes = [_size_of(r) for r in records]
        lo, hi = min(sizes), max(sizes)
        if hi <= lo:
            hi = lo * 2
        boundaries = log_bins(lo * 0.999, hi * 1.001, num_bins)
    summaries: List[BinSummary] = []
    for lower, upper in zip(boundaries, boundaries[1:]):
        members = [r for r in records if lower <= _size_of(r) < upper]
        if not members:
            continue
        gaps = [m.gap_from_optimal for m in members if _optimal_of(m) > 0]
        fcts = [_completion_of(m) for m in members]
        summaries.append(
            BinSummary(
                lower=lower,
                upper=upper,
                count=len(members),
                mean_fct=mean(fcts),
                mean_gap=mean(gaps) if gaps else 0.0,
                p95_gap=percentile(gaps, 95) if gaps else 0.0,
            )
        )
    return summaries
