"""Plain-text rendering of experiment results.

Every benchmark prints the same rows the paper's figures plot: one row per
flow-size bin, one column per policy, using gap-from-optimal (or the ratio
between two policies, for the comparative figures).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.metrics.stats import BinSummary, summarize_by_size
from repro.units import format_bits


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Render an aligned monospace table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def gap_by_bin_table(
    per_policy_records: Mapping[str, Sequence],
    boundaries: Optional[Sequence[float]] = None,
    *,
    num_bins: int = 8,
    metric: str = "mean_gap",
) -> str:
    """Table of per-bin gap-from-optimal, one column per policy.

    All policies are binned on the union of observed sizes so rows align.
    """
    all_records = [r for recs in per_policy_records.values() for r in recs]
    if not all_records:
        return "(no records)"
    if boundaries is None:
        # Derive common boundaries from pooled data.
        pooled = summarize_by_size(all_records, num_bins=num_bins)
        boundaries = [s.lower for s in pooled] + [pooled[-1].upper]
    per_policy_bins: Dict[str, Dict[float, BinSummary]] = {}
    for name, records in per_policy_records.items():
        summaries = summarize_by_size(records, boundaries)
        per_policy_bins[name] = {s.lower: s for s in summaries}
    headers = ["size bin", "count"] + list(per_policy_records)
    rows: List[List[str]] = []
    for lower, upper in zip(boundaries, boundaries[1:]):
        cells = []
        count = 0
        for name in per_policy_records:
            summary = per_policy_bins[name].get(lower)
            if summary is None:
                cells.append("-")
            else:
                cells.append(f"{getattr(summary, metric):.2f}")
                count = max(count, summary.count)
        if all(c == "-" for c in cells):
            continue
        label_hi = "inf" if upper == float("inf") else format_bits(upper)
        rows.append(
            [f"[{format_bits(lower)}, {label_hi})", str(count)] + cells
        )
    return format_table(headers, rows)


def ratio_by_bin_table(
    numerator: Sequence,
    denominator: Sequence,
    *,
    labels: Sequence[str] = ("a", "b"),
    num_bins: int = 8,
) -> str:
    """Per-bin ratio of mean FCT between two record sets (Figure 3 style)."""
    pooled = list(numerator) + list(denominator)
    if not pooled:
        return "(no records)"
    common = summarize_by_size(pooled, num_bins=num_bins)
    boundaries = [s.lower for s in common] + [common[-1].upper]
    num_bins_map = {s.lower: s for s in summarize_by_size(numerator, boundaries)}
    den_bins_map = {s.lower: s for s in summarize_by_size(denominator, boundaries)}
    headers = ["size bin", f"{labels[0]}/{labels[1]} mean-FCT ratio"]
    rows = []
    for lower, upper in zip(boundaries, boundaries[1:]):
        a = num_bins_map.get(lower)
        b = den_bins_map.get(lower)
        if a is None or b is None or b.mean_fct <= 0:
            continue
        label_hi = "inf" if upper == float("inf") else format_bits(upper)
        rows.append(
            [
                f"[{format_bits(lower)}, {label_hi})",
                f"{a.mean_fct / b.mean_fct:.2f}",
            ]
        )
    return format_table(headers, rows)
