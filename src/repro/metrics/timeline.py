"""Time-series observability for running simulations.

A :class:`TimelineSampler` rides the DES, sampling fabric state (link
utilisation, active flow count, queued bits) at a fixed interval.  Used to
inspect *why* a placement policy behaves as it does — e.g. whether minLoad
piles long flows onto a few downlinks — and to produce time-series for
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.network.fabric import NetworkFabric
from repro.topology.base import LinkId


@dataclass(frozen=True)
class TimelineSample:
    """One sampling instant."""

    time: float
    active_flows: int
    total_queued_bits: float
    #: per watched link: (utilisation in [0,1], queued bits)
    links: Dict[LinkId, Tuple[float, float]]


class TimelineSampler:
    """Samples fabric state every ``interval`` seconds until stopped.

    The sampler self-terminates when the fabric goes idle *and* at least
    one sample was taken, so it never keeps an otherwise-finished
    simulation alive indefinitely.
    """

    def __init__(
        self,
        fabric: NetworkFabric,
        *,
        interval: float,
        watch_links: Optional[Sequence[LinkId]] = None,
        max_samples: int = 100_000,
    ) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval!r}")
        self._fabric = fabric
        self._interval = interval
        self._watch = tuple(watch_links or ())
        self._max_samples = max_samples
        self._samples: List[TimelineSample] = []
        self._stopped = False
        fabric.engine.schedule(0.0, self._tick, label="timeline-sample")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def samples(self) -> Sequence[TimelineSample]:
        return tuple(self._samples)

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._stopped = True

    def peak_active_flows(self) -> int:
        return max((s.active_flows for s in self._samples), default=0)

    def mean_utilization(self, link_id: LinkId) -> float:
        """Average sampled utilisation of one watched link."""
        values = [
            s.links[link_id][0] for s in self._samples if link_id in s.links
        ]
        if not values:
            raise ConfigError(f"link {link_id!r} was not watched")
        return sum(values) / len(values)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped or len(self._samples) >= self._max_samples:
            return
        fabric = self._fabric
        flows = fabric.active_flows()
        links = {
            link_id: (
                fabric.link_rate_utilization(link_id),
                fabric.link_queued_bits(link_id),
            )
            for link_id in self._watch
        }
        self._samples.append(
            TimelineSample(
                time=fabric.engine.now,
                active_flows=len(flows),
                total_queued_bits=sum(f.remaining for f in flows),
                links=links,
            )
        )
        # Keep sampling while there is traffic to observe *or* scheduled
        # work still to come (e.g. arrivals queued before the first flow
        # starts); stop once the simulation is truly drained.
        if flows or fabric.engine.pending_events > 0:
            fabric.engine.schedule(
                self._interval, self._tick, label="timeline-sample"
            )
