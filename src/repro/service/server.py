"""The serving loop: NEAT as a long-lived placement service.

:class:`PlacementServer` runs one timed open-loop session inside the
deterministic simulator: an :class:`~repro.service.workload.OpenLoopSource`
keeps offering tasks, an :class:`~repro.service.admission.AdmissionQueue`
bounds how many may wait, and the loop drains admitted requests into the
existing :class:`~repro.daemons.placement_daemon.TaskPlacementDaemon` in
adaptive **micro-batches**: a batch is placed as soon as it holds
``batch_max`` requests or the oldest admitted request has waited
``batch_wait`` simulated seconds — small batches under light load (low
latency), full batches under heavy load (amortisation).  Each batch costs
one :class:`~repro.daemons.messages.LinkStateRequest` per *distinct*
candidate host instead of one prediction query per (request, candidate)
pair; see ``TaskPlacementDaemon.place_batch``.

Determinism contract: the decision log and every field of
:meth:`ServiceReport.to_dict` depend only on ``(scenario, seed,
status_interval)`` — simulated time throughout.  Wall-clock measurements
(per-request decision latency, placements/sec) are observation-only: they
appear in the text report, the metrics registry, and the BENCH artifact,
never in the deterministic report JSON.  Heartbeat events are scheduled
whether or not anyone is listening, so attaching a status stream or a
Prometheus file does not change the simulated trajectory.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.daemons.messages import LinkStateRequest  # noqa: F401 (re-export)
from repro.errors import RoutingError
from repro.faults import FaultPlan, arm_faults
from repro.network.fabric import NetworkFabric
from repro.network.policies.registry import make_allocator
from repro.placement.base import PlacementRequest
from repro.placement.neat import build_neat
from repro.predictor.registry import make_flow_predictor
from repro.service.admission import AdmissionQueue, QueuedRequest
from repro.service.scenario import ServiceScenario
from repro.sim.engine import Engine
from repro.sim.randomness import hash_seed

if TYPE_CHECKING:  # pragma: no cover - avoids a service<->telemetry cycle
    from repro.campaign.status import StatusWriter
    from repro.telemetry import Telemetry

__all__ = ["PlacementServer", "ServiceReport", "render_service_report"]


def _percentile(values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an unsorted sample (0 if empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _stats(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": _percentile(values, 0.50),
        "p99": _percentile(values, 0.99),
    }


@dataclass
class ServiceReport:
    """Everything one serving session produced.

    Every field except the ``wall_*`` block is a pure function of the
    scenario and seed (simulated time only); :meth:`to_dict` emits exactly
    that deterministic subset.
    """

    scenario: str
    seed: int
    duration: float
    offered: int
    admitted: int
    rejected: int
    dropped: int
    decisions: int
    batches: int
    queue_depth_peak: int
    queue_wait: Dict[str, float]
    batch_size: Dict[str, float]
    predicted_fct: Dict[str, float]
    completed_flows: int
    realized_fct: Dict[str, float]
    stale_fallbacks: int
    control_messages: int
    events_processed: int
    sim_time: float
    #: wall-clock observation-only block (varies run to run).
    wall_seconds: float = 0.0
    placements_per_second: float = 0.0
    decision_latency: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The deterministic report: byte-identical for same (seed, scenario)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "duration": self.duration,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "decisions": self.decisions,
            "batches": self.batches,
            "queue_depth_peak": self.queue_depth_peak,
            "queue_wait": dict(self.queue_wait),
            "batch_size": dict(self.batch_size),
            "predicted_fct": dict(self.predicted_fct),
            "completed_flows": self.completed_flows,
            "realized_fct": dict(self.realized_fct),
            "stale_fallbacks": self.stale_fallbacks,
            "control_messages": self.control_messages,
            "events_processed": self.events_processed,
            "sim_time": self.sim_time,
        }


def render_service_report(report: ServiceReport) -> str:
    """Human-readable session summary (includes the wall-clock block)."""
    lines = [
        f"service session: {report.scenario} (seed {report.seed})",
        "=" * 60,
        f"offered {report.offered} tasks over {report.duration:g}s "
        f"(sim ran to {report.sim_time:.3f}s)",
        f"admitted={report.admitted}  rejected={report.rejected}"
        + (f"  dropped={report.dropped}" if report.dropped else "")
        + f"  queue depth peak={report.queue_depth_peak}",
        f"decisions={report.decisions} in {report.batches} batches "
        f"(mean batch {report.batch_size['mean']:.2f}, "
        f"p99 {report.batch_size['p99']:.0f})",
        f"queue wait   mean={report.queue_wait['mean'] * 1e3:.3f}ms  "
        f"p99={report.queue_wait['p99'] * 1e3:.3f}ms (sim)",
        f"predicted FCT mean={report.predicted_fct['mean']:.4f}s  "
        f"p99={report.predicted_fct['p99']:.4f}s",
        f"completed {report.completed_flows} flows: realized FCT "
        f"mean={report.realized_fct['mean']:.4f}s  "
        f"p99={report.realized_fct['p99']:.4f}s",
        f"control messages={report.control_messages}  "
        f"events={report.events_processed}"
        + (
            f"  stale fallbacks={report.stale_fallbacks}"
            if report.stale_fallbacks
            else ""
        ),
    ]
    if report.wall_seconds > 0:
        lines.append(
            f"wall: {report.wall_seconds:.3f}s, "
            f"{report.placements_per_second:.0f} placements/s, "
            f"decision latency p50="
            f"{report.decision_latency.get('p50', 0.0) * 1e6:.1f}us "
            f"p99={report.decision_latency.get('p99', 0.0) * 1e6:.1f}us"
        )
    return "\n".join(lines)


class PlacementServer:
    """One open-loop serving session over the NEAT control plane."""

    def __init__(
        self,
        scenario: ServiceScenario,
        *,
        telemetry: Optional["Telemetry"] = None,
        faults: Optional[FaultPlan] = None,
        status: Optional["StatusWriter"] = None,
        status_interval: float = 1.0,
        prometheus_out: Optional[str] = None,
        prometheus_prefix: str = "repro_",
        slo_specs=None,
        recorder=None,
        rollups_out: Optional[str] = None,
        stall_after: Optional[float] = None,
    ) -> None:
        """Args:
            scenario: the session's full configuration.
            telemetry: optional bundle — the admission queue and serving
                loop account into its registry, decisions into its log.
            faults: optional fault plan injected into the session.
            status: optional :class:`StatusWriter` receiving heartbeat
                records (``repro status`` can watch a live session).
            status_interval: simulated seconds between heartbeats.  Part
                of the deterministic inputs (heartbeats are engine
                events); attaching/removing ``status`` is not.
            prometheus_out: path refreshed with the metrics snapshot in
                Prometheus text format at every heartbeat.
            slo_specs: optional :class:`~repro.telemetry.slo.SLOSpec`
                list evaluated at every heartbeat against windowed
                rollups; alert transitions go to the status stream, the
                recorder, and the ``slo.*`` counters — never the
                deterministic record/trace streams.
            recorder: optional
                :class:`~repro.telemetry.recorder.FlightRecorder`; an
                SLO breach, a serve stall, or a crash dumps a replayable
                post-mortem bundle into its directory.
            rollups_out: path written with the rollup store's JSON when
                the session ends (``repro slo check`` consumes it).
            stall_after: dump/flag a stall when no new decision lands
                for this many simulated seconds while requests queue.
        """
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._scenario = scenario
        self._telemetry = telemetry
        self._faults = faults
        self._status = status
        self._status_interval = float(status_interval)
        self._prometheus_out = prometheus_out
        self._prometheus_prefix = prometheus_prefix
        self._slo_specs = list(slo_specs) if slo_specs else []
        self._recorder = recorder
        self._rollups_out = rollups_out
        self._stall_after = stall_after
        #: SLO engine of the last :meth:`run` (alert history lives here).
        self.last_slo_engine = None
        #: Rollup store of the last :meth:`run`.
        self.last_rollups = None
        #: The placement daemon of the last completed :meth:`run` (its
        #: ``decisions`` are the session's deterministic decision log).
        self.last_daemon = None

    # ------------------------------------------------------------------
    # The session
    # ------------------------------------------------------------------
    def run(self) -> ServiceReport:
        scenario = self._scenario
        telemetry = self._telemetry
        engine = Engine(telemetry=telemetry)
        topology = scenario.build_topology()
        fabric = NetworkFabric(
            engine,
            topology,
            make_allocator(scenario.network_policy),
            telemetry=telemetry,
        )
        policy = build_neat(
            fabric,
            predictor=scenario.predictor,
            rng=random.Random(hash_seed(scenario.seed, "service:ties")),
            control_rtt=scenario.control_rtt,
            state_ttl=scenario.state_ttl,
            push_updates=scenario.push_updates,
            telemetry=telemetry,
        )
        daemon = policy.daemon
        injector = arm_faults(self._faults, fabric, policy, telemetry)
        predictor = make_flow_predictor(scenario.predictor)
        admission = AdmissionQueue(
            policy=scenario.admission_policy,
            capacity=scenario.queue_capacity,
            token_rate=scenario.token_rate,
            token_burst=scenario.token_burst,
            telemetry=telemetry,
        )
        pool_rng = random.Random(hash_seed(scenario.seed, "service:pool"))
        hosts = topology.hosts
        reg = telemetry.registry
        if reg.enabled:
            ctr_batches = reg.counter("service.batches")
            ctr_decisions = reg.counter("service.decisions")
            timer_decision = reg.timer("service.decision")
            hist_queue_wait = reg.histogram("service.queue_wait_seconds")
            hist_batch_size = reg.histogram("service.batch_size")
            hist_decision_wall = reg.histogram(
                "service.decision_latency_seconds"
            )
        else:
            ctr_batches = ctr_decisions = timer_decision = None
            hist_queue_wait = hist_batch_size = hist_decision_wall = None

        # Live observability layer: windowed rollups, SLO burn rates,
        # and the flight recorder.  All three are observers — they read
        # registry/causal state at heartbeats and never touch the
        # simulated trajectory (the differential determinism tests pin
        # this).
        store = None
        slo_engine = None
        recorder = self._recorder
        if self._slo_specs or self._rollups_out is not None:
            from repro.telemetry.timeseries import TimeseriesStore

            store = TimeseriesStore(bin_width=self._status_interval)
        if self._slo_specs:
            from repro.telemetry.slo import SLOEngine

            slo_engine = SLOEngine(self._slo_specs, store, reg)
        if recorder is not None and telemetry.causal.active:
            recorder.attach(telemetry.causal.events)
        if telemetry.causal.active:
            # Open a causal run so flow events group for `repro explain`
            # (figure runs do this in the runner; serve owns its own).
            telemetry.causal.begin_run(
                0.0,
                placement="neat",
                network_policy=scenario.network_policy,
                capacities={
                    link.link_id: link.capacity
                    for link in topology.links()
                },
            )
        self.last_slo_engine = slo_engine
        self.last_rollups = store

        arrivals = iter(scenario.build_source(topology))
        queue_waits: List[float] = []
        batch_sizes: List[float] = []
        decision_wall: List[float] = []
        state = {
            "seq": 0,
            "dropped": 0,
            "decisions": 0,
            "batches": 0,
            "trigger": None,
            "trigger_at": 0.0,
            "busy_until": 0.0,
        }
        batch_max = scenario.batch_max
        batch_wait = scenario.batch_wait

        # ------------------------------------------------------------------
        # Arrival pump: one pending arrival event at a time (lazy stream).
        # ------------------------------------------------------------------
        def pump() -> None:
            arrival = next(arrivals, None)
            if arrival is None:
                return
            engine.schedule_at(
                arrival.time,
                lambda a=arrival: on_arrival(a),
                label="service-arrival",
            )

        def on_arrival(arrival) -> None:
            pump()
            request = QueuedRequest(
                seq=state["seq"], arrival=arrival, admitted_at=engine.now
            )
            state["seq"] += 1
            if admission.offer(request):
                note_enqueued()

        # ------------------------------------------------------------------
        # Adaptive micro-batching.  The controller is a serial resource
        # with a modeled service time per batch (``busy_until``); a drain
        # trigger never fires while it is busy, which is what lets an
        # open-loop overload back the admission queue up.
        # ------------------------------------------------------------------
        def trigger(delay: float) -> None:
            """Request a drain after ``delay`` (clamped to server busy time).

            Triggers only ever move *earlier*: a full batch (delay 0)
            overrides a pending deadline, a later deadline never delays
            an earlier one.
            """
            at = max(engine.now + delay, state["busy_until"])
            if state["trigger"] is not None:
                if at >= state["trigger_at"]:
                    return
                engine.cancel(state["trigger"])
            state["trigger"] = engine.schedule_at(
                at, fire_trigger, label="service-batch"
            )
            state["trigger_at"] = at

        def fire_trigger() -> None:
            state["trigger"] = None
            drain()

        def note_enqueued() -> None:
            trigger(0.0 if admission.depth >= batch_max else batch_wait)

        def drain() -> None:
            batch = admission.take(batch_max)
            if not batch:
                return
            wall_start = _time.perf_counter()
            requests: List[PlacementRequest] = []
            kept: List[QueuedRequest] = []
            for queued in batch:
                arrival = queued.arrival
                pool = [h for h in hosts if h != arrival.data_node]
                cap = scenario.max_candidates
                if cap is not None and len(pool) > cap:
                    pool = sorted(pool_rng.sample(pool, cap))
                if injector is not None:
                    if not fabric.host_is_up(arrival.data_node):
                        injector.note_task_dropped(arrival.tag)
                        state["dropped"] += 1
                        continue
                    pool = [h for h in pool if fabric.host_is_up(h)]
                    if not pool:
                        injector.note_task_dropped(arrival.tag)
                        state["dropped"] += 1
                        continue
                requests.append(
                    PlacementRequest(
                        size=arrival.size,
                        data_node=arrival.data_node,
                        candidates=tuple(pool),
                        tag=arrival.tag,
                    )
                )
                kept.append(queued)
            if requests:
                if timer_decision is not None:
                    with timer_decision.time():
                        placed = daemon.place_batch(requests, predictor)
                else:
                    placed = daemon.place_batch(requests, predictor)
                for queued, request, host in zip(kept, requests, placed):
                    queue_waits.append(engine.now - queued.admitted_at)
                    if hist_queue_wait is not None:
                        hist_queue_wait.observe(engine.now - queued.admitted_at)
                    try:
                        fabric.submit(
                            request.data_node,
                            host,
                            request.size,
                            tag=request.tag,
                        )
                    except RoutingError:
                        # Partitioned between placement and submission.
                        if injector is not None:
                            injector.note_task_dropped(request.tag)
                        state["dropped"] += 1
                state["decisions"] += len(requests)
                if ctr_decisions is not None:
                    ctr_decisions.inc(len(requests))
            elapsed = _time.perf_counter() - wall_start
            if requests:
                decision_wall.extend(
                    [elapsed / len(requests)] * len(requests)
                )
                if hist_decision_wall is not None:
                    # Wall-clock, observation-only (like the timers):
                    # never feeds back into the simulated trajectory.
                    hist_decision_wall.observe(
                        elapsed / len(requests), count=len(requests)
                    )
            state["batches"] += 1
            if ctr_batches is not None:
                ctr_batches.inc()
            batch_sizes.append(float(len(batch)))
            if hist_batch_size is not None:
                hist_batch_size.observe(float(len(batch)))
            state["busy_until"] = engine.now + (
                scenario.batch_overhead
                + scenario.per_request_cost * len(batch)
            )
            if admission.depth:
                trigger(0.0 if admission.depth >= batch_max else batch_wait)

        # ------------------------------------------------------------------
        # Heartbeats: always scheduled, so observers don't change the run.
        # ------------------------------------------------------------------
        stall = {"decisions": 0, "since": 0.0, "flagged": False}

        def post_mortem(reason: str, offending=None) -> None:
            if recorder is None:
                return
            metrics = reg.as_dict() if reg.enabled else None
            if metrics is not None and telemetry.profiler.enabled:
                metrics = dict(metrics)
                metrics["profile"] = telemetry.profiler.as_dict()
            recorder.dump(
                reason,
                now=engine.now,
                offending=offending,
                metrics=metrics,
                scenario=scenario.to_dict(),
                faults=self._faults.to_dict() if self._faults else None,
                context={
                    "seed": scenario.seed,
                    "scenario": scenario.name,
                    "sim_time": engine.now,
                    "decisions": state["decisions"],
                    "queue_depth": admission.depth,
                    "firing": slo_engine.firing if slo_engine else [],
                },
            )

        def check_stall(now: float) -> None:
            if self._stall_after is None:
                return
            if state["decisions"] != stall["decisions"]:
                stall["decisions"] = state["decisions"]
                stall["since"] = now
                stall["flagged"] = False
                return
            stalled = (
                admission.depth > 0
                and now - stall["since"] >= self._stall_after
            )
            if stalled and not stall["flagged"]:
                stall["flagged"] = True
                if self._status is not None:
                    self._status.emit(
                        "stall",
                        spec=scenario.name,
                        sim_time=now,
                        stalled_for=now - stall["since"],
                        queue_depth=admission.depth,
                        decisions=state["decisions"],
                    )
                post_mortem("stall")

        def heartbeat() -> None:
            now = engine.now
            if store is not None and reg.enabled:
                store.sample(now, reg)
            if recorder is not None:
                recorder.poll()
            if slo_engine is not None:
                for alert in slo_engine.evaluate(now):
                    event = alert.as_event()
                    if recorder is not None:
                        recorder.observe(event)
                    if self._status is not None:
                        self._status.emit(
                            "slo_alert",
                            **{k: v for k, v in event.items() if k != "ev"},
                        )
                    if alert.state == "firing":
                        post_mortem(
                            f"slo-breach-{alert.slo}",
                            offending={
                                "slo": alert.slo,
                                "state": alert.state,
                                "burn_fast": alert.burn_fast,
                                "burn_slow": alert.burn_slow,
                                "spec": alert.spec.to_dict(),
                            },
                        )
            check_stall(now)
            if self._status is not None:
                extra = {}
                if slo_engine is not None:
                    extra["slo"] = slo_engine.summary(now)
                self._status.emit(
                    "cell",
                    cell=0,
                    spec=scenario.name,
                    state="running",
                    sim_time=now,
                    decisions=state["decisions"],
                    queue_depth=admission.depth,
                    rejected=admission.rejected,
                    events_processed=engine.events_processed,
                    **extra,
                )
            self._write_prometheus()
            if engine.pending_events > 0:
                engine.schedule(
                    self._status_interval, heartbeat, label="service-heartbeat"
                )

        wall_begin = _time.perf_counter()
        if self._status is not None:
            # One "campaign" of one cell: `repro status` renders a live
            # session with the same tooling as a sweep.  The final record
            # is the worker-style `finished` below — deliberately no
            # supervisor terminal record, which stall detection must
            # tolerate (SETTLED_STATES).
            self._status.emit(
                "campaign_start",
                campaign=f"serve:{scenario.name}",
                cells=1,
                jobs=1,
            )
        pump()
        engine.schedule(self._status_interval, heartbeat, label="service-heartbeat")
        try:
            engine.run()
        except BaseException:
            # Post-mortem before the exception propagates: the bundle
            # carries the exact (scenario, seed) so the crash replays.
            post_mortem("crash")
            if self._status is not None:
                self._status.emit(
                    "cell",
                    cell=0,
                    spec=scenario.name,
                    state="crashed",
                    sim_time=engine.now,
                    decisions=state["decisions"],
                    queue_depth=admission.depth,
                    rejected=admission.rejected,
                    events_processed=engine.events_processed,
                )
            self._write_rollups(store)
            raise
        wall_total = _time.perf_counter() - wall_begin

        predicted = [
            d.predicted_time
            for d in daemon.decisions
            if d.predicted_time >= 0
        ]
        fcts = [record.fct for record in fabric.records]
        report = ServiceReport(
            scenario=scenario.name,
            seed=scenario.seed,
            duration=scenario.duration,
            offered=admission.offered,
            admitted=admission.admitted,
            rejected=admission.rejected,
            dropped=state["dropped"],
            decisions=state["decisions"],
            batches=state["batches"],
            queue_depth_peak=admission.depth_peak,
            queue_wait=_stats(queue_waits),
            batch_size=_stats(batch_sizes),
            predicted_fct=_stats(predicted),
            completed_flows=len(fabric.records),
            realized_fct=_stats(fcts),
            stale_fallbacks=daemon.stale_fallbacks,
            control_messages=policy.bus.messages_sent,
            events_processed=engine.events_processed,
            sim_time=engine.now,
            wall_seconds=wall_total,
            placements_per_second=(
                state["decisions"] / wall_total if wall_total > 0 else 0.0
            ),
            decision_latency=_stats(decision_wall),
        )
        if self._status is not None:
            self._status.emit(
                "cell",
                cell=0,
                spec=scenario.name,
                state="finished",
                sim_time=engine.now,
                decisions=state["decisions"],
                queue_depth=admission.depth,
                rejected=admission.rejected,
                events_processed=engine.events_processed,
            )
        self._write_prometheus()
        if telemetry.causal.active:
            telemetry.causal.end_run(engine.now, records=len(fabric.records))
        if store is not None and reg.enabled:
            store.sample(engine.now, reg)  # capture the final partial bin
        if recorder is not None:
            recorder.poll()
        self._write_rollups(store)
        self.last_daemon = daemon
        return report

    def _write_rollups(self, store) -> None:
        if self._rollups_out is None or store is None:
            return
        import json
        import os

        parent = os.path.dirname(self._rollups_out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self._rollups_out, "w", encoding="utf-8") as fp:
            json.dump(store.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")

    def _write_prometheus(self) -> None:
        if self._prometheus_out is None:
            return
        from repro.telemetry.prometheus import render_prometheus

        text = render_prometheus(
            self._telemetry.registry.as_dict(), prefix=self._prometheus_prefix
        )
        with open(self._prometheus_out, "w", encoding="utf-8") as fp:
            fp.write(text)


def decisions_as_jsonl(daemon) -> str:
    """Serialise a daemon's decision list as deterministic JSONL.

    Sim-time fields only — two identical sessions produce byte-identical
    output (the ``repro serve --decisions-out`` format).
    """
    import json

    lines = []
    for d in daemon.decisions:
        lines.append(
            json.dumps(
                {
                    "tag": d.tag,
                    "kind": d.kind,
                    "size": d.size,
                    "host": d.host,
                    "predicted_time": d.predicted_time,
                    "preferred": list(d.preferred_hosts),
                    "queried": list(d.queried_hosts),
                    "used_fallback": d.used_fallback,
                    "used_stale_fallback": d.used_stale_fallback,
                    "scores": [[h, s] for h, s in d.candidate_scores],
                },
                separators=(",", ":"),
                default=str,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")
