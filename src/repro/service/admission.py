"""Admission control and backpressure for the placement service.

An open-loop workload does not slow down when the service falls behind,
so the request queue between the arrival stream and the serving loop
must be *bounded* and must decide, deterministically, which work to shed
when it overflows.  Three policies:

``drop-tail``
    Reject the newcomer when the queue is full — the classic bounded
    FIFO.  Cheapest and strictly arrival-order fair.

``shed-fct``
    Load-shed by predicted FCT: when the queue is full, compare the
    newcomer against the queued request with the *largest* serialization
    lower bound (``size / edge_capacity`` — the floor any FCT predictor
    agrees on, and monotone in size) and drop whichever is larger.
    Under overload this keeps the queue biased toward short flows, the
    same favour-the-small principle the network policies (SRPT/LAS)
    apply in the data plane.

``token-bucket``
    Rate limiting: tokens accrue at ``token_rate`` per simulated second
    up to ``token_burst``; each admission spends one.  Requests arriving
    with an empty bucket are rejected even if the queue has room —
    ingress shaping rather than overflow response.  The bounded queue's
    drop-tail still applies on top.

All accounting flows through the shared metrics registry under the
``service.*`` names the report layer zero-defaults (``tasks_rejected``,
``queue_depth``), so dashboards can alert on rejections that never
happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.errors import ConfigError
from repro.workloads.traces import TaskArrival

if TYPE_CHECKING:  # pragma: no cover - avoids a service<->telemetry cycle
    from repro.telemetry import Telemetry

__all__ = ["ADMISSION_POLICIES", "AdmissionQueue", "QueuedRequest"]

#: Recognised admission policy names.
ADMISSION_POLICIES = ("drop-tail", "shed-fct", "token-bucket")


@dataclass
class QueuedRequest:
    """One admitted arrival waiting for a placement batch."""

    seq: int
    arrival: TaskArrival
    admitted_at: float


class AdmissionQueue:
    """Bounded request queue with a pluggable shed policy.

    The queue lives in *simulated* time: token refill and queue-wait
    accounting use the timestamps the caller passes in, never the wall
    clock, so admission decisions replay byte-identically.
    """

    def __init__(
        self,
        *,
        policy: str = "drop-tail",
        capacity: int = 1024,
        token_rate: Optional[float] = None,
        token_burst: Optional[float] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        if policy not in ADMISSION_POLICIES:
            raise ConfigError(
                f"unknown admission policy {policy!r}; "
                f"known: {', '.join(ADMISSION_POLICIES)}"
            )
        if capacity < 1:
            raise ConfigError(
                f"queue capacity must be >= 1, got {capacity!r}"
            )
        if policy == "token-bucket":
            if token_rate is None or token_rate <= 0:
                raise ConfigError(
                    "token-bucket admission needs a positive token_rate"
                )
            if token_burst is None or token_burst < 1:
                raise ConfigError(
                    "token-bucket admission needs token_burst >= 1"
                )
        self.policy = policy
        self.capacity = int(capacity)
        self._queue: List[QueuedRequest] = []
        self._token_rate = token_rate
        self._token_burst = token_burst
        # The bucket starts full so a session's first burst is admitted.
        self._tokens = float(token_burst) if token_burst is not None else 0.0
        self._token_refilled_at = 0.0
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.depth_peak = 0
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        reg = telemetry.registry
        if reg.enabled:
            self._ctr_offered = reg.counter("service.tasks_offered")
            self._ctr_rejected = reg.counter("service.tasks_rejected")
            self._gauge_depth = reg.gauge("service.queue_depth")
        else:
            self._ctr_offered = None
            self._ctr_rejected = None
            self._gauge_depth = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def offer(self, request: QueuedRequest) -> bool:
        """Admit or reject one arrival; returns True when admitted.

        ``request.admitted_at`` is the current simulated time (used for
        token refill); a shed-fct eviction counts as a rejection of the
        evicted request.
        """
        self.offered += 1
        if self._ctr_offered is not None:
            self._ctr_offered.inc()
        if self.policy == "token-bucket" and not self._take_token(
            request.admitted_at
        ):
            self._note_rejected()
            return False
        if len(self._queue) >= self.capacity:
            if self.policy == "shed-fct":
                victim_index = max(
                    range(len(self._queue)),
                    key=lambda i: self._queue[i].arrival.size,
                )
                victim = self._queue[victim_index]
                if victim.arrival.size > request.arrival.size:
                    # The queued giant is shed to make room for the
                    # newcomer (both can't fit; keep the short flow).
                    del self._queue[victim_index]
                    self._note_rejected()
                    self._enqueue(request)
                    return True
            self._note_rejected()
            return False
        self._enqueue(request)
        return True

    def take(self, max_items: int) -> List[QueuedRequest]:
        """Dequeue up to ``max_items`` requests in FIFO order."""
        batch = self._queue[:max_items]
        del self._queue[: len(batch)]
        if self._gauge_depth is not None:
            # The gauge keeps the high-water mark; depth after a drain is
            # reported through the heartbeat stream instead.
            pass
        return batch

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _enqueue(self, request: QueuedRequest) -> None:
        self._queue.append(request)
        self.admitted += 1
        if len(self._queue) > self.depth_peak:
            self.depth_peak = len(self._queue)
        if self._gauge_depth is not None:
            self._gauge_depth.set_max(len(self._queue))

    def _note_rejected(self) -> None:
        self.rejected += 1
        if self._ctr_rejected is not None:
            self._ctr_rejected.inc()

    def _take_token(self, now: float) -> bool:
        elapsed = now - self._token_refilled_at
        if elapsed > 0:
            self._tokens = min(
                float(self._token_burst),
                self._tokens + elapsed * float(self._token_rate),
            )
            self._token_refilled_at = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue(policy={self.policy!r}, depth={self.depth}, "
            f"capacity={self.capacity}, admitted={self.admitted}, "
            f"rejected={self.rejected})"
        )
