"""Open-loop arrival generation for the streaming placement service.

A closed-loop replay stops offering work when the trace runs out; an
*open-loop* source keeps offering tasks at its configured rate no matter
how far behind the service falls — which is what makes admission control
and backpressure measurable at all ("To schedule or not to schedule":
scheduling-policy wins can evaporate under realistic arrival processes).

Three profiles cover the arrival shapes the service is evaluated under:

* :class:`PoissonProfile` — constant-rate Poisson (the §6.1 process);
* :class:`DiurnalProfile` — sinusoidally modulated rate (day/night
  load swings);
* :class:`BurstProfile` — ON/OFF square wave (incast-like bursts over a
  quiet baseline).

Time-varying profiles are sampled with Lewis-Shedler thinning: candidate
points arrive at the profile's peak rate and are accepted with
probability ``rate(t) / peak``.  All randomness derives from
``hash_seed(seed, name)`` streams, so the same ``(seed, profile,
duration)`` always yields a byte-identical arrival stream, and drawing a
flow size never perturbs the arrival process.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.sim.randomness import hash_seed
from repro.topology.base import NodeId
from repro.workloads.distributions import EmpiricalDistribution
from repro.workloads.traces import TaskArrival, poisson_rate_for_load

__all__ = [
    "ArrivalProfile",
    "PoissonProfile",
    "DiurnalProfile",
    "BurstProfile",
    "OpenLoopSource",
    "profile_from_dict",
]


class ArrivalProfile(ABC):
    """Instantaneous task-arrival rate as a function of simulated time."""

    #: Registry/report name, e.g. ``"poisson"``.
    kind: str = "abstract"

    @abstractmethod
    def rate_at(self, t: float) -> float:
        """Arrival rate (tasks/sec) at simulated time ``t``."""

    @abstractmethod
    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` (the thinning envelope)."""

    def mean_rate(self) -> float:
        """Long-run average rate (used for offered-load accounting)."""
        return self.peak_rate()

    @abstractmethod
    def as_dict(self) -> Dict[str, float]:
        """JSON-serialisable parameters (round-trips via
        :func:`profile_from_dict`)."""


class PoissonProfile(ArrivalProfile):
    """Constant-rate Poisson arrivals."""

    kind = "poisson"

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be positive, got {rate!r}")
        self.rate = float(rate)

    def rate_at(self, t: float) -> float:
        return self.rate

    def peak_rate(self) -> float:
        return self.rate

    def mean_rate(self) -> float:
        return self.rate

    def as_dict(self) -> Dict[str, float]:
        return {"kind": self.kind, "rate": self.rate}

    def __repr__(self) -> str:
        return f"PoissonProfile(rate={self.rate!r})"


class DiurnalProfile(ArrivalProfile):
    """Sinusoidally modulated Poisson arrivals.

    ``rate(t) = base_rate * (1 + amplitude * sin(2*pi*(t + phase)/period))``
    — the classic day/night swing.  ``amplitude`` must stay below 1 so the
    rate never touches zero (the mean rate is exactly ``base_rate``).
    """

    kind = "diurnal"

    def __init__(
        self,
        base_rate: float,
        *,
        amplitude: float = 0.5,
        period: float = 10.0,
        phase: float = 0.0,
    ) -> None:
        if base_rate <= 0:
            raise WorkloadError(
                f"base rate must be positive, got {base_rate!r}"
            )
        if not 0 <= amplitude < 1:
            raise WorkloadError(
                f"amplitude must be in [0, 1), got {amplitude!r}"
            )
        if period <= 0:
            raise WorkloadError(f"period must be positive, got {period!r}")
        self.base_rate = float(base_rate)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def rate_at(self, t: float) -> float:
        swing = math.sin(2.0 * math.pi * (t + self.phase) / self.period)
        return self.base_rate * (1.0 + self.amplitude * swing)

    def peak_rate(self) -> float:
        return self.base_rate * (1.0 + self.amplitude)

    def mean_rate(self) -> float:
        return self.base_rate

    def as_dict(self) -> Dict[str, float]:
        return {
            "kind": self.kind,
            "base_rate": self.base_rate,
            "amplitude": self.amplitude,
            "period": self.period,
            "phase": self.phase,
        }

    def __repr__(self) -> str:
        return (
            f"DiurnalProfile(base_rate={self.base_rate!r}, "
            f"amplitude={self.amplitude!r}, period={self.period!r})"
        )


class BurstProfile(ArrivalProfile):
    """ON/OFF (two-state) modulated Poisson arrivals.

    The rate alternates deterministically between ``on_rate`` for
    ``on_duration`` seconds and ``off_rate`` for ``off_duration`` seconds
    — a square-wave burst pattern whose mean rate is the duty-cycle
    weighted average.  ``off_rate`` may be zero (pure ON/OFF).
    """

    kind = "burst"

    def __init__(
        self,
        on_rate: float,
        *,
        off_rate: float = 0.0,
        on_duration: float = 1.0,
        off_duration: float = 4.0,
    ) -> None:
        if on_rate <= 0:
            raise WorkloadError(f"on rate must be positive, got {on_rate!r}")
        if off_rate < 0:
            raise WorkloadError(
                f"off rate must be non-negative, got {off_rate!r}"
            )
        if on_duration <= 0 or off_duration <= 0:
            raise WorkloadError("burst durations must be positive")
        self.on_rate = float(on_rate)
        self.off_rate = float(off_rate)
        self.on_duration = float(on_duration)
        self.off_duration = float(off_duration)

    def rate_at(self, t: float) -> float:
        cycle = self.on_duration + self.off_duration
        return (
            self.on_rate
            if (t % cycle) < self.on_duration
            else self.off_rate
        )

    def peak_rate(self) -> float:
        return max(self.on_rate, self.off_rate)

    def mean_rate(self) -> float:
        cycle = self.on_duration + self.off_duration
        return (
            self.on_rate * self.on_duration
            + self.off_rate * self.off_duration
        ) / cycle

    def as_dict(self) -> Dict[str, float]:
        return {
            "kind": self.kind,
            "on_rate": self.on_rate,
            "off_rate": self.off_rate,
            "on_duration": self.on_duration,
            "off_duration": self.off_duration,
        }

    def __repr__(self) -> str:
        return (
            f"BurstProfile(on_rate={self.on_rate!r}, "
            f"off_rate={self.off_rate!r}, on={self.on_duration!r}s, "
            f"off={self.off_duration!r}s)"
        )


def profile_from_dict(spec: Dict) -> ArrivalProfile:
    """Build an :class:`ArrivalProfile` from its JSON form.

    The inverse of :meth:`ArrivalProfile.as_dict`.  Raises
    :class:`~repro.errors.WorkloadError` on unknown kinds or parameters.
    """
    if not isinstance(spec, dict):
        raise WorkloadError(f"arrival profile must be an object, got {spec!r}")
    params = dict(spec)
    kind = params.pop("kind", None)
    try:
        if kind == "poisson":
            return PoissonProfile(**params)
        if kind == "diurnal":
            base = params.pop("base_rate")
            return DiurnalProfile(base, **params)
        if kind == "burst":
            on = params.pop("on_rate")
            return BurstProfile(on, **params)
    except (KeyError, TypeError) as exc:
        raise WorkloadError(
            f"bad parameters for arrival profile {kind!r}: {exc}"
        ) from None
    raise WorkloadError(
        f"unknown arrival profile kind {kind!r}; "
        "known: poisson, diurnal, burst"
    )


class OpenLoopSource:
    """Seed-deterministic open-loop task-arrival stream.

    Iterating yields :class:`~repro.workloads.traces.TaskArrival` objects
    in time order until ``duration`` is exceeded.  The stream is lazy —
    the serving loop pulls the next arrival as simulated time advances,
    so a long session never materialises millions of arrivals up front —
    but :meth:`arrivals` materialises it for tests and offline use.

    Three independent seeded streams (arrival process, data-node choice,
    flow size) derive from the master seed, so e.g. changing the size
    distribution never perturbs arrival *times*.
    """

    def __init__(
        self,
        profile: ArrivalProfile,
        *,
        hosts: Sequence[NodeId],
        distribution: EmpiricalDistribution,
        duration: float,
        seed: int,
        tag_prefix: str = "svc",
    ) -> None:
        if not hosts:
            raise WorkloadError("open-loop source needs at least one host")
        if duration <= 0:
            raise WorkloadError(
                f"duration must be positive, got {duration!r}"
            )
        self.profile = profile
        self.duration = float(duration)
        self.seed = int(seed)
        self._hosts = list(hosts)
        self._distribution = distribution
        self._tag_prefix = tag_prefix

    def __iter__(self) -> Iterator[TaskArrival]:
        rng_arrivals = random.Random(hash_seed(self.seed, "service:arrivals"))
        rng_nodes = random.Random(hash_seed(self.seed, "service:nodes"))
        rng_sizes = random.Random(hash_seed(self.seed, "service:sizes"))
        peak = self.profile.peak_rate()
        hosts = self._hosts
        now = 0.0
        index = 0
        while True:
            now += rng_arrivals.expovariate(peak)
            if now > self.duration:
                return
            # Lewis-Shedler thinning: accept with rate(t)/peak.  The
            # acceptance draw happens for every candidate (even under a
            # constant-rate profile, where it always accepts) so the
            # *pattern* of stream consumption is profile-independent.
            accept = rng_arrivals.random()
            if accept * peak > self.profile.rate_at(now):
                continue
            yield TaskArrival(
                time=now,
                data_node=hosts[rng_nodes.randrange(len(hosts))],
                size=self._distribution.sample(rng_sizes),
                tag=f"{self._tag_prefix}{index}",
            )
            index += 1

    def arrivals(self) -> List[TaskArrival]:
        """Materialise the full stream (tests, offline analysis)."""
        return list(self)

    def expected_arrivals(self) -> float:
        """Mean number of arrivals the profile offers over the session."""
        return self.profile.mean_rate() * self.duration

    def __repr__(self) -> str:
        return (
            f"OpenLoopSource({self.profile!r}, duration={self.duration!r}, "
            f"seed={self.seed!r}, hosts={len(self._hosts)})"
        )


def rate_for_load(
    load: float,
    *,
    num_hosts: int,
    edge_capacity: float,
    mean_size: float,
) -> float:
    """Arrival rate offering ``load`` x aggregate edge capacity.

    Thin wrapper over
    :func:`~repro.workloads.traces.poisson_rate_for_load` so scenarios can
    specify a target utilisation instead of an absolute rate.
    """
    return poisson_rate_for_load(load, num_hosts, edge_capacity, mean_size)
