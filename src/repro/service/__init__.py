"""Streaming placement service: NEAT as a long-lived daemon.

Everywhere else in this repository placement runs *closed-loop*: a finite
trace is generated, replayed to completion, and compared across policies.
This package runs the same deterministic simulator *open-loop* — an
arrival process keeps offering load at its configured rate regardless of
what the system does with it, the way "heavy traffic from millions of
users" actually behaves — and serves each arrival through the NEAT
control plane as a long-lived placement service:

* :mod:`repro.service.workload` — seed-deterministic open-loop arrival
  sources (Poisson, diurnal-modulated, burst/ON-OFF) built on the
  paper's empirical size distributions;
* :mod:`repro.service.admission` — bounded request queue with
  pluggable admission policy (drop-tail, load-shed by predicted FCT,
  token bucket) and rejection/depth accounting;
* :mod:`repro.service.server` — the serving loop: drains admitted
  requests into the placement daemons in adaptive micro-batches,
  amortising one fabric-state read per batch across every request in
  it, and records per-request queue wait and decision latency;
* :mod:`repro.service.scenario` — the JSON scenario format consumed by
  ``python -m repro serve``.

Determinism contract: the same ``(seed, scenario)`` replays a
byte-identical decision log and final report; wall-clock measurements
(decision latency, placements/sec) are observation-only and never feed
back into the simulation.
"""

from repro.service.admission import AdmissionQueue, QueuedRequest
from repro.service.scenario import ServiceScenario
from repro.service.server import (
    PlacementServer,
    ServiceReport,
    render_service_report,
)
from repro.service.workload import (
    ArrivalProfile,
    BurstProfile,
    DiurnalProfile,
    OpenLoopSource,
    PoissonProfile,
    profile_from_dict,
)

__all__ = [
    "ArrivalProfile",
    "PoissonProfile",
    "DiurnalProfile",
    "BurstProfile",
    "OpenLoopSource",
    "profile_from_dict",
    "AdmissionQueue",
    "QueuedRequest",
    "ServiceScenario",
    "PlacementServer",
    "ServiceReport",
    "render_service_report",
]
