"""Scenario files for ``repro serve``.

A scenario JSON describes one serving session end to end — topology,
workload, arrival profile, placement policy, admission policy, batching —
so a session is reproducible from a single artifact::

    {
      "topology": {"pods": 2, "racks_per_pod": 2, "hosts_per_rack": 4},
      "workload": "websearch",
      "duration": 30.0,
      "seed": 42,
      "arrivals": {"kind": "diurnal", "load": 0.6, "amplitude": 0.5,
                   "period": 10.0},
      "admission": {"policy": "drop-tail", "capacity": 256},
      "batch": {"max_size": 16, "max_wait": 0.05}
    }

Arrival profiles may give an absolute ``rate`` (tasks/sec) or a target
``load`` (average edge utilisation, converted through the workload's mean
flow size and the 1 Gbps edge capacity the §6.1 experiments use — the
same conversion as closed-loop trace generation, so load values line up
across both modes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigError
from repro.service.admission import ADMISSION_POLICIES
from repro.service.workload import (
    ArrivalProfile,
    OpenLoopSource,
    profile_from_dict,
    rate_for_load,
)
from repro.topology.base import Topology
from repro.topology.fabrics import three_tier_clos
from repro.units import gbps
from repro.workloads.distributions import (
    EmpiricalDistribution,
    make_distribution,
)

__all__ = ["ServiceScenario"]

#: Edge-link capacity assumed by load -> rate conversion (§6.1 setup).
EDGE_CAPACITY = gbps(1)


def _require(spec: Dict[str, Any], key: str, context: str) -> Any:
    try:
        return spec[key]
    except KeyError:
        raise ConfigError(f"scenario {context} is missing {key!r}") from None


@dataclass(frozen=True)
class ServiceScenario:
    """One serving session's full configuration.

    Attributes:
        pods / racks_per_pod / hosts_per_rack / oversubscription: Clos
            dimensions (same knobs as :class:`MacroConfig`).
        workload: empirical size distribution name.
        scale: workload size multiplier (None -> distribution default).
        duration: session length in simulated seconds.
        seed: master seed; every stream derives from it.
        arrivals: raw arrival-profile spec (``rate`` or ``load`` based).
        predictor: FCT predictor for the NEAT control plane.
        admission_policy / queue_capacity / token_rate / token_burst:
            admission-control configuration.
        batch_max / batch_wait: micro-batching knobs — a batch is placed
            when it holds ``batch_max`` requests or the oldest has waited
            ``batch_wait`` simulated seconds, whichever comes first.
        batch_overhead / per_request_cost: modeled controller service
            time per batch, ``overhead + per_request * len(batch)``
            simulated seconds — the control-plane processing cost that
            lets an open-loop overload actually back the queue up.
        control_rtt / state_ttl / push_updates: control-plane knobs
            passed straight to :func:`~repro.placement.neat.build_neat`.
        name: display name for reports.
    """

    pods: int = 2
    racks_per_pod: int = 2
    hosts_per_rack: int = 4
    oversubscription: float = 1.0
    workload: str = "websearch"
    scale: Optional[float] = None
    duration: float = 30.0
    seed: int = 42
    arrivals: Dict[str, Any] = field(
        default_factory=lambda: {"kind": "poisson", "load": 0.6}
    )
    network_policy: str = "fair"
    predictor: str = "fair"
    max_candidates: Optional[int] = None
    admission_policy: str = "drop-tail"
    queue_capacity: int = 1024
    token_rate: Optional[float] = None
    token_burst: Optional[float] = None
    batch_max: int = 16
    batch_wait: float = 0.05
    batch_overhead: float = 0.001
    per_request_cost: float = 0.0001
    control_rtt: float = 0.0
    state_ttl: Optional[float] = None
    push_updates: bool = False
    name: str = "service"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigError(
                f"duration must be positive, got {self.duration!r}"
            )
        if self.batch_max < 1:
            raise ConfigError(
                f"batch_max must be >= 1, got {self.batch_max!r}"
            )
        if self.batch_wait < 0:
            raise ConfigError(
                f"batch_wait must be >= 0, got {self.batch_wait!r}"
            )
        if self.batch_overhead < 0 or self.per_request_cost < 0:
            raise ConfigError("service costs must be >= 0")
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ConfigError(
                f"unknown admission policy {self.admission_policy!r}; "
                f"known: {', '.join(ADMISSION_POLICIES)}"
            )
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity!r}"
            )
        if self.admission_policy == "token-bucket":
            if self.token_rate is None or self.token_rate <= 0:
                raise ConfigError(
                    "token-bucket admission needs a positive token_rate"
                )
            if self.token_burst is None or self.token_burst < 1:
                raise ConfigError(
                    "token-bucket admission needs token_burst >= 1"
                )

    @property
    def num_hosts(self) -> int:
        return self.pods * self.racks_per_pod * self.hosts_per_rack

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def build_topology(self) -> Topology:
        return three_tier_clos(
            pods=self.pods,
            racks_per_pod=self.racks_per_pod,
            hosts_per_rack=self.hosts_per_rack,
            oversubscription=self.oversubscription,
        )

    def build_distribution(self) -> EmpiricalDistribution:
        if self.scale is not None:
            return make_distribution(self.workload, scale=self.scale)
        return make_distribution(self.workload)

    def build_profile(
        self, distribution: Optional[EmpiricalDistribution] = None
    ) -> ArrivalProfile:
        """Resolve the arrival spec, converting ``load`` to a rate."""
        spec = dict(self.arrivals)
        load = spec.pop("load", None)
        if load is not None:
            dist = (
                distribution
                if distribution is not None
                else self.build_distribution()
            )
            rate = rate_for_load(
                float(load),
                num_hosts=self.num_hosts,
                edge_capacity=EDGE_CAPACITY,
                mean_size=dist.mean(),
            )
            kind = spec.get("kind", "poisson")
            rate_key = {
                "poisson": "rate",
                "diurnal": "base_rate",
                "burst": "on_rate",
            }.get(kind, "rate")
            if rate_key in spec:
                raise ConfigError(
                    f"arrival profile gives both 'load' and {rate_key!r}"
                )
            spec[rate_key] = rate
        return profile_from_dict(spec)

    def build_source(self, topology: Optional[Topology] = None) -> OpenLoopSource:
        topo = topology if topology is not None else self.build_topology()
        dist = self.build_distribution()
        return OpenLoopSource(
            self.build_profile(dist),
            hosts=topo.hosts,
            distribution=dist,
            duration=self.duration,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "topology": {
                "pods": self.pods,
                "racks_per_pod": self.racks_per_pod,
                "hosts_per_rack": self.hosts_per_rack,
            },
            "workload": self.workload,
            "duration": self.duration,
            "seed": self.seed,
            "arrivals": dict(self.arrivals),
            "network": self.network_policy,
            "predictor": self.predictor,
            "admission": {
                "policy": self.admission_policy,
                "capacity": self.queue_capacity,
            },
            "batch": {
                "max_size": self.batch_max,
                "max_wait": self.batch_wait,
                "overhead": self.batch_overhead,
                "per_request": self.per_request_cost,
            },
        }
        if self.oversubscription != 1.0:
            out["topology"]["oversubscription"] = self.oversubscription
        if self.scale is not None:
            out["scale"] = self.scale
        if self.token_rate is not None:
            out["admission"]["token_rate"] = self.token_rate
        if self.token_burst is not None:
            out["admission"]["token_burst"] = self.token_burst
        if self.max_candidates is not None:
            out["max_candidates"] = self.max_candidates
        if self.control_rtt:
            out["control_rtt"] = self.control_rtt
        if self.state_ttl is not None:
            out["state_ttl"] = self.state_ttl
        if self.push_updates:
            out["push_updates"] = self.push_updates
        return out

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "ServiceScenario":
        if not isinstance(spec, dict):
            raise ConfigError(f"scenario must be an object, got {spec!r}")
        topo = spec.get("topology", {})
        if not isinstance(topo, dict):
            raise ConfigError("scenario 'topology' must be an object")
        admission = spec.get("admission", {})
        if not isinstance(admission, dict):
            raise ConfigError("scenario 'admission' must be an object")
        batch = spec.get("batch", {})
        if not isinstance(batch, dict):
            raise ConfigError("scenario 'batch' must be an object")
        arrivals = _require(spec, "arrivals", "file")
        if not isinstance(arrivals, dict):
            raise ConfigError("scenario 'arrivals' must be an object")
        known = {
            "name",
            "topology",
            "workload",
            "scale",
            "duration",
            "seed",
            "arrivals",
            "network",
            "predictor",
            "max_candidates",
            "admission",
            "batch",
            "control_rtt",
            "state_ttl",
            "push_updates",
        }
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ConfigError(
                f"unknown scenario keys: {', '.join(unknown)}"
            )
        try:
            return cls(
                name=spec.get("name", "service"),
                pods=int(topo.get("pods", 2)),
                racks_per_pod=int(topo.get("racks_per_pod", 2)),
                hosts_per_rack=int(topo.get("hosts_per_rack", 4)),
                oversubscription=float(topo.get("oversubscription", 1.0)),
                workload=spec.get("workload", "websearch"),
                scale=spec.get("scale"),
                duration=float(_require(spec, "duration", "file")),
                seed=int(spec.get("seed", 42)),
                arrivals=dict(arrivals),
                network_policy=spec.get("network", "fair"),
                predictor=spec.get("predictor", "fair"),
                max_candidates=spec.get("max_candidates"),
                admission_policy=admission.get("policy", "drop-tail"),
                queue_capacity=int(admission.get("capacity", 1024)),
                token_rate=admission.get("token_rate"),
                token_burst=admission.get("token_burst"),
                batch_max=int(batch.get("max_size", 16)),
                batch_wait=float(batch.get("max_wait", 0.05)),
                batch_overhead=float(batch.get("overhead", 0.001)),
                per_request_cost=float(batch.get("per_request", 0.0001)),
                control_rtt=float(spec.get("control_rtt", 0.0)),
                state_ttl=spec.get("state_ttl"),
                push_updates=bool(spec.get("push_updates", False)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"bad scenario value: {exc}") from None

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "ServiceScenario":
        p = Path(path)
        try:
            spec = json.loads(p.read_text())
        except OSError as exc:
            raise ConfigError(f"cannot read scenario {p}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ConfigError(f"scenario {p} is not valid JSON: {exc}") from None
        return cls.from_dict(spec)
