"""Seeded random-number streams.

Every source of randomness in the library flows through a
:class:`RandomStreams` instance so that a single integer seed reproduces an
entire experiment.  Independent named streams keep subsystems decoupled:
drawing an extra flow size does not perturb the arrival process.
"""

from __future__ import annotations

import random
from typing import Dict


class RandomStreams:
    """A family of independent, deterministically derived RNG streams.

    Example:
        >>> streams = RandomStreams(7)
        >>> a = streams.get("arrivals")
        >>> b = streams.get("sizes")
        >>> a is streams.get("arrivals")
        True
        >>> a is b
        False
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this family was derived from."""
        return self._seed

    def get(self, name: str) -> random.Random:
        """Return (creating if needed) the stream with the given name.

        The stream's seed is derived from the master seed and the name, so
        the same ``(seed, name)`` pair always yields the same sequence
        regardless of creation order.
        """
        stream = self._streams.get(name)
        if stream is None:
            derived = hash_seed(self._seed, name)
            stream = random.Random(derived)
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per experiment repetition."""
        return RandomStreams(hash_seed(self._seed, name))


def hash_seed(seed: int, name: str) -> int:
    """Stable (cross-run, cross-process) derivation of a child seed.

    Python's built-in ``hash`` of strings is salted per process, so we use a
    small FNV-1a instead.
    """
    acc = 1469598103934665603 ^ (seed & 0xFFFFFFFFFFFFFFFF)
    for byte in name.encode("utf-8"):
        acc ^= byte
        acc = (acc * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return acc
