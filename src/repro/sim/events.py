"""Event primitives for the discrete-event engine.

Events are callbacks scheduled at an absolute simulation time.  The queue is
a binary heap keyed on ``(time, priority, sequence)``; the sequence number
makes ordering deterministic for simultaneous events, which in turn makes
whole simulations reproducible from a seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError

EventCallback = Callable[[], None]

#: Default scheduling priority.  Lower runs first among simultaneous events.
DEFAULT_PRIORITY = 100

#: Priority used for rate-recomputation events so that, at a tied timestamp,
#: arrivals/completions (DEFAULT_PRIORITY) are applied before rates are
#: recomputed.
RECOMPUTE_PRIORITY = 200

#: Priority used for injected fault events (link/host failures, window
#: activations) so that, at a tied timestamp, the fault takes effect *before*
#: ordinary arrivals/completions observe the network.
FAULT_PRIORITY = 50


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which to fire.
        priority: tie-break among simultaneous events (lower fires first).
        seq: insertion order, the final deterministic tie-break.
        callback: zero-argument callable invoked when the event fires.
        label: human-readable tag for tracing/debugging.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    priority: int
    seq: int
    callback: EventCallback = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


#: Compact the heap (drop cancelled garbage) only once it holds at least
#: this many entries; below that the lazy-skip in :meth:`EventQueue.pop`
#: is cheaper than rebuilding.
COMPACTION_MIN_SIZE = 64


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects.

    Cancelled events are skipped lazily on pop; when they outnumber the
    live events (per-flow completion events are rescheduled on every rate
    change, so cancellations are the common case) the heap is compacted in
    one linear pass.  Compaction cannot change pop order: events are
    totally ordered by ``(time, priority, seq)``, so any valid heap over
    the same live set yields the same sequence.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._high_water = 0
        self._compactions = 0

    def __len__(self) -> int:
        return self._live

    @property
    def high_water(self) -> int:
        """Most live events ever queued at once (heap pressure metric)."""
        return self._high_water

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: EventCallback,
        *,
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        event = Event(
            time=float(time),
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        if self._live > self._high_water:
            self._high_water = self._live
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded lazily here.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Account for an externally cancelled event (keeps ``len`` honest).

        Triggers a compaction when cancelled garbage outnumbers the live
        events in a sufficiently large heap.
        """
        self._live = max(0, self._live - 1)
        garbage = len(self._heap) - self._live
        if garbage > self._live and len(self._heap) >= COMPACTION_MIN_SIZE:
            self._heap = [event for event in self._heap if not event.cancelled]
            heapq.heapify(self._heap)
            self._compactions += 1

    @property
    def compactions(self) -> int:
        """Number of garbage-collection passes performed on the heap."""
        return self._compactions
