"""Discrete-event simulation core.

This package substitutes for the paper's ns2 substrate: a deterministic
event engine (:class:`~repro.sim.engine.Engine`) on which the flow-level
network fabric, control-plane daemons, and workload generators run.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Engine
from repro.sim.events import DEFAULT_PRIORITY, RECOMPUTE_PRIORITY, Event, EventQueue
from repro.sim.randomness import RandomStreams, hash_seed

__all__ = [
    "SimClock",
    "Engine",
    "Event",
    "EventQueue",
    "RandomStreams",
    "hash_seed",
    "DEFAULT_PRIORITY",
    "RECOMPUTE_PRIORITY",
]
