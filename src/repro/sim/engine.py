"""The discrete-event simulation engine.

The engine owns the clock and the event queue, and runs events in
deterministic timestamp order.  Subsystems (the network fabric, daemons,
workload generators) schedule callbacks through :meth:`Engine.schedule` /
:meth:`Engine.schedule_at`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import DEFAULT_PRIORITY, Event, EventCallback, EventQueue

if TYPE_CHECKING:  # pragma: no cover - avoids a sim<->telemetry cycle
    from repro.telemetry import Telemetry


class Engine:
    """Deterministic discrete-event simulation engine.

    Example:
        >>> engine = Engine()
        >>> fired = []
        >>> _ = engine.schedule_at(2.0, lambda: fired.append(engine.now))
        >>> _ = engine.schedule_at(1.0, lambda: fired.append(engine.now))
        >>> engine.run()
        >>> fired
        [1.0, 2.0]
    """

    def __init__(
        self,
        *,
        start_time: float = 0.0,
        max_events: int = 50_000_000,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self._clock = SimClock(start_time)
        self._queue = EventQueue()
        self._max_events = max_events
        self._events_processed = 0
        self._running = False
        self._telemetry = telemetry
        self._events_reported = 0
        # Pre-bound profiler (None when disabled) so the hot dispatch
        # loop pays a single identity check per event.  Spans measure
        # wall-clock only; they never touch simulation state.
        self._prof = (
            telemetry.profiler
            if telemetry is not None and telemetry.profiler.enabled
            else None
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._clock.now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    @property
    def heap_high_water(self) -> int:
        """Most events ever simultaneously queued (memory pressure)."""
        return self._queue.high_water

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        *,
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self._queue.push(
            self.now + delay, callback, priority=priority, label=label
        )

    def schedule_at(
        self,
        when: float,
        callback: EventCallback,
        *,
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``when`` (>= now)."""
        if when < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: now={self.now!r}, when={when!r}"
            )
        return self._queue.push(
            max(when, self.now), callback, priority=priority, label=label
        )

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (no-op if already cancelled)."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        event = self._queue.pop()
        if event is None:
            return False
        self._clock.advance_to(event.time)
        self._events_processed += 1
        if self._events_processed > self._max_events:
            raise SimulationError(
                f"exceeded max_events={self._max_events}; "
                "likely a runaway event loop"
            )
        prof = self._prof
        if prof is not None:
            # Per-event-type dispatch spans: scheduled callbacks carry a
            # label ("fabric-completion", "fabric-hint", ...); unlabeled
            # events (workload arrivals, ad-hoc callbacks) pool together.
            with prof.span("engine.event." + (event.label or "unlabeled")):
                event.callback()
        else:
            event.callback()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue empties or the horizon is reached.

        Args:
            until: if given, stop once the next event would fire after this
                time, and advance the clock exactly to ``until``.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None:
                self._clock.advance_to(until)
        finally:
            self._running = False
            if self._telemetry is not None and self._telemetry.enabled:
                self._report_stats()

    def _report_stats(self) -> None:
        """Publish engine-level stats at the end of each :meth:`run`."""
        tele = self._telemetry
        delta = self._events_processed - self._events_reported
        self._events_reported = self._events_processed
        registry = tele.registry
        if registry.enabled:
            registry.counter("engine.events_processed").inc(delta)
            registry.gauge("engine.heap_high_water").set_max(
                self.heap_high_water
            )
        if tele.trace.active:
            tele.trace.emit(
                "engine_run",
                self.now,
                {
                    "events_processed": self._events_processed,
                    "heap_high_water": self.heap_high_water,
                    "pending": self.pending_events,
                },
            )
        if tele.causal.active:
            tele.causal.on_engine_stats(
                self.now,
                events_processed=self._events_processed,
                heap_high_water=self.heap_high_water,
            )

    def __repr__(self) -> str:
        return (
            f"Engine(now={self.now!r}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
