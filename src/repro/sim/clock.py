"""Simulation clock.

A tiny wrapper around a float so that every subsystem shares one
monotonically non-decreasing notion of "now".  The engine is the only
component allowed to advance the clock.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonically non-decreasing simulation time source."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            SimulationError: if ``when`` precedes the current time (beyond a
                tiny floating-point tolerance).
        """
        if when < self._now - 1e-12:
            raise SimulationError(
                f"time went backwards: now={self._now!r}, requested={when!r}"
            )
        self._now = max(self._now, float(when))

    def __repr__(self) -> str:
        return f"SimClock(now={self._now!r})"
