"""Executes a :class:`~repro.faults.plan.FaultPlan` against a live run.

The injector is the single place where a declarative plan meets the
simulation: point events are scheduled through the event engine at
``FAULT_PRIORITY`` (so a fault lands before same-timestamp arrivals and
completions), and window events turn the injector into the *fault model*
the message bus and placement daemon consult on every delivery.

Determinism: the only randomness is the per-message loss coin flip, drawn
from a stream derived from ``plan.seed`` — message deliveries happen in
deterministic DES order, so the draw sequence (and hence the whole faulted
run) is byte-reproducible for a fixed (seed, plan) pair.  An empty plan
installs nothing and draws nothing.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional

from repro.errors import FaultError
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    HostDown,
    LinkDegrade,
    LinkDown,
    MessageDelay,
    MessageLoss,
    StateStaleness,
)
from repro.sim.events import FAULT_PRIORITY
from repro.sim.randomness import hash_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.daemons.bus import MessageBus
    from repro.daemons.placement_daemon import TaskPlacementDaemon
    from repro.network.fabric import NetworkFabric
    from repro.telemetry import Telemetry

__all__ = ["FaultInjector", "arm_faults"]


class FaultInjector:
    """Schedules a plan's point events and models its delivery windows."""

    def __init__(
        self,
        plan: FaultPlan,
        fabric: "NetworkFabric",
        *,
        bus: Optional["MessageBus"] = None,
        placement_daemon: Optional["TaskPlacementDaemon"] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        """Args:
            plan: the validated fault plan to execute.
            fabric: the network the data-plane faults mutate.
            bus: when given, loss/delay windows install the injector as
                the bus's fault model and host-down events mark endpoints
                unreachable.
            placement_daemon: when given, staleness windows install the
                injector as the daemon's fault model (snapshot-age bias).
            telemetry: counts injected/applied faults and traces each
                application when enabled.
        """
        plan.validate(fabric.topology)
        self._plan = plan
        self._fabric = fabric
        self._engine = fabric.engine
        self._bus = bus
        self._daemon = placement_daemon
        self._armed = False
        self._applied = 0
        self._tasks_dropped = 0
        self._rng = random.Random(hash_seed(plan.seed, "faults:messages"))
        self._loss: List[MessageLoss] = [
            e for e in plan.events if isinstance(e, MessageLoss)
        ]
        self._delay: List[MessageDelay] = [
            e for e in plan.events if isinstance(e, MessageDelay)
        ]
        self._stale: List[StateStaleness] = [
            e for e in plan.events if isinstance(e, StateStaleness)
        ]
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._trace = telemetry.trace
        # Causal tracer (None when disabled): declares window events at
        # arm time and records each point-fault application, so blame
        # decomposition can bound fault-attributed loss to real windows.
        self._causal = telemetry.causal if telemetry.causal.active else None
        reg = telemetry.registry
        if reg.enabled:
            self._ctr_injected = reg.counter("faults.injected")
            self._ctr_applied = reg.counter("faults.applied")
            self._ctr_dropped_tasks = reg.counter("faults.tasks_dropped")
        else:
            self._ctr_injected = None
            self._ctr_applied = None
            self._ctr_dropped_tasks = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def applied_faults(self) -> int:
        """Point events that have fired so far."""
        return self._applied

    @property
    def tasks_dropped(self) -> int:
        """Arrivals the replay loop discarded because their data node or
        every candidate host was down."""
        return self._tasks_dropped

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule the plan's point events and install window models."""
        if self._armed:
            raise FaultError("fault injector is already armed")
        self._armed = True
        if self._plan.is_empty:
            return
        for event in self._plan.point_events():
            self._engine.schedule_at(
                event.time,
                lambda e=event: self._apply(e),
                priority=FAULT_PRIORITY,
                label="fault",
            )
        if (self._loss or self._delay) and self._bus is not None:
            self._bus.install_fault_model(self)
        if self._stale and self._daemon is not None:
            self._daemon.set_fault_model(self)
        if self._causal is not None:
            for event in self._plan.window_events():
                self._causal.on_window(self._engine.now, event.to_dict())
        if self._ctr_injected is not None:
            self._ctr_injected.inc(len(self._plan.events))

    def _apply(self, event: FaultEvent) -> None:
        self._applied += 1
        if self._ctr_applied is not None:
            self._ctr_applied.inc()
        if self._trace.active:
            self._trace.emit("fault_applied", self._engine.now, event.to_dict())
        if self._causal is not None:
            self._causal.on_fault(self._engine.now, event.to_dict())
        if isinstance(event, LinkDown):
            self._fabric.fail_link(event.link)
        elif isinstance(event, LinkDegrade):
            self._fabric.degrade_link(event.link, event.factor)
        elif isinstance(event, HostDown):
            self._fabric.fail_host(event.host)
            if self._bus is not None:
                self._bus.mark_host_down(event.host)
        else:  # pragma: no cover - point_events() filters to the above
            raise FaultError(f"cannot apply fault event {event!r}")

    def note_task_dropped(self, tag: str) -> None:
        """Record an arrival the replay loop could not place (host down)."""
        self._tasks_dropped += 1
        if self._ctr_dropped_tasks is not None:
            self._ctr_dropped_tasks.inc()
        if self._trace.active:
            self._trace.emit("task_dropped", self._engine.now, {"tag": tag})

    # ------------------------------------------------------------------
    # Fault-model interface (consulted by bus and placement daemon)
    # ------------------------------------------------------------------
    def _active_windows(self, windows, now: float):
        for window in windows:
            if window.start <= now and (
                window.until is None or now < window.until
            ):
                yield window

    def should_drop(self, kind: str) -> bool:
        """One loss decision for a message of ``kind`` at the current time.

        ``p >= 1`` windows drop without consuming a random draw and
        ``p <= 0`` windows never match, so plans built purely from
        deterministic windows stay draw-free.
        """
        now = self._engine.now
        for window in self._active_windows(self._loss, now):
            if "all" not in window.kinds and kind not in window.kinds:
                continue
            if window.p >= 1.0:
                return True
            if window.p <= 0.0:
                continue
            if self._rng.random() < window.p:
                return True
        return False

    def message_delay(self) -> float:
        """Extra one-way latency active right now (windows stack)."""
        now = self._engine.now
        return sum(w.delay for w in self._active_windows(self._delay, now))

    def staleness_lag(self) -> float:
        """Extra age added to every node-state snapshot right now."""
        now = self._engine.now
        lags = [w.lag for w in self._active_windows(self._stale, now)]
        return max(lags) if lags else 0.0


def arm_faults(
    plan: Optional[FaultPlan],
    fabric: "NetworkFabric",
    policy=None,
    telemetry: Optional["Telemetry"] = None,
) -> Optional[FaultInjector]:
    """Build and arm an injector for a replay, or ``None`` for no faults.

    An empty plan returns ``None`` outright: nothing is scheduled, no RNG
    stream is created, and the run is byte-identical to a plan-free run.
    ``policy`` is duck-typed — its ``bus`` / ``daemon`` attributes (NEAT)
    are wired in when present; baselines have neither and only see the
    data-plane faults.
    """
    if plan is None or plan.is_empty:
        return None
    injector = FaultInjector(
        plan,
        fabric,
        bus=getattr(policy, "bus", None),
        placement_daemon=getattr(policy, "daemon", None),
        telemetry=telemetry,
    )
    injector.arm()
    return injector
