"""Seed-deterministic fault injection (link/host/daemon chaos).

Public surface: the declarative plan types plus the injector that executes
a plan against a live simulation.  See ``FaultPlan`` for the JSON format
and ``FaultInjector`` for determinism guarantees.
"""

from repro.faults.injector import FaultInjector, arm_faults
from repro.faults.plan import (
    MESSAGE_KINDS,
    FaultEvent,
    FaultPlan,
    HostDown,
    LinkDegrade,
    LinkDown,
    MessageDelay,
    MessageLoss,
    StateStaleness,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "arm_faults",
    "LinkDown",
    "LinkDegrade",
    "HostDown",
    "MessageLoss",
    "MessageDelay",
    "StateStaleness",
    "MESSAGE_KINDS",
]
