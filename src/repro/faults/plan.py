"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` is a list of timed fault events plus a seed.  Plans are
plain data: they serialise to/from JSON, validate against a topology, and
have a *canonical* dict form (sorted keys, ``name`` excluded) so that two
semantically identical plans hash identically — the campaign layer folds the
canonical form into its content-addressed cache key.

Two families of events exist:

* **Point events** fire once at an absolute simulation time and mutate the
  data plane: :class:`LinkDown`, :class:`LinkDegrade`, :class:`HostDown`.
* **Window events** open (and optionally close) a degraded-delivery regime on
  the control plane: :class:`MessageLoss`, :class:`MessageDelay`,
  :class:`StateStaleness`.

Randomness (i.e. per-message loss coin flips) is drawn from a stream derived
from ``FaultPlan.seed`` via :func:`repro.sim.randomness.hash_seed`, so a
faulted run is byte-reproducible for a fixed (seed, plan) pair and an empty
plan draws nothing at all.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.errors import FaultError

__all__ = [
    "FaultEvent",
    "LinkDown",
    "LinkDegrade",
    "HostDown",
    "MessageLoss",
    "MessageDelay",
    "StateStaleness",
    "FaultPlan",
    "MESSAGE_KINDS",
]

#: Message classes a :class:`MessageLoss` window may target.  ``"all"``
#: matches every bus message; ``"node_state"`` matches only pushed
#: node-state updates (the paper's periodic state dissemination).
MESSAGE_KINDS = ("all", "node_state", "prediction")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultError(message)


def _require_link(topology: Any, link_id: str, kind: str) -> None:
    try:
        topology.link(link_id)
    except Exception:
        raise FaultError(f"{kind} references unknown link {link_id!r}") from None


def _finite_nonneg(value: Any, what: str) -> float:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{what} must be a number, got {value!r}")
    value = float(value)
    _require(math.isfinite(value) and value >= 0.0,
             f"{what} must be finite and >= 0, got {value!r}")
    return value


@dataclass(frozen=True)
class FaultEvent:
    """Base class for all plan entries (see subclasses for semantics)."""

    kind: ClassVar[str] = ""

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def validate(self, topology: Optional[Any] = None) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """Permanently fail ``link`` at ``time``.

    Flows crossing the link are rerouted if an alternate path exists,
    otherwise aborted (their records carry ``aborted=True`` semantics via a
    negative-FCT sentinel in telemetry counters).
    """

    time: float
    link: str
    kind: ClassVar[str] = "link_down"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "time": self.time, "link": self.link}

    def validate(self, topology: Optional[Any] = None) -> None:
        _finite_nonneg(self.time, "LinkDown.time")
        _require(isinstance(self.link, str) and bool(self.link),
                 "LinkDown.link must be a non-empty link id")
        if topology is not None:
            _require_link(topology, self.link, "LinkDown")


@dataclass(frozen=True)
class LinkDegrade(FaultEvent):
    """Scale ``link``'s capacity by ``factor`` (0 < factor) at ``time``.

    Factors below 1 degrade; factors above 1 restore/upgrade (so a plan can
    express a brown-out window as degrade + restore).
    """

    time: float
    link: str
    factor: float
    kind: ClassVar[str] = "link_degrade"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "time": self.time,
            "link": self.link,
            "factor": self.factor,
        }

    def validate(self, topology: Optional[Any] = None) -> None:
        _finite_nonneg(self.time, "LinkDegrade.time")
        _require(isinstance(self.link, str) and bool(self.link),
                 "LinkDegrade.link must be a non-empty link id")
        _require(
            isinstance(self.factor, (int, float))
            and not isinstance(self.factor, bool)
            and math.isfinite(float(self.factor))
            and float(self.factor) > 0.0,
            f"LinkDegrade.factor must be finite and > 0, got {self.factor!r}",
        )
        if topology is not None:
            _require_link(topology, self.link, "LinkDegrade")


@dataclass(frozen=True)
class HostDown(FaultEvent):
    """Take ``host`` down at ``time``: both its edge links fail and its
    daemons become unreachable on the bus."""

    time: float
    host: str
    kind: ClassVar[str] = "host_down"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "time": self.time, "host": self.host}

    def validate(self, topology: Optional[Any] = None) -> None:
        _finite_nonneg(self.time, "HostDown.time")
        _require(isinstance(self.host, str) and bool(self.host),
                 "HostDown.host must be a non-empty host id")
        if topology is not None:
            _require(self.host in topology.hosts,
                     f"HostDown references unknown host {self.host!r}")


@dataclass(frozen=True)
class MessageLoss(FaultEvent):
    """Drop each matching bus message with probability ``p`` during
    ``[start, until)`` (``until=None`` means forever)."""

    start: float
    p: float
    until: Optional[float] = None
    kinds: Tuple[str, ...] = ("all",)
    kind: ClassVar[str] = "message_loss"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "p": self.p,
            "until": self.until,
            "kinds": list(self.kinds),
        }

    def validate(self, topology: Optional[Any] = None) -> None:
        _finite_nonneg(self.start, "MessageLoss.start")
        _require(
            isinstance(self.p, (int, float))
            and not isinstance(self.p, bool)
            and 0.0 <= float(self.p) <= 1.0,
            f"MessageLoss.p must be in [0, 1], got {self.p!r}",
        )
        if self.until is not None:
            until = _finite_nonneg(self.until, "MessageLoss.until")
            _require(until >= float(self.start),
                     "MessageLoss.until must be >= start")
        _require(len(self.kinds) > 0, "MessageLoss.kinds must be non-empty")
        for k in self.kinds:
            _require(k in MESSAGE_KINDS,
                     f"MessageLoss.kinds entry {k!r} not in {MESSAGE_KINDS}")


@dataclass(frozen=True)
class MessageDelay(FaultEvent):
    """Add ``delay`` seconds of one-way latency to every pushed bus message
    during ``[start, until)``."""

    start: float
    delay: float
    until: Optional[float] = None
    kind: ClassVar[str] = "message_delay"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "delay": self.delay,
            "until": self.until,
        }

    def validate(self, topology: Optional[Any] = None) -> None:
        _finite_nonneg(self.start, "MessageDelay.start")
        _finite_nonneg(self.delay, "MessageDelay.delay")
        if self.until is not None:
            until = _finite_nonneg(self.until, "MessageDelay.until")
            _require(until >= float(self.start),
                     "MessageDelay.until must be >= start")


@dataclass(frozen=True)
class StateStaleness(FaultEvent):
    """Force placement daemons to see node-state snapshots as at least
    ``lag`` seconds old during ``[start, until)`` — models the paper's
    periodic-update staleness without dropping any messages."""

    start: float
    lag: float
    until: Optional[float] = None
    kind: ClassVar[str] = "state_staleness"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "lag": self.lag,
            "until": self.until,
        }

    def validate(self, topology: Optional[Any] = None) -> None:
        _finite_nonneg(self.start, "StateStaleness.start")
        _finite_nonneg(self.lag, "StateStaleness.lag")
        if self.until is not None:
            until = _finite_nonneg(self.until, "StateStaleness.until")
            _require(until >= float(self.start),
                     "StateStaleness.until must be >= start")


_EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (LinkDown, LinkDegrade, HostDown, MessageLoss, MessageDelay, StateStaleness)
}


def _event_from_dict(raw: Dict[str, Any]) -> FaultEvent:
    _require(isinstance(raw, dict), f"fault event must be an object, got {raw!r}")
    kind = raw.get("kind")
    _require(kind in _EVENT_TYPES,
             f"unknown fault kind {kind!r}; expected one of {sorted(_EVENT_TYPES)}")
    cls = _EVENT_TYPES[kind]
    payload = {k: v for k, v in raw.items() if k != "kind"}
    if cls is MessageLoss and "kinds" in payload:
        kinds = payload["kinds"]
        _require(isinstance(kinds, (list, tuple)),
                 f"MessageLoss.kinds must be a list, got {kinds!r}")
        payload["kinds"] = tuple(kinds)
    try:
        event = cls(**payload)
    except TypeError as exc:
        raise FaultError(f"bad fields for fault kind {kind!r}: {exc}") from exc
    return event


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault events plus the seed that drives any
    randomness they require.

    ``name`` is a display label only — it is excluded from :meth:`canonical`
    so renaming a plan does not invalidate cached campaign cells.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, seed: int = 0) -> "FaultPlan":
        """A plan that injects nothing (runs byte-identically to no plan)."""
        return cls(events=(), seed=seed, name="empty")

    @property
    def is_empty(self) -> bool:
        return not self.events

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, topology: Optional[Any] = None) -> None:
        """Raise :class:`FaultError` on any malformed event (optionally
        checking link/host references against ``topology``)."""
        _require(isinstance(self.seed, int) and not isinstance(self.seed, bool),
                 f"FaultPlan.seed must be an int, got {self.seed!r}")
        for event in self.events:
            _require(isinstance(event, FaultEvent),
                     f"plan entry {event!r} is not a FaultEvent")
            event.validate(topology)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    def canonical(self) -> Dict[str, Any]:
        """Canonical form for hashing: ``name`` excluded, keys stable."""
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultPlan":
        _require(isinstance(raw, dict), f"fault plan must be an object, got {raw!r}")
        events_raw = raw.get("events", [])
        _require(isinstance(events_raw, list),
                 f"fault plan 'events' must be a list, got {events_raw!r}")
        seed = raw.get("seed", 0)
        name = raw.get("name", "")
        _require(isinstance(name, str), f"fault plan 'name' must be a string, got {name!r}")
        plan = cls(
            events=tuple(_event_from_dict(entry) for entry in events_raw),
            seed=seed,
            name=name,
        )
        plan.validate()
        return plan

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def load(cls, path: Any) -> "FaultPlan":
        """Read and parse a plan from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise FaultError(f"cannot read fault plan {path!r}: {exc}") from exc
        return cls.from_json(text)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def point_events(self) -> List[FaultEvent]:
        """Events that fire once at an absolute time, in (time, insertion)
        order."""
        timed = [e for e in self.events
                 if isinstance(e, (LinkDown, LinkDegrade, HostDown))]
        return sorted(timed, key=lambda e: (e.time,))  # stable sort keeps insertion order

    def window_events(self) -> List[FaultEvent]:
        """Control-plane delivery windows, in (start, insertion) order."""
        windows = [e for e in self.events
                   if isinstance(e, (MessageLoss, MessageDelay, StateStaleness))]
        return sorted(windows, key=lambda e: (e.start,))

    def describe(self) -> str:
        """One line per event, for `repro faults validate` output."""
        lines = [f"plan {self.name or '<unnamed>'}: seed={self.seed}, "
                 f"{len(self.events)} event(s)"]
        for event in self.events:
            payload = {k: v for k, v in event.to_dict().items() if k != "kind"}
            fields = ", ".join(f"{k}={v}" for k, v in payload.items())
            lines.append(f"  - {event.kind}: {fields}")
        return "\n".join(lines)
