"""repro — a full reproduction of NEAT (CoNEXT 2016).

*Network Scheduling Aware Task Placement in Datacenters*, Munir et al.

The package provides:

* a deterministic discrete-event, fluid-model datacenter network simulator
  with pluggable flow (Fair/FCFS/LAS/SRPT) and coflow (Varys/SCF/FCFS/LAS)
  scheduling policies (:mod:`repro.sim`, :mod:`repro.network`,
  :mod:`repro.coflow`, :mod:`repro.topology`);
* NEAT's task completion time predictor — the paper's core contribution —
  with exact and histogram-compressed state (:mod:`repro.predictor`);
* the NEAT placement framework (Algorithm 1) plus the minLoad / minDist /
  minFCT baselines and the distributed daemon control plane
  (:mod:`repro.placement`, :mod:`repro.daemons`);
* cluster/job models, production-derived workloads, metrics, and one
  experiment module per paper figure (:mod:`repro.cluster`,
  :mod:`repro.workloads`, :mod:`repro.metrics`, :mod:`repro.experiments`).

Quickstart::

    from repro.sim import Engine
    from repro.topology import three_tier_clos
    from repro.network import NetworkFabric, make_allocator
    from repro.placement import build_neat, PlacementRequest

    engine = Engine()
    fabric = NetworkFabric(engine, three_tier_clos(), make_allocator("fair"))
    neat = build_neat(fabric)
    host = neat.place(PlacementRequest(
        size=8e6, data_node="h000",
        candidates=tuple(fabric.topology.hosts[1:]),
    ))
    fabric.submit("h000", host, 8e6)
    engine.run()
    print(fabric.records[-1].fct)
"""

from repro.errors import (
    ConfigError,
    CoflowError,
    DaemonError,
    DaemonUnreachable,
    FaultError,
    FlowError,
    MessageDropped,
    PlacementError,
    PredictionError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    WorkloadError,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "TopologyError",
    "RoutingError",
    "FlowError",
    "CoflowError",
    "PredictionError",
    "PlacementError",
    "WorkloadError",
    "DaemonError",
    "DaemonUnreachable",
    "MessageDropped",
    "FaultError",
    "ConfigError",
]
