"""Control-plane message types exchanged between NEAT daemons (§3, Fig 4).

The task placement daemon sends prediction requests to per-node network
daemons; replies carry the predicted completion time *and* the node's
current state (smallest residual flow size), which the placement daemon
caches for future preferred-host filtering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.base import NodeId


@dataclass(frozen=True)
class FlowPredictionRequest:
    """Ask a node daemon: what FCT would a new flow of ``size`` see?

    ``direction`` is ``"in"`` for a flow terminating at the node (the
    normal task placement case — the task reads its input) or ``"out"``
    for a flow sourced at the node (used to account for the data node's
    uplink).
    """

    size: float
    direction: str = "in"


@dataclass(frozen=True)
class CoflowPredictionRequest:
    """Ask a node daemon: what CCT would a new coflow see on this node?

    Attributes:
        total_size: s_{c0} — the coflow's total bits.
        size_on_link: s_{c0,l} — the bits that would cross this node's
            edge link (``direction`` selects uplink/downlink).
    """

    total_size: float
    size_on_link: float
    direction: str = "in"


@dataclass(frozen=True)
class PredictionReply:
    """A network daemon's answer.

    Attributes:
        host: the replying node.
        predicted_time: predicted FCT (or CCT) in seconds on the node's
            edge link.
        node_state: smallest residual flow size on the node, ``inf`` when
            idle (§5.1.1's node state).
    """

    host: NodeId
    predicted_time: float
    node_state: float


@dataclass(frozen=True)
class NodeStateUpdate:
    """Push-style node-state refresh (placement daemon cache maintenance)."""

    host: NodeId
    node_state: float


@dataclass(frozen=True)
class LinkStateRequest:
    """Ask a node daemon for its raw edge-link state.

    Unlike :class:`FlowPredictionRequest` the answer is *size-independent*:
    one reply lets the controller score any number of hypothetical flows
    locally.  The streaming placement service uses this to amortise a
    single state read per host across a whole micro-batch of requests
    (§5.2's state shipping, batched).
    """

    direction: str = "in"


@dataclass(frozen=True)
class LinkStateReply:
    """A node daemon's edge-link snapshot.

    Attributes:
        host: the replying node.
        link: the edge link's id.
        capacity: the link's capacity in bits/sec.
        flow_sizes: residual sizes of the flows currently on the link.
        node_state: smallest residual flow size on the node (§5.1.1).
    """

    host: NodeId
    link: str
    capacity: float
    flow_sizes: tuple
    node_state: float


def message_kind(payload) -> str:
    """Classify a bus payload for fault-plan loss targeting.

    ``"node_state"`` covers push-style state refreshes; everything else on
    the bus is part of a prediction exchange.
    """
    if isinstance(payload, NodeStateUpdate):
        return "node_state"
    return "prediction"
