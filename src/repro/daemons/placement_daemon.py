"""NEAT's global task placement daemon (§3, §5, Algorithm 1).

Places each task in two steps:

1. **Preferred hosts** — using *cached* node states (smallest residual flow
   size per node), keep only candidates that are idle or whose flows are
   all no smaller than the new task's flow; fall back to every candidate
   when the filter empties (Algorithm 1 lines 10-12).  An optional
   locality filter additionally restricts to hosts near the input data
   (§5.2 "Reduced Communication Overhead").
2. **Best host** — query the network daemons of the surviving candidates
   for the predicted completion time on their edge link and pick the
   minimum (the single-switch abstraction: only edge links bottleneck).

Every reply refreshes the node-state cache; placements update it
optimistically so back-to-back decisions see their own effects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.daemons.bus import MessageBus

if TYPE_CHECKING:  # pragma: no cover - avoids a daemons<->telemetry cycle
    from repro.telemetry import Telemetry
from repro.daemons.messages import (
    CoflowPredictionRequest,
    FlowPredictionRequest,
    LinkStateReply,
    LinkStateRequest,
    NodeStateUpdate,
    PredictionReply,
)
from repro.errors import DaemonUnreachable, MessageDropped, PlacementError
from repro.placement.base import PlacementRequest, pick_min
from repro.predictor.state import link_state_from_flows
from repro.topology.base import NodeId, Topology


@dataclass
class PlacementDecision:
    """Outcome of one placement, with the evidence used to make it.

    ``candidate_scores`` pairs each scored host with its predicted
    completion time (the data behind ``host`` / ``predicted_time``);
    ``kind`` distinguishes flow, coflow-constituent, and reducer
    decisions; ``tag`` carries the task label for joining realized
    completion times in the telemetry layer.
    """

    host: NodeId
    predicted_time: float
    preferred_hosts: Tuple[NodeId, ...]
    queried_hosts: Tuple[NodeId, ...]
    used_fallback: bool
    kind: str = "flow"
    tag: str = ""
    size: float = 0.0
    candidate_scores: Tuple[Tuple[NodeId, float], ...] = field(default=())
    #: True when the daemon skipped predictions entirely and placed by
    #: least-loaded cached state (stale snapshots or unreachable daemons).
    used_stale_fallback: bool = False


class TaskPlacementDaemon:
    """The global controller of Figure 4."""

    def __init__(
        self,
        topology: Topology,
        bus: MessageBus,
        *,
        rng: Optional[random.Random] = None,
        use_node_state: bool = True,
        locality_hops: Optional[int] = None,
        include_source_link: bool = False,
        state_ttl: Optional[float] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        """Args:
            topology: for locality distances.
            bus: control-plane transport to the network daemons.
            rng: tie-break randomness (host-id order if omitted).
            use_node_state: disable to get the minFCT strawman of Fig. 9.
            locality_hops: when set, only consider candidates within this
                hop distance of the input data if any exist (§5.2).
            state_ttl: maximum tolerated node-state snapshot age in
                seconds.  When the cached state of *every* known candidate
                is older than this, the daemon stops trusting predictions
                and falls back to least-loaded placement over its cache —
                the paper's graceful degradation under stale periodic
                updates.  ``None`` (the default) disables age tracking
                entirely.
            include_source_link: also query the data node's daemon for its
                uplink and fold it into the score.  Off by default — the
                paper's daemons predict on the candidate's edge link only,
                and the single-link serial model overestimates badly on a
                shared source uplink (flows there are usually bottlenecked
                at their own destinations and the newcomer backfills).
            telemetry: mirrors every decision (with its full candidate
                evidence) into the placement-decision log when enabled.
        """
        self._topology = topology
        self._bus = bus
        self._rng = rng
        self._use_node_state = use_node_state
        self._locality_hops = locality_hops
        self._include_source_link = include_source_link
        self._node_state_cache: Dict[NodeId, float] = {}
        self._decisions: List[PlacementDecision] = []
        self._state_ttl = state_ttl
        # Timestamp of the last *authoritative* state observation per host
        # (prediction replies and pushed updates; optimistic `_note_placed`
        # writes deliberately do not refresh it, or a fallback placement
        # would launder its own guess into "fresh" state).
        self._state_seen_at: Dict[NodeId, float] = {}
        self._fault_model = None
        self._stale_fallbacks = 0
        self._query_failures = 0
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._decision_log = telemetry.decisions
        # Causal tracer (None when disabled): joins decisions to the open
        # task trace so `repro explain` can flag stale-state placements.
        self._causal = telemetry.causal if telemetry.causal.active else None
        reg = telemetry.registry
        if reg.enabled:
            self._ctr_stale = reg.counter("placement.stale_fallbacks")
            self._ctr_query_fail = reg.counter("placement.query_failures")
        else:
            self._ctr_stale = None
            self._ctr_query_fail = None
        self._engine = bus.engine

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def decisions(self) -> Sequence[PlacementDecision]:
        return tuple(self._decisions)

    def cached_node_state(self, host: NodeId) -> float:
        """Last known node state (inf when never reported = assumed idle)."""
        return self._node_state_cache.get(host, float("inf"))

    @property
    def stale_fallbacks(self) -> int:
        """Placements decided by the stale-state (least-loaded) fallback."""
        return self._stale_fallbacks

    @property
    def query_failures(self) -> int:
        """Prediction queries lost to down hosts or loss windows."""
        return self._query_failures

    def set_fault_model(self, model) -> None:
        """Install a staleness bias source (the fault injector)."""
        self._fault_model = model

    def state_age(self, host: NodeId) -> float:
        """Age of the host's cached snapshot, inf when never observed.

        A :class:`~repro.faults.plan.StateStaleness` window adds its lag on
        top, modelling dissemination that is running but behind.
        """
        seen = self._state_seen_at.get(host)
        if seen is None:
            return float("inf")
        age = self._engine.now - seen
        if self._fault_model is not None:
            age += self._fault_model.staleness_lag()
        return age

    # ------------------------------------------------------------------
    # Degraded operation (fault injection)
    # ------------------------------------------------------------------
    def _state_is_fresh(self, host: NodeId) -> bool:
        return self.state_age(host) <= self._state_ttl

    def _stale_candidates(self, candidates: Sequence[NodeId]) -> bool:
        """True when the TTL policy says predictions can't be trusted:
        we *have* state for some candidates but none of it is fresh.

        A cold cache (no candidate ever observed) takes the normal path —
        the daemon has nothing stale to distrust and the first queries
        seed the cache.
        """
        if self._state_ttl is None:
            return False
        known = [h for h in candidates if h in self._state_seen_at]
        if not known:
            return False
        return not any(self._state_is_fresh(h) for h in known)

    def _degraded_place(
        self,
        size: float,
        candidates: Sequence[NodeId],
        *,
        kind: str,
        tag: str,
        data_node: NodeId,
        all_candidates: Sequence[NodeId],
    ) -> NodeId:
        """Least-loaded placement over cached state, no daemon queries.

        The cached node state is the smallest residual size on the host
        (inf = believed idle), so maximising it picks the least-loaded
        host; ``pick_min`` over the negated state keeps the shared
        deterministic tie-break.
        """
        hosts = list(candidates)
        scores = [-self.cached_node_state(h) for h in hosts]
        host = pick_min(hosts, scores, self._rng)
        self._stale_fallbacks += 1
        if self._ctr_stale is not None:
            self._ctr_stale.inc()
        self._note_placed(host, size)
        self._record_decision(
            PlacementDecision(
                host=host,
                predicted_time=-1.0,  # sentinel: no prediction was made
                preferred_hosts=tuple(hosts),
                queried_hosts=(),
                used_fallback=True,
                kind=kind,
                tag=tag,
                size=size,
                candidate_scores=tuple(zip(hosts, scores)),
                used_stale_fallback=True,
            ),
            data_node=data_node,
            candidates=all_candidates,
        )
        return host

    def _try_call(self, host: NodeId, request):
        """A bus call that degrades instead of propagating control-plane
        faults: returns None when the host is down or the message lost."""
        try:
            return self._bus.call(host, request)
        except (DaemonUnreachable, MessageDropped):
            self._query_failures += 1
            if self._ctr_query_fail is not None:
                self._ctr_query_fail.inc()
            return None

    # ------------------------------------------------------------------
    # Candidate filtering (Algorithm 1, lines 3-12)
    # ------------------------------------------------------------------
    def _locality_filter(
        self, data_node: NodeId, candidates: Sequence[NodeId]
    ) -> List[NodeId]:
        if self._locality_hops is None:
            return list(candidates)
        near = [
            host
            for host in candidates
            if self._topology.hop_distance(data_node, host)
            <= self._locality_hops
        ]
        return near if near else list(candidates)

    def _preferred_hosts(
        self, size: float, candidates: Sequence[NodeId]
    ) -> Tuple[List[NodeId], bool]:
        """Apply the node-state filter; returns (hosts, used_fallback)."""
        if not self._use_node_state:
            return list(candidates), False
        preferred = [
            host
            for host in candidates
            if self.cached_node_state(host) >= size
        ]
        if preferred:
            return preferred, False
        return list(candidates), True

    # ------------------------------------------------------------------
    # Flow placement (Algorithm 1)
    # ------------------------------------------------------------------
    def place_flow(self, request: PlacementRequest) -> NodeId:
        """Choose the host minimising the predicted FCT of the task's flow."""
        candidates = self._locality_filter(request.data_node, request.candidates)
        if self._stale_candidates(candidates):
            return self._degraded_place(
                request.size,
                candidates,
                kind="flow",
                tag=request.tag,
                data_node=request.data_node,
                all_candidates=request.candidates,
            )
        preferred, fallback = self._preferred_hosts(request.size, candidates)

        source_time = 0.0
        if self._include_source_link and any(
            host != request.data_node for host in preferred
        ):
            reply = self._try_call(
                request.data_node,
                FlowPredictionRequest(size=request.size, direction="out"),
            )
            if reply is not None:
                self._remember(reply)
                source_time = reply.predicted_time

        scores: List[float] = []
        queried: List[NodeId] = []
        for host in preferred:
            if host == request.data_node:
                scores.append(0.0)  # full locality: no transfer at all
                continue
            reply = self._try_call(
                host, FlowPredictionRequest(size=request.size, direction="in")
            )
            if reply is None:
                scores.append(float("inf"))
                continue
            self._remember(reply)
            queried.append(host)
            scores.append(max(reply.predicted_time, source_time))

        if not any(score < float("inf") for score in scores):
            # Every prediction was lost: place by cached load instead.
            return self._degraded_place(
                request.size,
                preferred,
                kind="flow",
                tag=request.tag,
                data_node=request.data_node,
                all_candidates=request.candidates,
            )
        host = pick_min(preferred, scores, self._rng)
        predicted = min(scores)
        self._note_placed(host, request.size)
        self._record_decision(
            PlacementDecision(
                host=host,
                predicted_time=predicted,
                preferred_hosts=tuple(preferred),
                queried_hosts=tuple(queried),
                used_fallback=fallback,
                kind="flow",
                tag=request.tag,
                size=request.size,
                candidate_scores=tuple(zip(preferred, scores)),
            ),
            data_node=request.data_node,
            candidates=request.candidates,
        )
        return host

    # ------------------------------------------------------------------
    # Batched flow placement (streaming service)
    # ------------------------------------------------------------------
    def place_batch(
        self,
        requests: Sequence[PlacementRequest],
        predictor,
    ) -> List[NodeId]:
        """Place a micro-batch of flows off one fabric-state read per host.

        Instead of one size-specific prediction query per (request,
        candidate) pair — ``place_flow``'s cost — this fetches each
        distinct candidate's raw edge-link state *once* via
        :class:`LinkStateRequest` and scores every request in the batch
        locally with ``predictor`` (the same FCT model the network
        daemons run).  Within the batch, snapshots are updated
        optimistically after each decision so later requests see earlier
        placements.  Bus traffic is O(distinct hosts) per batch instead
        of O(requests x candidates).

        Returns the chosen host per request, in order.
        """
        # One state read per distinct candidate host, in sorted order so
        # the query sequence (and any fault-plan coin flips it consumes)
        # is independent of request ordering quirks.
        wanted: set = set()
        filtered: List[List[NodeId]] = []
        for request in requests:
            hosts = self._locality_filter(request.data_node, request.candidates)
            filtered.append(hosts)
            for host in hosts:
                if host != request.data_node:
                    wanted.add(host)
        snapshots: Dict[NodeId, LinkStateReply] = {}
        live_sizes: Dict[NodeId, List[float]] = {}
        live_state: Dict[NodeId, float] = {}
        for host in sorted(wanted):
            reply = self._try_call(host, LinkStateRequest(direction="in"))
            if reply is None:
                continue
            snapshots[host] = reply
            live_sizes[host] = list(reply.flow_sizes)
            live_state[host] = reply.node_state
            self._node_state_cache[host] = reply.node_state
            if self._state_ttl is not None:
                self._state_seen_at[host] = self._engine.now

        placements: List[NodeId] = []
        for request, hosts in zip(requests, filtered):
            if self._stale_candidates(hosts):
                placements.append(
                    self._degraded_place(
                        request.size,
                        hosts,
                        kind="flow",
                        tag=request.tag,
                        data_node=request.data_node,
                        all_candidates=request.candidates,
                    )
                )
                continue
            if self._use_node_state:
                preferred = [
                    h
                    for h in hosts
                    if live_state.get(h, self.cached_node_state(h))
                    >= request.size
                ]
                fallback = not preferred
                if fallback:
                    preferred = list(hosts)
            else:
                preferred, fallback = list(hosts), False
            scores: List[float] = []
            queried: List[NodeId] = []
            for host in preferred:
                if host == request.data_node:
                    scores.append(0.0)
                    continue
                snap = snapshots.get(host)
                if snap is None:
                    scores.append(float("inf"))
                    continue
                queried.append(host)
                state = link_state_from_flows(
                    snap.link, snap.capacity, live_sizes[host]
                )
                scores.append(predictor.fct(request.size, state))
            if not any(score < float("inf") for score in scores):
                placements.append(
                    self._degraded_place(
                        request.size,
                        preferred,
                        kind="flow",
                        tag=request.tag,
                        data_node=request.data_node,
                        all_candidates=request.candidates,
                    )
                )
                continue
            host = pick_min(preferred, scores, self._rng)
            # Optimistic within-batch update: the chosen host's snapshot
            # now carries this flow, so the rest of the batch doesn't
            # dog-pile onto one idle host.
            if host in live_sizes:
                live_sizes[host].append(request.size)
                live_state[host] = min(live_state[host], request.size)
            self._note_placed(host, request.size)
            self._record_decision(
                PlacementDecision(
                    host=host,
                    predicted_time=min(scores),
                    preferred_hosts=tuple(preferred),
                    queried_hosts=tuple(queried),
                    used_fallback=fallback,
                    kind="flow",
                    tag=request.tag,
                    size=request.size,
                    candidate_scores=tuple(zip(preferred, scores)),
                ),
                data_node=request.data_node,
                candidates=request.candidates,
            )
            placements.append(host)
        return placements

    # ------------------------------------------------------------------
    # Coflow placement (§5.1.2)
    # ------------------------------------------------------------------
    def place_coflow_flow(
        self,
        flow_size: float,
        coflow_total: float,
        data_node: NodeId,
        candidates: Sequence[NodeId],
        *,
        tag: str = "",
    ) -> NodeId:
        """Place one constituent flow of a coflow (sequential heuristic).

        Like :meth:`place_flow` but scored with the *CCT* predictor: the
        candidate link's completion time for a coflow of ``coflow_total``
        bytes placing ``flow_size`` of them on that link.  This is the
        paper's "prediction models corresponding to each evaluated coflow
        scheduling scheme" (§6.1).
        """
        if not candidates:
            raise PlacementError("place_coflow_flow needs candidates")
        filtered = self._locality_filter(data_node, candidates)
        if self._stale_candidates(filtered):
            return self._degraded_place(
                coflow_total,
                filtered,
                kind="coflow",
                tag=tag,
                data_node=data_node,
                all_candidates=candidates,
            )
        # Node state is at coflow granularity here: a host is preferred
        # when every coflow it carries is at least as large as this one.
        preferred, fallback = self._preferred_hosts(coflow_total, filtered)
        scores: List[float] = []
        queried: List[NodeId] = []
        for host in preferred:
            if host == data_node:
                scores.append(0.0)
                continue
            reply = self._try_call(
                host,
                CoflowPredictionRequest(
                    total_size=coflow_total,
                    size_on_link=flow_size,
                    direction="in",
                ),
            )
            if reply is None:
                scores.append(float("inf"))
                continue
            self._remember(reply)
            queried.append(host)
            scores.append(reply.predicted_time)
        if not any(score < float("inf") for score in scores):
            return self._degraded_place(
                coflow_total,
                preferred,
                kind="coflow",
                tag=tag,
                data_node=data_node,
                all_candidates=candidates,
            )
        host = pick_min(preferred, scores, self._rng)
        self._note_placed(host, coflow_total)
        self._record_decision(
            PlacementDecision(
                host=host,
                predicted_time=min(scores),
                preferred_hosts=tuple(preferred),
                queried_hosts=tuple(queried),
                used_fallback=fallback,
                kind="coflow",
                tag=tag,
                size=flow_size,
                candidate_scores=tuple(zip(preferred, scores)),
            ),
            data_node=data_node,
            candidates=candidates,
        )
        return host

    def place_reducer(
        self,
        sources: Sequence[Tuple[NodeId, float]],
        candidates: Sequence[NodeId],
        *,
        tag: str = "",
    ) -> NodeId:
        """Choose one destination for a many-to-one coflow (shuffle).

        The candidate's downlink would carry every byte not already local
        to it; each source uplink carries its own share.  The predicted CCT
        is the bottleneck over those links; we pick the candidate with the
        smallest value.
        """
        if not sources:
            raise PlacementError("place_reducer needs at least one source")
        if not candidates:
            raise PlacementError("place_reducer needs at least one candidate")
        total = sum(size for _node, size in sources)

        # Source uplink contributions are candidate-independent except for
        # the bytes that become local; query once per distinct source.
        uplink_times: Dict[NodeId, float] = {}
        for node, size in sources:
            if node not in uplink_times:
                reply = self._try_call(
                    node,
                    CoflowPredictionRequest(
                        total_size=total,
                        size_on_link=sum(
                            s for n, s in sources if n == node
                        ),
                        direction="out",
                    ),
                )
                if reply is None:
                    continue  # unreachable source: score without its uplink
                self._remember(reply)
                uplink_times[node] = reply.predicted_time

        scores: List[float] = []
        for host in candidates:
            incoming = sum(size for node, size in sources if node != host)
            if incoming <= 0:
                scores.append(0.0)
                continue
            reply = self._try_call(
                host,
                CoflowPredictionRequest(
                    total_size=total, size_on_link=incoming, direction="in"
                ),
            )
            if reply is None:
                scores.append(float("inf"))
                continue
            self._remember(reply)
            bottleneck = max(
                (
                    t
                    for node, t in uplink_times.items()
                    if node != host
                ),
                default=0.0,
            )
            scores.append(max(reply.predicted_time, bottleneck))
        if not any(score < float("inf") for score in scores):
            return self._degraded_place(
                total,
                list(candidates),
                kind="reducer",
                tag=tag,
                data_node=max(sources, key=lambda s: s[1])[0],
                all_candidates=candidates,
            )
        host = pick_min(list(candidates), scores, self._rng)
        self._note_placed(host, total)
        self._record_decision(
            PlacementDecision(
                host=host,
                predicted_time=min(scores),
                preferred_hosts=tuple(candidates),
                queried_hosts=tuple(candidates),
                used_fallback=False,
                kind="reducer",
                tag=tag,
                size=total,
                candidate_scores=tuple(zip(candidates, scores)),
            ),
            data_node=max(sources, key=lambda s: s[1])[0],
            candidates=candidates,
        )
        return host

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _record_decision(
        self,
        decision: PlacementDecision,
        *,
        data_node: NodeId,
        candidates: Sequence[NodeId],
    ) -> None:
        """Keep the decision and mirror it into the telemetry log."""
        self._decisions.append(decision)
        if self._causal is not None:
            self._causal.on_decision(
                self._engine.now,
                chosen=decision.host,
                predicted=decision.predicted_time,
                fallback=decision.used_fallback,
                stale=decision.used_stale_fallback,
            )
        if self._decision_log.active:
            self._decision_log.record(
                time=self._engine.now,
                kind=decision.kind,
                tag=decision.tag,
                size=decision.size,
                data_node=data_node,
                candidates=candidates,
                preferred=decision.preferred_hosts,
                used_fallback=decision.used_fallback,
                scores=decision.candidate_scores,
                score_kind="predicted_time",
                chosen=decision.host,
                predicted_time=decision.predicted_time,
            )

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def _remember(self, reply: PredictionReply) -> None:
        self._node_state_cache[reply.host] = reply.node_state
        if self._state_ttl is not None:
            self._state_seen_at[reply.host] = self._engine.now

    def _note_placed(self, host: NodeId, size: float) -> None:
        """Optimistic cache update: the node now carries a flow of ``size``."""
        current = self._node_state_cache.get(host, float("inf"))
        self._node_state_cache[host] = min(current, size)

    def note_task_finished(self, host: NodeId) -> None:
        """Invalidate the cached state when a task on ``host`` completes
        (the next reply from the daemon refreshes it)."""
        self._node_state_cache.pop(host, None)
        self._state_seen_at.pop(host, None)

    def handle_node_state_update(self, update: "NodeStateUpdate") -> None:
        """Accept a push-style node-state refresh from a network daemon.

        The pull path (prediction replies) keeps the cache fresh for hosts
        the daemon talks to; daemons may additionally push updates when
        their state changes materially (e.g. the last flow finished),
        which this endpoint applies.
        """
        self._node_state_cache[update.host] = update.node_state
        if self._state_ttl is not None:
            self._state_seen_at[update.host] = self._engine.now
