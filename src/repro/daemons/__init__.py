"""NEAT's distributed control plane (Figure 4): bus, daemons, messages."""

from repro.daemons.bus import MessageBus
from repro.daemons.messages import (
    CoflowPredictionRequest,
    FlowPredictionRequest,
    NodeStateUpdate,
    PredictionReply,
)
from repro.daemons.network_daemon import NetworkDaemon
from repro.daemons.placement_daemon import PlacementDecision, TaskPlacementDaemon

__all__ = [
    "MessageBus",
    "NetworkDaemon",
    "TaskPlacementDaemon",
    "PlacementDecision",
    "FlowPredictionRequest",
    "CoflowPredictionRequest",
    "PredictionReply",
    "NodeStateUpdate",
]
