"""Simulated control-plane message bus.

Carries request/reply pairs between the task placement daemon and the
per-node network daemons.  Calls are executed synchronously (placement
decisions in the paper's simulator are instantaneous too), but the bus
accounts for every message and for the control latency a real deployment
would pay, so the communication-overhead optimisations of §5.2 (preferred
hosts, node-state caching) are measurable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.errors import DaemonError
from repro.sim.engine import Engine
from repro.topology.base import NodeId

if TYPE_CHECKING:  # pragma: no cover - avoids a daemons<->telemetry cycle
    from repro.telemetry import Telemetry

Handler = Callable[[Any], Any]


class MessageBus:
    """Registry of daemon endpoints with message/latency accounting."""

    def __init__(
        self,
        engine: Engine,
        *,
        rtt: float = 0.0,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        """Args:
            engine: the simulation engine (used only for timestamps).
            rtt: control-plane round-trip time charged per call when
                estimating placement latency.
            telemetry: counts/traces every control message when enabled.
        """
        self._engine = engine
        self._rtt = rtt
        self._endpoints: Dict[NodeId, Handler] = {}
        self._messages_sent = 0
        self._calls = 0
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._trace = telemetry.trace
        reg = telemetry.registry
        if reg.enabled:
            self._ctr_messages = reg.counter("bus.messages_sent")
            self._ctr_calls = reg.counter("bus.calls")
            self._timer = reg.timer("bus")
        else:
            self._ctr_messages = None
            self._ctr_calls = None
            self._timer = None

    @property
    def engine(self) -> Engine:
        """The simulation engine the bus timestamps against."""
        return self._engine

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, host: NodeId, handler: Handler) -> None:
        """Attach a daemon's request handler at ``host``."""
        if host in self._endpoints:
            raise DaemonError(f"endpoint already registered for {host!r}")
        self._endpoints[host] = handler

    def call(self, host: NodeId, payload: Any) -> Any:
        """Send ``payload`` to the daemon at ``host`` and return its reply.

        Counts one request + one reply message.
        """
        handler = self._endpoints.get(host)
        if handler is None:
            raise DaemonError(f"no daemon registered at {host!r}")
        self._messages_sent += 2
        self._calls += 1
        if self._trace.active:
            self._trace.emit(
                "bus_message",
                self._engine.now,
                {
                    "host": host,
                    "type": type(payload).__name__,
                    "latency": self._rtt,
                },
            )
        if self._ctr_messages is not None:
            self._ctr_messages.inc(2)
            self._ctr_calls.inc()
            with self._timer.time():
                return handler(payload)
        return handler(payload)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        """Total control messages (requests + replies) so far."""
        return self._messages_sent

    @property
    def calls(self) -> int:
        """Total request/reply round trips so far."""
        return self._calls

    @property
    def estimated_control_latency(self) -> float:
        """Seconds of control latency a real deployment would have paid,
        assuming calls to different daemons for one decision go out in
        parallel (one RTT per placement round)."""
        return self._calls * self._rtt

    def reset_counters(self) -> None:
        """Zero the accounting counters (e.g. between benchmark phases)."""
        self._messages_sent = 0
        self._calls = 0
