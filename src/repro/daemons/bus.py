"""Simulated control-plane message bus.

Carries request/reply pairs between the task placement daemon and the
per-node network daemons.  Calls are executed synchronously (placement
decisions in the paper's simulator are instantaneous too), but the bus
accounts for every message and for the control latency a real deployment
would pay, so the communication-overhead optimisations of §5.2 (preferred
hosts, node-state caching) are measurable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.daemons.messages import message_kind
from repro.errors import DaemonError, DaemonUnreachable, MessageDropped
from repro.sim.engine import Engine
from repro.topology.base import NodeId

if TYPE_CHECKING:  # pragma: no cover - avoids a daemons<->telemetry cycle
    from repro.telemetry import Telemetry

Handler = Callable[[Any], Any]


class MessageBus:
    """Registry of daemon endpoints with message/latency accounting."""

    def __init__(
        self,
        engine: Engine,
        *,
        rtt: float = 0.0,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        """Args:
            engine: the simulation engine (used only for timestamps).
            rtt: control-plane round-trip time charged per call when
                estimating placement latency.
            telemetry: counts/traces every control message when enabled.
        """
        self._engine = engine
        self._rtt = rtt
        self._endpoints: Dict[NodeId, Handler] = {}
        self._messages_sent = 0
        self._calls = 0
        # Fault-injection state: a fault model (the FaultInjector) decides
        # per-message drops/delays, down hosts reject traffic outright, and
        # the controller endpoint receives push-style (one-way) messages.
        self._fault_model = None
        self._down_hosts: set = set()
        self._controller: Optional[Handler] = None
        self._messages_dropped = 0
        self._delay_accrued = 0.0
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._trace = telemetry.trace
        # Causal tracer (None when disabled): attributes control messages
        # and drops to the task whose placement triggered them.
        self._causal = telemetry.causal if telemetry.causal.active else None
        reg = telemetry.registry
        if reg.enabled:
            self._ctr_messages = reg.counter("bus.messages_sent")
            self._ctr_calls = reg.counter("bus.calls")
            self._ctr_dropped = reg.counter("bus.messages_dropped")
            self._timer = reg.timer("bus")
        else:
            self._ctr_messages = None
            self._ctr_calls = None
            self._ctr_dropped = None
            self._timer = None

    @property
    def engine(self) -> Engine:
        """The simulation engine the bus timestamps against."""
        return self._engine

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, host: NodeId, handler: Handler) -> None:
        """Attach a daemon's request handler at ``host``."""
        if host in self._endpoints:
            raise DaemonError(f"endpoint already registered for {host!r}")
        self._endpoints[host] = handler

    def register_controller(self, handler: Handler) -> None:
        """Attach the global controller's one-way (push) message handler."""
        if self._controller is not None:
            raise DaemonError("controller endpoint already registered")
        self._controller = handler

    def install_fault_model(self, model) -> None:
        """Install per-message drop/delay decisions (the fault injector)."""
        if self._fault_model is not None:
            raise DaemonError("bus already has a fault model installed")
        self._fault_model = model

    def mark_host_down(self, host: NodeId) -> None:
        """All traffic to or from ``host`` fails from now on."""
        self._down_hosts.add(host)

    def _drop(self, host: NodeId, payload: Any, reason: str) -> None:
        self._messages_dropped += 1
        if self._ctr_dropped is not None:
            self._ctr_dropped.inc()
        if self._causal is not None:
            self._causal.note_bus_drop()
        if self._trace.active:
            self._trace.emit(
                "bus_drop",
                self._engine.now,
                {
                    "host": host,
                    "type": type(payload).__name__,
                    "reason": reason,
                },
            )

    def call(self, host: NodeId, payload: Any) -> Any:
        """Send ``payload`` to the daemon at ``host`` and return its reply.

        Counts one request + one reply message.  Under a fault plan the
        call may raise :class:`DaemonUnreachable` (host down) or
        :class:`MessageDropped` (loss window ate the request); a delay
        window adds to the latency accounting but — calls being
        synchronous in the fluid model — not to simulated time.
        """
        if host in self._down_hosts:
            self._messages_sent += 1
            self._drop(host, payload, "host_down")
            raise DaemonUnreachable(f"host {host!r} is down")
        handler = self._endpoints.get(host)
        if handler is None:
            raise DaemonError(f"no daemon registered at {host!r}")
        if self._fault_model is not None:
            self._messages_sent += 1  # the request went out regardless
            if self._fault_model.should_drop(message_kind(payload)):
                self._drop(host, payload, "loss_window")
                raise MessageDropped(
                    f"request to {host!r} lost in a fault-plan loss window"
                )
            self._messages_sent += 1
            self._delay_accrued += self._fault_model.message_delay()
            self._calls += 1
            if self._causal is not None:
                self._causal.note_bus_message()
            if self._trace.active:
                self._trace.emit(
                    "bus_message",
                    self._engine.now,
                    {
                        "host": host,
                        "type": type(payload).__name__,
                        "latency": self._rtt,
                    },
                )
            if self._ctr_messages is not None:
                self._ctr_messages.inc(2)
                self._ctr_calls.inc()
                with self._timer.time():
                    return handler(payload)
            return handler(payload)
        self._messages_sent += 2
        self._calls += 1
        if self._causal is not None:
            self._causal.note_bus_message()
        if self._trace.active:
            self._trace.emit(
                "bus_message",
                self._engine.now,
                {
                    "host": host,
                    "type": type(payload).__name__,
                    "latency": self._rtt,
                },
            )
        if self._ctr_messages is not None:
            self._ctr_messages.inc(2)
            self._ctr_calls.inc()
            with self._timer.time():
                return handler(payload)
        return handler(payload)

    def push(self, host: NodeId, payload: Any) -> bool:
        """One-way message from ``host``'s daemon to the controller.

        Delivery is asynchronous: the controller handler runs after any
        active delay window's latency (zero by default), through the event
        engine so ordering stays deterministic.  Returns ``False`` when the
        message was dropped (sender down, or a loss window matched).
        """
        if self._controller is None:
            raise DaemonError("no controller endpoint registered")
        self._messages_sent += 1
        if self._ctr_messages is not None:
            self._ctr_messages.inc()
        if host in self._down_hosts:
            self._drop(host, payload, "host_down")
            return False
        delay = 0.0
        if self._fault_model is not None:
            if self._fault_model.should_drop(message_kind(payload)):
                self._drop(host, payload, "loss_window")
                return False
            delay = self._fault_model.message_delay()
        if self._trace.active:
            self._trace.emit(
                "bus_push",
                self._engine.now,
                {
                    "host": host,
                    "type": type(payload).__name__,
                    "delay": delay,
                },
            )
        handler = self._controller
        self._engine.schedule(
            delay, lambda: handler(payload), label="bus-push"
        )
        return True

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def messages_dropped(self) -> int:
        """Messages a fault plan dropped (lost requests and pushes)."""
        return self._messages_dropped

    @property
    def messages_sent(self) -> int:
        """Total control messages (requests + replies) so far."""
        return self._messages_sent

    @property
    def calls(self) -> int:
        """Total request/reply round trips so far."""
        return self._calls

    @property
    def estimated_control_latency(self) -> float:
        """Seconds of control latency a real deployment would have paid,
        assuming calls to different daemons for one decision go out in
        parallel (one RTT per placement round).  Fault-plan delay windows
        add their per-call latency on top."""
        return self._calls * self._rtt + self._delay_accrued

    def reset_counters(self) -> None:
        """Zero the accounting counters (e.g. between benchmark phases)."""
        self._messages_sent = 0
        self._calls = 0
