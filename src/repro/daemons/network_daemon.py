"""NEAT's per-node network daemon (§3, §5.2).

Runs on every host.  Maintains the state of the flows starting/ending at
its host (exactly, or histogram-compressed per §5.2) and answers
prediction requests from the task placement daemon:

* the predicted FCT of a hypothetical new flow on the host's edge link,
  under the configured predictor (scheduling policy model);
* the predicted CCT contribution for a hypothetical coflow;
* the node state — the smallest residual size among flows scheduled on the
  node, used by the placement daemon's preferred-host filter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - avoids a daemons<->telemetry cycle
    from repro.telemetry import Telemetry

from repro.daemons.messages import (
    CoflowPredictionRequest,
    FlowPredictionRequest,
    LinkStateReply,
    LinkStateRequest,
    PredictionReply,
)
from repro.errors import DaemonError
from repro.network.fabric import NetworkFabric
from repro.network.flow import Flow
from repro.predictor.coflow_cct import CoflowCCTPredictor
from repro.predictor.compressed import CompressedLinkState
from repro.predictor.flow_fct import FlowFCTPredictor
from repro.predictor.fabric_state import coflow_link_state
from repro.predictor.state import link_state_from_flows
from repro.topology.base import Link, NodeId


class NetworkDaemon:
    """Per-host flow-state keeper and completion-time oracle."""

    def __init__(
        self,
        host: NodeId,
        fabric: NetworkFabric,
        flow_predictor: FlowFCTPredictor,
        *,
        coflow_predictor: Optional[CoflowCCTPredictor] = None,
        bin_boundaries: Optional[Sequence[float]] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        """Args:
            host: the node this daemon runs on.
            fabric: network (the daemon only reads its own host's flows).
            flow_predictor: FCT model matching the network policy (or the
                Fair model, per Proposition 4.1).
            coflow_predictor: CCT model for coflow placement requests.
            bin_boundaries: when given, predictions use the compressed
                (histogram) state of §5.2 instead of exact per-flow state.
            telemetry: accounts predictor wall time when enabled.
        """
        self._host = host
        self._fabric = fabric
        self._flow_predictor = flow_predictor
        self._coflow_predictor = coflow_predictor
        self._timer_predict = (
            telemetry.registry.timer("predictor")
            if telemetry is not None and telemetry.registry.enabled
            else None
        )
        self._prof = (
            telemetry.profiler
            if telemetry is not None and telemetry.profiler.enabled
            else None
        )
        topo = fabric.topology
        self._uplink: Link = topo.host_uplink(host)
        self._downlink: Link = topo.host_downlink(host)

        self._compressed_up: Optional[CompressedLinkState] = None
        self._compressed_down: Optional[CompressedLinkState] = None
        if bin_boundaries is not None:
            self._compressed_up = CompressedLinkState(
                self._uplink.link_id, self._uplink.capacity, bin_boundaries
            )
            self._compressed_down = CompressedLinkState(
                self._downlink.link_id, self._downlink.capacity, bin_boundaries
            )
            fabric.add_arrival_listener(self._on_flow_arrival)
            fabric.add_completion_listener(
                lambda flow, record: self._on_flow_done(flow)
            )

    # ------------------------------------------------------------------
    # Request handling (bus endpoint)
    # ------------------------------------------------------------------
    @property
    def host(self) -> NodeId:
        return self._host

    def handle(self, payload) -> PredictionReply:
        """Dispatch a control-plane request (the bus handler)."""
        if isinstance(payload, FlowPredictionRequest):
            return self.predict_flow(payload.size, payload.direction)
        if isinstance(payload, CoflowPredictionRequest):
            return self.predict_coflow(
                payload.total_size, payload.size_on_link, payload.direction
            )
        if isinstance(payload, LinkStateRequest):
            return self.link_state(payload.direction)
        raise DaemonError(f"unknown request type {type(payload).__name__}")

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    def node_state(self) -> float:
        """Smallest residual flow size on this node (inf when idle)."""
        flows = self._fabric.flows_at_host(self._host)
        if not flows:
            return float("inf")
        return min(f.remaining for f in flows)

    def coflow_node_state(self) -> float:
        """Node state at coflow granularity: the smallest residual *total*
        size among coflows touching this node (bare flows count as
        singleton coflows).  Used by the preferred-host filter when the
        scheduling unit is the coflow."""
        flows = self._fabric.flows_at_host(self._host)
        if not flows:
            return float("inf")
        totals = {}
        for flow in flows:
            if flow.coflow is None:
                totals[("flow", flow.flow_id)] = flow.remaining
            else:
                totals[("coflow", flow.coflow.coflow_id)] = (
                    flow.coflow.remaining_total
                )
        return min(totals.values())

    def predict_flow(self, size: float, direction: str = "in") -> PredictionReply:
        """Predicted FCT of a new flow on this node's edge link."""
        if self._prof is not None:
            with self._prof.span("predictor.fct"):
                return self._timed_predict_flow(size, direction)
        return self._timed_predict_flow(size, direction)

    def _timed_predict_flow(self, size: float, direction: str) -> PredictionReply:
        if self._timer_predict is not None:
            with self._timer_predict.time():
                return self._predict_flow(size, direction)
        return self._predict_flow(size, direction)

    def _predict_flow(self, size: float, direction: str) -> PredictionReply:
        link = self._downlink if direction == "in" else self._uplink
        compressed = (
            self._compressed_down if direction == "in" else self._compressed_up
        )
        if compressed is not None:
            predicted = compressed.fair_fct(size)
        else:
            state = link_state_from_flows(
                link.link_id,
                link.capacity,
                (
                    f.remaining
                    for f in self._fabric.flows_on_link(link.link_id)
                ),
            )
            predicted = self._flow_predictor.fct(size, state)
        return PredictionReply(
            host=self._host,
            predicted_time=predicted,
            node_state=self.node_state(),
        )

    def link_state(self, direction: str = "in") -> LinkStateReply:
        """Snapshot of this node's edge link for controller-side scoring.

        Size-independent (unlike :meth:`predict_flow`), so the placement
        service can fetch it once per host per micro-batch and score every
        request in the batch against the same snapshot.
        """
        link = self._downlink if direction == "in" else self._uplink
        sizes = tuple(
            sorted(
                f.remaining
                for f in self._fabric.flows_on_link(link.link_id)
            )
        )
        return LinkStateReply(
            host=self._host,
            link=link.link_id,
            capacity=link.capacity,
            flow_sizes=sizes,
            node_state=self.node_state(),
        )

    def predict_coflow(
        self, total_size: float, size_on_link: float, direction: str = "in"
    ) -> PredictionReply:
        """Predicted CCT contribution of this node's edge link."""
        if self._coflow_predictor is None:
            raise DaemonError(
                f"daemon at {self._host!r} has no coflow predictor"
            )
        if self._prof is not None:
            with self._prof.span("predictor.cct"):
                return self._timed_predict_coflow(
                    total_size, size_on_link, direction
                )
        return self._timed_predict_coflow(total_size, size_on_link, direction)

    def _timed_predict_coflow(
        self, total_size: float, size_on_link: float, direction: str
    ) -> PredictionReply:
        if self._timer_predict is not None:
            with self._timer_predict.time():
                return self._predict_coflow(total_size, size_on_link, direction)
        return self._predict_coflow(total_size, size_on_link, direction)

    def _predict_coflow(
        self, total_size: float, size_on_link: float, direction: str
    ) -> PredictionReply:
        link = self._downlink if direction == "in" else self._uplink
        state = coflow_link_state(self._fabric, link.link_id)
        # Score with objective (2): the coflow's own CCT on this link plus
        # the CCT increase it inflicts on existing coflows (§4.2).  For
        # priority schedulers (TCF/SEBF) the bare CCT of a high-priority
        # coflow is insensitive to link load; the Delta term restores the
        # externality, per Proposition 4.2.
        predicted = self._coflow_predictor.link_objective(
            total_size, size_on_link, state
        )
        return PredictionReply(
            host=self._host,
            predicted_time=predicted,
            node_state=self.coflow_node_state(),
        )

    # ------------------------------------------------------------------
    # Push-style state dissemination (§4's periodic updates)
    # ------------------------------------------------------------------
    def push_state(self, bus) -> bool:
        """Push this node's current state to the controller via ``bus``.

        One-way and best-effort: under a fault plan the update may be
        dropped or delayed, which is exactly the staleness the placement
        daemon's TTL fallback defends against.  Returns whether the bus
        accepted the message.
        """
        from repro.daemons.messages import NodeStateUpdate

        return bus.push(
            self._host,
            NodeStateUpdate(host=self._host, node_state=self.node_state()),
        )

    # ------------------------------------------------------------------
    # Compressed-state maintenance (§5.2)
    # ------------------------------------------------------------------
    def _touches_us(self, flow: Flow) -> bool:
        return flow.src == self._host or flow.dst == self._host

    def _on_flow_arrival(self, flow: Flow) -> None:
        if not self._touches_us(flow):
            return
        if flow.src == self._host and self._compressed_up is not None:
            self._compressed_up.add_flow(flow.size)
        if flow.dst == self._host and self._compressed_down is not None:
            self._compressed_down.add_flow(flow.size)

    def _on_flow_done(self, flow: Flow) -> None:
        if not self._touches_us(flow) or flow.is_local:
            return
        if flow.src == self._host and self._compressed_up is not None:
            self._compressed_up.remove_flow(flow.size)
        if flow.dst == self._host and self._compressed_down is not None:
            self._compressed_down.remove_flow(flow.size)
