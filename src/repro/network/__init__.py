"""Flow-level network simulation: flows, scheduling policies, and fabric."""

from repro.network.fabric import NetworkFabric
from repro.network.flow import Flow, FlowId, FlowRecord
from repro.network.policies import (
    FairAllocator,
    FCFSAllocator,
    LASAllocator,
    RateAllocator,
    SRPTAllocator,
    available_policies,
    make_allocator,
    register_policy,
)

__all__ = [
    "NetworkFabric",
    "Flow",
    "FlowId",
    "FlowRecord",
    "RateAllocator",
    "FairAllocator",
    "FCFSAllocator",
    "LASAllocator",
    "SRPTAllocator",
    "make_allocator",
    "register_policy",
    "available_policies",
]
