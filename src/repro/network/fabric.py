"""The flow-level network fabric.

:class:`NetworkFabric` couples the rate allocator (scheduling policy) to the
discrete-event engine.  Rates are recomputed whenever the set of flows
changes (arrival or completion) and whenever the allocator reports an
internal change point (LAS attained-service and SRPT remaining-size
crossings); between recomputes every flow progresses linearly at its
assigned rate, so completions are exact in the fluid model.

Rate recomputation is *incremental* by default: an event dirties only the
links its flow touches, the dirty set is expanded to the connected
component of the flow-link sharing graph (flows sharing a dirty link drag
their other links in), and the allocator runs on that component alone.
Because every allocator couples flows exclusively through shared-link
capacities, the allocation problem decomposes exactly over sharing
components: links outside the component keep their cached rates and their
flows' completion events stay untouched.  ``incremental=False`` keeps the
same event machinery but hands the allocator the full active set on every
recompute — the reference oracle the differential test harness compares
against — and ``shadow_verify=True`` runs that full allocator side by side
with the scoped one, asserting rate-map equality at every recompute.

Allocators whose priorities couple flows across *disjoint* links (the
coflow policies: MADD spreads a coflow's progress over all its flows) set
``incremental_safe = False`` and always receive the full active set.

This module is the stand-in for the paper's ns2 substrate.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import FlowError, RoutingError, ShadowVerifyError
from repro.network.flow import Flow, FlowId, FlowRecord
from repro.network.policies.base import RATE_EPSILON, RateAllocator
from repro.sim.engine import Engine
from repro.sim.events import RECOMPUTE_PRIORITY, Event
from repro.topology.base import LinkId, NodeId, Topology
from repro.topology.routing import Router

if TYPE_CHECKING:  # pragma: no cover - avoids a network<->telemetry cycle
    from repro.telemetry import Telemetry

CompletionListener = Callable[[Flow, FlowRecord], None]

#: Absolute slack allowed between the scoped and the shadow (full) rate for
#: one flow before ``shadow_verify`` raises.  Scoped and full allocations
#: perform identical float arithmetic per component, so any real
#: decomposition violation shows up far above this.
SHADOW_TOLERANCE = 1e-6


class _AllocScope:
    """One connected component of the flow-link sharing graph.

    Tracks the component's membership as of its last recompute plus the
    allocator change-point (hint) event scheduled for it, so a later
    recompute that swallows the component can invalidate exactly that
    event and nothing else.
    """

    __slots__ = ("flow_ids", "links", "hint_event")

    def __init__(self, flow_ids: Tuple[FlowId, ...], links: Set[LinkId]) -> None:
        self.flow_ids = flow_ids
        self.links = links
        self.hint_event: Optional[Event] = None


class NetworkFabric:
    """Fluid-model network simulator with a pluggable scheduling policy."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        allocator: RateAllocator,
        *,
        router: Optional[Router] = None,
        telemetry: Optional["Telemetry"] = None,
        incremental: Optional[bool] = None,
        shadow_verify: bool = False,
    ) -> None:
        self._engine = engine
        self._topology = topology
        self._allocator = allocator
        self._router = router or Router(topology)
        if incremental and not allocator.incremental_safe:
            raise FlowError(
                f"allocator {allocator.name!r} couples flows beyond shared "
                "links and cannot be scoped; use incremental=False"
            )
        if incremental is None:
            incremental = allocator.incremental_safe
        self._incremental = bool(incremental)
        self._shadow_verify = bool(shadow_verify)
        # Telemetry hooks, pre-bound so the disabled path costs one
        # attribute check per event (NullMetricsRegistry hands back
        # shared no-op metrics, but we avoid even those on hot paths).
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._trace = telemetry.trace
        # Causal tracer (None when disabled): observes the flow lifecycle
        # — submit, every rate change, reroute/abort, completion, capacity
        # changes — without ever reading simulation state back mutably.
        self._causal = telemetry.causal if telemetry.causal.active else None
        # Span profiler (None when disabled): attributes recompute wall
        # time to component expansion, the allocator itself, and the
        # rate-map splice.  Wall-clock only — never simulation state.
        self._prof = telemetry.profiler if telemetry.profiler.enabled else None
        self._span_recompute = (
            "fabric.recompute.scoped"
            if self._incremental
            else "fabric.recompute.full"
        )
        self._span_alloc = f"alloc.{allocator.name}"
        metrics_on = telemetry.registry.enabled
        reg = telemetry.registry
        self._ctr_submitted = reg.counter("fabric.flows_submitted") if metrics_on else None
        self._ctr_completed = reg.counter("fabric.flows_completed") if metrics_on else None
        self._ctr_full = reg.counter("fabric.recompute.full") if metrics_on else None
        self._ctr_scoped = reg.counter("fabric.recompute.scoped") if metrics_on else None
        self._hist_component = (
            reg.histogram("fabric.recompute.component_flows") if metrics_on else None
        )
        self._hist_fct = reg.histogram("fabric.fct_seconds") if metrics_on else None
        self._hist_fct_gap = reg.histogram("fabric.fct_gap") if metrics_on else None
        self._timer_alloc = reg.timer("allocator") if metrics_on else None
        self._ctr_aborted = reg.counter("fabric.flows_aborted") if metrics_on else None
        self._ctr_rerouted = reg.counter("fabric.flows_rerouted") if metrics_on else None
        self._capacities: Dict[LinkId, float] = {
            link.link_id: link.capacity for link in topology.links()
        }
        self._active: Dict[FlowId, Flow] = {}
        # Secondary indexes so per-link / per-host queries (placement
        # policies, daemons) stay O(local flows) instead of O(all flows).
        self._by_link: Dict[LinkId, Dict[FlowId, Flow]] = {}
        self._by_host: Dict[NodeId, Dict[FlowId, Flow]] = {}
        self._rates: Dict[FlowId, float] = {}
        # Per-flow progress bookkeeping: the time each flow's (remaining,
        # attained) pair was last brought up to date.  Progress is applied
        # lazily — untouched components pay nothing per foreign event.
        self._synced_at: Dict[FlowId, float] = {}
        self._completion_events: Dict[FlowId, Event] = {}
        self._scope_of: Dict[FlowId, _AllocScope] = {}
        self._records: List[FlowRecord] = []
        self._listeners: List[CompletionListener] = []
        self._arrival_listeners: List[Callable[[Flow], None]] = []
        self._next_flow_id = 0
        # Fault-injection state: failed links stay in the capacity map at
        # 0.0 (no flow crosses them — they are evacuated first), and
        # aborted flows are tallied for the degraded-mode telemetry.
        self._failed_links: Set[LinkId] = set()
        self._down_hosts: Set[NodeId] = set()
        self._flows_aborted = 0
        self._flows_rerouted = 0
        # Optimal FCTs are frozen at submit time: completion records must
        # not shift when a fault later degrades or fails a path link (and
        # the empty-network baseline is only well defined pre-fault).
        self._optimal_on_submit: Dict[FlowId, float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def router(self) -> Router:
        return self._router

    @property
    def allocator(self) -> RateAllocator:
        return self._allocator

    @property
    def alloc_backend(self) -> str:
        """The allocator's effective compute backend (python/numpy)."""
        return self._allocator.backend

    @property
    def incremental(self) -> bool:
        """Whether recomputes are scoped to the dirty sharing component."""
        return self._incremental

    @property
    def records(self) -> Sequence[FlowRecord]:
        """Completion records, in completion order."""
        return tuple(self._records)

    def active_flows(self) -> List[Flow]:
        """Currently active flows (progress synced to *now*)."""
        now = self._engine.now
        for flow in self._active.values():
            self._sync_flow(flow, now)
        return list(self._active.values())

    def flows_on_link(self, link_id: LinkId) -> List[Flow]:
        """Active flows whose path crosses ``link_id`` (progress synced)."""
        now = self._engine.now
        members = self._by_link.get(link_id, {})
        for flow in members.values():
            self._sync_flow(flow, now)
        return list(members.values())

    def flows_at_host(self, host: NodeId) -> List[Flow]:
        """Active flows sourced at or destined to ``host``."""
        now = self._engine.now
        members = self._by_host.get(host, {})
        for flow in members.values():
            self._sync_flow(flow, now)
        return list(members.values())

    def current_rate(self, flow: Flow) -> float:
        """The flow's instantaneous allocated rate (bits/sec)."""
        return self._rates.get(flow.flow_id, 0.0)

    def link_queued_bits(self, link_id: LinkId) -> float:
        """Total remaining bits of flows crossing ``link_id``."""
        now = self._engine.now
        total = 0.0
        for flow in self._by_link.get(link_id, {}).values():
            self._sync_flow(flow, now)
            total += flow.remaining
        return total

    def link_rate_utilization(self, link_id: LinkId) -> float:
        """Fraction of the link's capacity currently allocated."""
        capacity = self._capacities[link_id]
        used = sum(
            self._rates.get(flow_id, 0.0)
            for flow_id in self._by_link.get(link_id, {})
        )
        return used / capacity if capacity > 0 else 0.0

    def link_capacity(self, link_id: LinkId) -> float:
        """Current (possibly degraded) capacity of ``link_id``."""
        return self._capacities[link_id]

    @property
    def failed_links(self) -> Set[LinkId]:
        """Links taken down by fault injection (capacity pinned at 0)."""
        return set(self._failed_links)

    @property
    def down_hosts(self) -> Set[NodeId]:
        """Hosts taken down by fault injection."""
        return set(self._down_hosts)

    def host_is_up(self, host: NodeId) -> bool:
        """False once :meth:`fail_host` has taken ``host`` down."""
        return host not in self._down_hosts

    @property
    def flows_aborted(self) -> int:
        """Flows aborted because a failed link left them no route."""
        return self._flows_aborted

    @property
    def flows_rerouted(self) -> int:
        """Flows moved to an alternate path after a link failure."""
        return self._flows_rerouted

    def optimal_fct(self, src: NodeId, dst: NodeId, size: float) -> float:
        """Empty-network transfer time: size over the path's bottleneck.

        Host-local transfers are free (zero network time), which is exactly
        how data locality pays off in the model.
        """
        path = self._router.path(src, dst)
        if not path.links:
            return 0.0
        bottleneck = min(self._capacities[link] for link in path.links)
        return size / bottleneck

    # ------------------------------------------------------------------
    # Flow lifecycle
    # ------------------------------------------------------------------
    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Register a callback fired at each flow completion."""
        self._listeners.append(listener)

    def add_arrival_listener(self, listener: Callable[[Flow], None]) -> None:
        """Register a callback fired when a (non-local) flow enters the
        network — used by network daemons maintaining incremental state."""
        self._arrival_listeners.append(listener)

    def submit(
        self,
        src: NodeId,
        dst: NodeId,
        size: float,
        *,
        tag: str = "",
        coflow=None,
    ) -> Flow:
        """Inject a new flow into the network at the current time."""
        path = self._router.path(src, dst)
        flow = Flow(
            flow_id=self._next_flow_id,
            src=src,
            dst=dst,
            size=size,
            path=path.links,
            arrival_time=self._engine.now,
            coflow=coflow,
            tag=tag,
        )
        self._next_flow_id += 1
        if path.links:
            bottleneck = min(self._capacities[link] for link in path.links)
            self._optimal_on_submit[flow.flow_id] = size / bottleneck
        else:
            self._optimal_on_submit[flow.flow_id] = 0.0
        if coflow is not None:
            coflow.attach_flow(flow)
        if self._ctr_submitted is not None:
            self._ctr_submitted.inc()
        if self._trace.active:
            self._trace.emit(
                "flow_arrival",
                self._engine.now,
                {
                    "flow_id": flow.flow_id,
                    "src": src,
                    "dst": dst,
                    "size": size,
                    "tag": tag,
                    "local": flow.is_local,
                },
            )
        if self._causal is not None:
            self._causal.on_flow_submit(
                self._engine.now,
                flow.flow_id,
                src=src,
                dst=dst,
                size=size,
                path=flow.path,
                optimal=self._optimal_on_submit[flow.flow_id],
            )
        if flow.is_local:
            # Data is already on the destination host: finishes instantly.
            flow.advance(flow.remaining)
            self._finish_flow(flow)
            return flow
        self._active[flow.flow_id] = flow
        self._synced_at[flow.flow_id] = self._engine.now
        for link_id in flow.path:
            self._by_link.setdefault(link_id, {})[flow.flow_id] = flow
        self._by_host.setdefault(flow.src, {})[flow.flow_id] = flow
        self._by_host.setdefault(flow.dst, {})[flow.flow_id] = flow
        self._allocator.note_arrival(flow)
        for listener in self._arrival_listeners:
            listener(flow)
        self._recompute(flow.path)
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort an active flow without completing it.

        Models task preemption / failure: the flow's traffic vanishes and
        remaining bandwidth is re-shared immediately.  No completion
        record is appended and listeners do not fire.  Flows belonging to
        a coflow cannot be cancelled (the coflow's CCT would be
        undefined); fail the whole coflow at the application layer
        instead.
        """
        if flow.coflow is not None:
            raise FlowError(
                f"flow {flow.flow_id} belongs to coflow "
                f"{flow.coflow.coflow_id}; cancel at coflow granularity"
            )
        if flow.flow_id not in self._active:
            raise FlowError(f"flow {flow.flow_id} is not active")
        self._optimal_on_submit.pop(flow.flow_id, None)
        self._drop_flow(flow)
        self._recompute(flow.path)

    # ------------------------------------------------------------------
    # Fault injection (data plane)
    # ------------------------------------------------------------------
    def degrade_link(self, link_id: LinkId, factor: float) -> None:
        """Scale ``link_id``'s capacity by ``factor`` (> 0) and re-share.

        Factors below 1 degrade, above 1 restore — a fault plan expresses
        a brown-out window as degrade followed by the inverse restore.
        Degrading an already-failed link is a no-op (its capacity is
        pinned at zero until the run ends).
        """
        self._topology.link(link_id)  # raises TopologyError on bad ids
        if factor <= 0.0:
            raise FlowError(
                f"degrade factor must be > 0, got {factor!r} "
                "(use fail_link to take a link down)"
            )
        if link_id in self._failed_links:
            return
        self._capacities[link_id] = self._capacities[link_id] * factor
        if self._trace.active:
            self._trace.emit(
                "link_degrade",
                self._engine.now,
                {
                    "link": link_id,
                    "factor": factor,
                    "capacity": self._capacities[link_id],
                },
            )
        if self._causal is not None:
            self._causal.on_capacity(
                self._engine.now, link_id, self._capacities[link_id]
            )
        self._recompute((link_id,))

    def fail_link(self, link_id: LinkId) -> None:
        """Permanently fail ``link_id``.

        Every flow crossing the link is first *evacuated* — rerouted onto
        an alternate path when the router still has one, aborted
        otherwise — and only then is the capacity pinned at zero; the
        allocator therefore never sees a flow on a zero-capacity link
        (which would violate work conservation).  Idempotent.
        """
        self._topology.link(link_id)
        if link_id in self._failed_links:
            return
        self._failed_links.add(link_id)
        self._router.fail_link(link_id)
        now = self._engine.now
        dirty: Set[LinkId] = {link_id}
        victims = sorted(self._by_link.get(link_id, {}))
        for flow_id in victims:
            flow = self._active.get(flow_id)
            if flow is None:  # pragma: no cover - defensive
                continue
            self._sync_flow(flow, now)
            dirty.update(flow.path)
            if flow.finished:
                self._drop_flow(flow)
                self._finish_flow(flow)
                continue
            try:
                new_path = self._router.path(flow.src, flow.dst)
            except RoutingError:
                new_path = None
            if new_path is None:
                self._abort_flow(flow)
            else:
                self._reroute_flow(flow, new_path.links)
                dirty.update(flow.path)
        if self._trace.active:
            self._trace.emit(
                "link_down", now, {"link": link_id, "victims": len(victims)}
            )
        self._capacities[link_id] = 0.0
        if self._causal is not None:
            self._causal.on_capacity(now, link_id, 0.0)
        self._recompute(tuple(sorted(dirty)))

    def fail_host(self, host: NodeId) -> None:
        """Take ``host`` down: both its edge links fail.

        Flows touching the host abort (no alternate path reaches a dead
        host); other flows transiting its links reroute where possible.
        """
        if host not in self._topology.hosts:
            raise FlowError(f"fail_host: {host!r} is not a host")
        if host in self._down_hosts:
            return
        self._down_hosts.add(host)
        if self._trace.active:
            self._trace.emit("host_down", self._engine.now, {"host": host})
        self.fail_link(self._topology.host_uplink(host).link_id)
        self.fail_link(self._topology.host_downlink(host).link_id)

    def _reroute_flow(self, flow: Flow, new_links: Tuple[LinkId, ...]) -> None:
        """Move an active flow onto a new path (indexes + path swap)."""
        flow_id = flow.flow_id
        for link_id in flow.path:
            self._by_link[link_id].pop(flow_id, None)
        flow.path = new_links
        for link_id in new_links:
            self._by_link.setdefault(link_id, {})[flow_id] = flow
        self._flows_rerouted += 1
        if self._ctr_rerouted is not None:
            self._ctr_rerouted.inc()
        if self._trace.active:
            self._trace.emit(
                "flow_reroute",
                self._engine.now,
                {"flow_id": flow_id, "tag": flow.tag, "path": list(new_links)},
            )
        if self._causal is not None:
            self._causal.on_reroute(self._engine.now, flow_id, new_links)

    def _abort_flow(self, flow: Flow) -> None:
        """Drop a flow that lost its only path.

        No completion record is appended (the transfer never finished) and
        completion listeners do not fire; a coflow member's coflow simply
        never completes — the failed job shows up in the abort counters,
        not in the CCT statistics.
        """
        self._optimal_on_submit.pop(flow.flow_id, None)
        self._drop_flow(flow)
        self._flows_aborted += 1
        if self._ctr_aborted is not None:
            self._ctr_aborted.inc()
        if self._trace.active:
            self._trace.emit(
                "flow_abort",
                self._engine.now,
                {
                    "flow_id": flow.flow_id,
                    "tag": flow.tag,
                    "remaining": flow.remaining,
                },
            )
        if self._causal is not None:
            self._causal.on_abort(
                self._engine.now, flow.flow_id, flow.remaining
            )

    # ------------------------------------------------------------------
    # Internals: progress bookkeeping
    # ------------------------------------------------------------------
    def _sync_flow(self, flow: Flow, now: float) -> None:
        """Apply linear progress to one flow since its last sync."""
        flow_id = flow.flow_id
        dt = now - self._synced_at[flow_id]
        if dt > 0:
            rate = self._rates.get(flow_id, 0.0)
            if rate > RATE_EPSILON:
                flow.advance(rate * dt)
            self._synced_at[flow_id] = now

    def _drop_flow(self, flow: Flow) -> None:
        """Remove a flow from every index (completion or cancellation)."""
        flow_id = flow.flow_id
        del self._active[flow_id]
        self._rates.pop(flow_id, None)
        self._synced_at.pop(flow_id, None)
        event = self._completion_events.pop(flow_id, None)
        if event is not None:
            self._engine.cancel(event)
        scope = self._scope_of.pop(flow_id, None)
        if scope is not None and scope.hint_event is not None:
            self._engine.cancel(scope.hint_event)
            scope.hint_event = None
        for link_id in flow.path:
            self._by_link[link_id].pop(flow_id, None)
        self._by_host[flow.src].pop(flow_id, None)
        self._by_host[flow.dst].pop(flow_id, None)
        self._allocator.note_removal(flow)

    def _finish_flow(self, flow: Flow) -> None:
        flow.completion_time = self._engine.now
        optimal = self._optimal_on_submit.pop(flow.flow_id, None)
        if optimal is None:  # pragma: no cover - flows always pass submit()
            optimal = self.optimal_fct(flow.src, flow.dst, flow.size)
        record = FlowRecord(
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            size=flow.size,
            arrival_time=flow.arrival_time,
            completion_time=flow.completion_time,
            optimal_fct=optimal,
            tag=flow.tag,
            coflow_id=flow.coflow.coflow_id if flow.coflow is not None else None,
        )
        self._records.append(record)
        if self._ctr_completed is not None:
            self._ctr_completed.inc()
            self._hist_fct.observe(record.fct)
            if record.optimal_fct > 0:
                # FCT stretch vs the contention-free optimum: the
                # paper's headline ratio, live as a histogram so SLOs
                # can bound its tail.
                self._hist_fct_gap.observe(record.fct / record.optimal_fct)
        if self._trace.active:
            self._trace.emit(
                "flow_completion",
                self._engine.now,
                {
                    "flow_id": flow.flow_id,
                    "tag": flow.tag,
                    "size": flow.size,
                    "fct": record.fct,
                    "optimal_fct": record.optimal_fct,
                },
            )
        if self._causal is not None:
            self._causal.on_flow_done(
                self._engine.now,
                flow.flow_id,
                fct=record.fct,
                optimal=record.optimal_fct,
            )
        if flow.coflow is not None:
            flow.coflow.note_flow_finished(flow, self._engine.now)
        for listener in self._listeners:
            listener(flow, record)

    # ------------------------------------------------------------------
    # Internals: dirty-component expansion
    # ------------------------------------------------------------------
    def _expand_component(
        self, dirty_links: Sequence[LinkId]
    ) -> Tuple[List[Flow], Set[LinkId]]:
        """Connected component(s) of the sharing graph touching the dirty
        links: flows on a dirty link drag their other links in, and so on.

        Deterministic: traversal follows the insertion-ordered link
        indexes, and the result is sorted by flow id.
        """
        comp_flows: Dict[FlowId, Flow] = {}
        comp_links: Set[LinkId] = set()
        frontier: List[LinkId] = []
        for link_id in dirty_links:
            if link_id not in comp_links:
                comp_links.add(link_id)
                frontier.append(link_id)
        while frontier:
            link_id = frontier.pop()
            for flow_id, flow in self._by_link.get(link_id, {}).items():
                if flow_id in comp_flows:
                    continue
                comp_flows[flow_id] = flow
                for other in flow.path:
                    if other not in comp_links:
                        comp_links.add(other)
                        frontier.append(other)
        flows = [comp_flows[fid] for fid in sorted(comp_flows)]
        return flows, comp_links

    def _split_scopes(self, flows: Sequence[Flow]) -> List[Tuple[List[Flow], Set[LinkId]]]:
        """Partition ``flows`` into connected sharing components.

        A recompute set can be internally disconnected (a completion may
        have been the only bridge between two halves), and change-point
        hints must be tracked per true component so a later event in one
        half cannot invalidate the other half's hint.
        """
        pending: Dict[FlowId, Flow] = {f.flow_id: f for f in flows}
        components: List[Tuple[List[Flow], Set[LinkId]]] = []
        while pending:
            seed_id = next(iter(pending))
            seed = pending.pop(seed_id)
            members: Dict[FlowId, Flow] = {seed_id: seed}
            links: Set[LinkId] = set()
            frontier: List[LinkId] = list(seed.path)
            links.update(seed.path)
            while frontier:
                link_id = frontier.pop()
                for flow_id in self._by_link.get(link_id, {}):
                    flow = pending.pop(flow_id, None)
                    if flow is None:
                        continue
                    members[flow_id] = flow
                    for other in flow.path:
                        if other not in links:
                            links.add(other)
                            frontier.append(other)
            components.append(
                ([members[fid] for fid in sorted(members)], links)
            )
        return components

    # ------------------------------------------------------------------
    # Internals: rate recomputation
    # ------------------------------------------------------------------
    def _recompute(self, dirty_links: Optional[Sequence[LinkId]]) -> None:
        """Recompute rates for the component touching ``dirty_links``.

        ``None`` means everything is dirty (used by allocators that are
        not ``incremental_safe``).  In ``incremental=False`` mode the
        component is still expanded (it defines the sync scope and the
        trace payload) but the allocator runs on the full active set; the
        two modes perform identical float arithmetic per component, which
        is what makes their outputs byte-comparable.
        """
        prof = self._prof
        if prof is None:
            self._recompute_impl(dirty_links, None)
            return
        with prof.span(self._span_recompute):
            self._recompute_impl(dirty_links, prof)

    def _recompute_impl(
        self,
        dirty_links: Optional[Sequence[LinkId]],
        prof,
    ) -> None:
        now = self._engine.now
        if dirty_links is None or not self._allocator.incremental_safe:
            comp_flows = [self._active[fid] for fid in sorted(self._active)]
            comp_links = {
                link_id
                for link_id, members in self._by_link.items()
                if members
            }
        elif prof is not None:
            with prof.span("fabric.expand_component"):
                comp_flows, comp_links = self._expand_component(dirty_links)
        else:
            comp_flows, comp_links = self._expand_component(dirty_links)

        # Invalidate the hints of every scope this recompute supersedes.
        for flow in comp_flows:
            scope = self._scope_of.pop(flow.flow_id, None)
            if scope is not None and scope.hint_event is not None:
                self._engine.cancel(scope.hint_event)
                scope.hint_event = None

        for flow in comp_flows:
            self._sync_flow(flow, now)

        survivors: List[Flow] = []
        for flow in comp_flows:
            if flow.finished:
                self._drop_flow(flow)
                self._finish_flow(flow)
            else:
                survivors.append(flow)
        component_size = len(comp_flows)
        comp_flows = survivors
        if not comp_flows:
            return

        scoped = self._incremental
        if scoped:
            scope_flows = comp_flows
            capacities: Dict[LinkId, float] = {
                link_id: self._capacities[link_id]
                for link_id in sorted(comp_links)
            }
            if self._ctr_scoped is not None:
                self._ctr_scoped.inc()
        else:
            scope_flows = [self._active[fid] for fid in sorted(self._active)]
            capacities = self._capacities
            if self._ctr_full is not None:
                self._ctr_full.inc()
        if self._hist_component is not None:
            self._hist_component.observe(component_size)

        if prof is not None:
            with prof.span(self._span_alloc):
                rates = self._run_allocator(scope_flows, capacities)
        else:
            rates = self._run_allocator(scope_flows, capacities)

        if self._trace.active:
            self._trace.emit(
                "rate_recompute",
                now,
                {
                    "active_flows": len(self._active),
                    "component_flows": component_size,
                    "component_links": len(comp_links),
                },
            )

        comp_ids = {flow.flow_id for flow in comp_flows}
        if prof is not None:
            with prof.span("fabric.splice"):
                self._splice_rates(scope_flows, comp_ids, rates, now)
        else:
            self._splice_rates(scope_flows, comp_ids, rates, now)

        if self._shadow_verify and scoped:
            self._verify_against_full(now)

        # Re-scope the recomputed flows into true sharing components and
        # schedule each component's next allocator change point.
        for members, links in self._split_scopes(comp_flows):
            scope = _AllocScope(tuple(f.flow_id for f in members), links)
            hint = self._allocator.next_change_hint(members, self._rates)
            if hint is not None and 0 < hint < float("inf"):
                scope.hint_event = self._engine.schedule(
                    hint,
                    lambda s=scope: self._on_hint(s),
                    priority=RECOMPUTE_PRIORITY,
                    label="fabric-hint",
                )
            for flow in members:
                self._scope_of[flow.flow_id] = scope

    def _run_allocator(
        self, scope_flows: Sequence[Flow], capacities: Dict[LinkId, float]
    ):
        """One allocator invocation under the subsystem wall-time timer."""
        if self._timer_alloc is not None:
            with self._timer_alloc.time():
                return self._allocator.allocate(scope_flows, capacities)
        return self._allocator.allocate(scope_flows, capacities)

    def _splice_rates(
        self,
        scope_flows: Sequence[Flow],
        comp_ids: Set[FlowId],
        rates: Dict[FlowId, float],
        now: float,
    ) -> None:
        """Apply a fresh rate map into the cached rates and reschedule
        the completion events of every flow whose rate changed."""
        progressed = False
        for flow in scope_flows:
            flow_id = flow.flow_id
            new_rate = rates.get(flow_id, 0.0)
            old_rate = self._rates.get(flow_id, 0.0)
            if flow_id in comp_ids:
                if new_rate > RATE_EPSILON:
                    progressed = True
                self._rates[flow_id] = new_rate
                if self._causal is not None and new_rate != old_rate:
                    self._causal.on_rate(now, flow_id, new_rate)
                if new_rate != old_rate or (
                    new_rate > RATE_EPSILON
                    and flow_id not in self._completion_events
                ):
                    self._reschedule_completion(flow, new_rate, now)
            elif new_rate != old_rate:
                # Full-mode reference only: the global allocator moved a
                # flow outside the dirty component.  Apply it faithfully —
                # a scoped run cannot see this, so the differential
                # harness flags any policy for which it ever happens.
                self._sync_flow(flow, now)
                self._rates[flow_id] = new_rate
                if self._causal is not None:
                    self._causal.on_rate(now, flow_id, new_rate)
                self._reschedule_completion(flow, new_rate, now)
        if not progressed:
            raise FlowError(
                "no flow is making progress; allocator "
                f"{self._allocator.name!r} is not work-conserving"
            )

    def _reschedule_completion(self, flow: Flow, rate: float, now: float) -> None:
        flow_id = flow.flow_id
        event = self._completion_events.pop(flow_id, None)
        if event is not None:
            self._engine.cancel(event)
        if rate > RATE_EPSILON:
            self._completion_events[flow_id] = self._engine.schedule(
                max(flow.remaining / rate, 0.0),
                lambda f=flow: self._on_completion(f),
                priority=RECOMPUTE_PRIORITY,
                label="fabric-completion",
            )

    def _on_completion(self, flow: Flow) -> None:
        self._completion_events.pop(flow.flow_id, None)
        if flow.flow_id not in self._active:  # pragma: no cover - defensive
            return
        # The event time is authoritative: it was scheduled at exactly
        # remaining/rate under a rate that has not changed since (any
        # change reschedules).  Whatever residue float time arithmetic
        # leaves is dust — clamp it, or a sub-ulp reschedule could fire
        # at this same timestamp forever.
        self._sync_flow(flow, self._engine.now)
        if not flow.finished:
            flow.advance(flow.remaining)
        self._recompute(flow.path)

    def _on_hint(self, scope: _AllocScope) -> None:
        scope.hint_event = None
        live = [fid for fid in scope.flow_ids if fid in self._active]
        if not live:  # pragma: no cover - defensive
            return
        self._recompute(tuple(scope.links))

    def _verify_against_full(self, now: float) -> None:
        """Shadow oracle: the full allocator over all flows must agree
        with the spliced scoped rate map."""
        reference = self._allocator.allocate(
            [self._active[fid] for fid in sorted(self._active)],
            self._capacities,
        )
        mismatches: List[str] = []
        for flow_id in sorted(self._active):
            scoped_rate = self._rates.get(flow_id, 0.0)
            full_rate = reference.get(flow_id, 0.0)
            if abs(scoped_rate - full_rate) > SHADOW_TOLERANCE:
                mismatches.append(
                    f"flow {flow_id}: scoped={scoped_rate!r} full={full_rate!r}"
                )
        if mismatches:
            detail = "; ".join(mismatches[:5])
            raise ShadowVerifyError(
                f"scoped allocation diverged from full recompute at "
                f"t={now!r} under {self._allocator.name!r} "
                f"({len(mismatches)} flows): {detail}"
            )
