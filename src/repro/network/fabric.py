"""The flow-level network fabric.

:class:`NetworkFabric` couples the rate allocator (scheduling policy) to the
discrete-event engine.  Rates are recomputed whenever the set of flows
changes (arrival or completion) and whenever the allocator reports an
internal change point (LAS attained-service crossings); between recomputes
every flow progresses linearly at its assigned rate, so completions are
exact in the fluid model.

This module is the stand-in for the paper's ns2 substrate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.errors import FlowError
from repro.network.flow import Flow, FlowId, FlowRecord
from repro.network.policies.base import RATE_EPSILON, RateAllocator
from repro.sim.engine import Engine
from repro.sim.events import RECOMPUTE_PRIORITY, Event
from repro.topology.base import LinkId, NodeId, Topology
from repro.topology.routing import Router

if TYPE_CHECKING:  # pragma: no cover - avoids a network<->telemetry cycle
    from repro.telemetry import Telemetry

CompletionListener = Callable[[Flow, FlowRecord], None]


class NetworkFabric:
    """Fluid-model network simulator with a pluggable scheduling policy."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        allocator: RateAllocator,
        *,
        router: Optional[Router] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self._engine = engine
        self._topology = topology
        self._allocator = allocator
        self._router = router or Router(topology)
        # Telemetry hooks, pre-bound so the disabled path costs one
        # attribute check per event (NullMetricsRegistry hands back
        # shared no-op metrics, but we avoid even those on hot paths).
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._trace = telemetry.trace
        metrics_on = telemetry.registry.enabled
        reg = telemetry.registry
        self._ctr_submitted = reg.counter("fabric.flows_submitted") if metrics_on else None
        self._ctr_completed = reg.counter("fabric.flows_completed") if metrics_on else None
        self._ctr_recomputes = reg.counter("fabric.rate_recomputes") if metrics_on else None
        self._hist_fct = reg.histogram("fabric.fct_seconds") if metrics_on else None
        self._timer_alloc = reg.timer("allocator") if metrics_on else None
        self._capacities: Dict[LinkId, float] = {
            link.link_id: link.capacity for link in topology.links()
        }
        self._active: Dict[FlowId, Flow] = {}
        # Secondary indexes so per-link / per-host queries (placement
        # policies, daemons) stay O(local flows) instead of O(all flows).
        self._by_link: Dict[LinkId, Dict[FlowId, Flow]] = {}
        self._by_host: Dict[NodeId, Dict[FlowId, Flow]] = {}
        self._rates: Dict[FlowId, float] = {}
        self._last_sync = engine.now
        self._pending_event: Optional[Event] = None
        self._records: List[FlowRecord] = []
        self._listeners: List[CompletionListener] = []
        self._arrival_listeners: List[Callable[[Flow], None]] = []
        self._next_flow_id = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def router(self) -> Router:
        return self._router

    @property
    def allocator(self) -> RateAllocator:
        return self._allocator

    @property
    def records(self) -> Sequence[FlowRecord]:
        """Completion records, in completion order."""
        return tuple(self._records)

    def active_flows(self) -> List[Flow]:
        """Currently active flows (progress synced to *now*)."""
        self._sync_progress()
        return list(self._active.values())

    def flows_on_link(self, link_id: LinkId) -> List[Flow]:
        """Active flows whose path crosses ``link_id`` (progress synced)."""
        self._sync_progress()
        return list(self._by_link.get(link_id, {}).values())

    def flows_at_host(self, host: NodeId) -> List[Flow]:
        """Active flows sourced at or destined to ``host``."""
        self._sync_progress()
        return list(self._by_host.get(host, {}).values())

    def current_rate(self, flow: Flow) -> float:
        """The flow's instantaneous allocated rate (bits/sec)."""
        return self._rates.get(flow.flow_id, 0.0)

    def link_queued_bits(self, link_id: LinkId) -> float:
        """Total remaining bits of flows crossing ``link_id``."""
        self._sync_progress()
        return sum(f.remaining for f in self._by_link.get(link_id, {}).values())

    def link_rate_utilization(self, link_id: LinkId) -> float:
        """Fraction of the link's capacity currently allocated."""
        capacity = self._capacities[link_id]
        used = sum(
            self._rates.get(flow_id, 0.0)
            for flow_id in self._by_link.get(link_id, {})
        )
        return used / capacity if capacity > 0 else 0.0

    def optimal_fct(self, src: NodeId, dst: NodeId, size: float) -> float:
        """Empty-network transfer time: size over the path's bottleneck.

        Host-local transfers are free (zero network time), which is exactly
        how data locality pays off in the model.
        """
        path = self._router.path(src, dst)
        if not path.links:
            return 0.0
        bottleneck = min(self._capacities[link] for link in path.links)
        return size / bottleneck

    # ------------------------------------------------------------------
    # Flow lifecycle
    # ------------------------------------------------------------------
    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Register a callback fired at each flow completion."""
        self._listeners.append(listener)

    def add_arrival_listener(self, listener: Callable[[Flow], None]) -> None:
        """Register a callback fired when a (non-local) flow enters the
        network — used by network daemons maintaining incremental state."""
        self._arrival_listeners.append(listener)

    def submit(
        self,
        src: NodeId,
        dst: NodeId,
        size: float,
        *,
        tag: str = "",
        coflow=None,
    ) -> Flow:
        """Inject a new flow into the network at the current time."""
        path = self._router.path(src, dst)
        flow = Flow(
            flow_id=self._next_flow_id,
            src=src,
            dst=dst,
            size=size,
            path=path.links,
            arrival_time=self._engine.now,
            coflow=coflow,
            tag=tag,
        )
        self._next_flow_id += 1
        if coflow is not None:
            coflow.attach_flow(flow)
        if self._ctr_submitted is not None:
            self._ctr_submitted.inc()
        if self._trace.active:
            self._trace.emit(
                "flow_arrival",
                self._engine.now,
                {
                    "flow_id": flow.flow_id,
                    "src": src,
                    "dst": dst,
                    "size": size,
                    "tag": tag,
                    "local": flow.is_local,
                },
            )
        if flow.is_local:
            # Data is already on the destination host: finishes instantly.
            flow.advance(flow.remaining)
            self._finish_flow(flow)
            return flow
        self._sync_progress()
        self._active[flow.flow_id] = flow
        for link_id in flow.path:
            self._by_link.setdefault(link_id, {})[flow.flow_id] = flow
        self._by_host.setdefault(flow.src, {})[flow.flow_id] = flow
        self._by_host.setdefault(flow.dst, {})[flow.flow_id] = flow
        for listener in self._arrival_listeners:
            listener(flow)
        self._reallocate()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort an active flow without completing it.

        Models task preemption / failure: the flow's traffic vanishes and
        remaining bandwidth is re-shared immediately.  No completion
        record is appended and listeners do not fire.  Flows belonging to
        a coflow cannot be cancelled (the coflow's CCT would be
        undefined); fail the whole coflow at the application layer
        instead.
        """
        if flow.coflow is not None:
            raise FlowError(
                f"flow {flow.flow_id} belongs to coflow "
                f"{flow.coflow.coflow_id}; cancel at coflow granularity"
            )
        if flow.flow_id not in self._active:
            raise FlowError(f"flow {flow.flow_id} is not active")
        self._sync_progress()
        del self._active[flow.flow_id]
        self._rates.pop(flow.flow_id, None)
        for link_id in flow.path:
            self._by_link[link_id].pop(flow.flow_id, None)
        self._by_host[flow.src].pop(flow.flow_id, None)
        self._by_host[flow.dst].pop(flow.flow_id, None)
        self._reallocate()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sync_progress(self) -> None:
        """Apply linear progress since the last rate computation."""
        now = self._engine.now
        dt = now - self._last_sync
        if dt > 0:
            for flow_id, flow in self._active.items():
                rate = self._rates.get(flow_id, 0.0)
                if rate > RATE_EPSILON:
                    flow.advance(rate * dt)
        self._last_sync = now

    def _finish_flow(self, flow: Flow) -> None:
        flow.completion_time = self._engine.now
        record = FlowRecord(
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            size=flow.size,
            arrival_time=flow.arrival_time,
            completion_time=flow.completion_time,
            optimal_fct=self.optimal_fct(flow.src, flow.dst, flow.size),
            tag=flow.tag,
            coflow_id=flow.coflow.coflow_id if flow.coflow is not None else None,
        )
        self._records.append(record)
        if self._ctr_completed is not None:
            self._ctr_completed.inc()
            self._hist_fct.observe(record.fct)
        if self._trace.active:
            self._trace.emit(
                "flow_completion",
                self._engine.now,
                {
                    "flow_id": flow.flow_id,
                    "tag": flow.tag,
                    "size": flow.size,
                    "fct": record.fct,
                    "optimal_fct": record.optimal_fct,
                },
            )
        if flow.coflow is not None:
            flow.coflow.note_flow_finished(flow, self._engine.now)
        for listener in self._listeners:
            listener(flow, record)

    def _collect_finished(self) -> None:
        finished = [f for f in self._active.values() if f.finished]
        for flow in finished:
            del self._active[flow.flow_id]
            self._rates.pop(flow.flow_id, None)
            for link_id in flow.path:
                self._by_link[link_id].pop(flow.flow_id, None)
            self._by_host[flow.src].pop(flow.flow_id, None)
            self._by_host[flow.dst].pop(flow.flow_id, None)
            self._finish_flow(flow)

    def _reallocate(self) -> None:
        """Recompute rates and schedule the next fabric event."""
        self._collect_finished()
        flows = list(self._active.values())
        if self._pending_event is not None:
            self._engine.cancel(self._pending_event)
            self._pending_event = None
        if not flows:
            self._rates = {}
            return
        if self._ctr_recomputes is not None:
            self._ctr_recomputes.inc()
            with self._timer_alloc.time():
                self._rates = self._allocator.allocate(flows, self._capacities)
        else:
            self._rates = self._allocator.allocate(flows, self._capacities)
        if self._trace.active:
            self._trace.emit(
                "rate_recompute",
                self._engine.now,
                {"active_flows": len(flows)},
            )

        next_dt = float("inf")
        for flow in flows:
            rate = self._rates.get(flow.flow_id, 0.0)
            if rate > RATE_EPSILON:
                next_dt = min(next_dt, flow.remaining / rate)
        hint = self._allocator.next_change_hint(flows, self._rates)
        if hint is not None and hint > 0:
            next_dt = min(next_dt, hint)
        if next_dt == float("inf"):
            raise FlowError(
                "no flow is making progress; allocator "
                f"{self._allocator.name!r} is not work-conserving"
            )
        self._pending_event = self._engine.schedule(
            max(next_dt, 0.0),
            self._on_step,
            priority=RECOMPUTE_PRIORITY,
            label="fabric-step",
        )

    def _on_step(self) -> None:
        self._pending_event = None
        self._sync_progress()
        self._reallocate()
