"""Flow model for the fluid simulator.

A :class:`Flow` is a unidirectional transfer of ``size`` bits from a source
host to a destination host along a fixed routed path.  The fluid model
tracks two progress quantities:

* ``remaining`` — bits still to transfer (drives SRPT priority),
* ``attained`` — bits already transferred (drives LAS priority).

Flows may belong to a coflow (see :mod:`repro.coflow`); the scheduler then
treats the coflow as the scheduling unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import FlowError
from repro.topology.base import LinkId, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coflow.coflow import Coflow

FlowId = int

#: Progress below this many bits counts as "finished" (guards float error).
COMPLETION_EPSILON_BITS = 1e-6


@dataclass(eq=False)
class Flow:
    """A single network flow.

    Attributes:
        flow_id: unique id assigned by the fabric.
        src: source host id.
        dst: destination host id.
        size: transfer size in bits (must be positive).
        path: link ids traversed, in order (empty for host-local transfers).
        arrival_time: simulation time the flow entered the network.
        remaining: bits left to transfer.
        attained: bits transferred so far.
        completion_time: set when the flow finishes.
        coflow: owning coflow, if scheduled as part of one.
        tag: free-form label used by experiments (e.g. job id).
    """

    flow_id: FlowId
    src: NodeId
    dst: NodeId
    size: float
    path: Tuple[LinkId, ...]
    arrival_time: float
    remaining: float = field(init=False)
    attained: float = field(init=False, default=0.0)
    completion_time: Optional[float] = None
    coflow: Optional["Coflow"] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise FlowError(f"flow size must be positive, got {self.size!r}")
        if self.arrival_time < 0:
            raise FlowError(
                f"flow arrival time must be >= 0, got {self.arrival_time!r}"
            )
        self.remaining = float(self.size)

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once remaining bits fall within the completion epsilon.

        The epsilon scales with flow size so that float error accumulated
        over many rate recomputations of a multi-gigabyte flow still counts
        as done.
        """
        return self.remaining <= COMPLETION_EPSILON_BITS + self.size * 1e-12

    @property
    def is_local(self) -> bool:
        """True if src == dst (zero network transfer)."""
        return not self.path and self.src == self.dst

    def advance(self, bits: float) -> None:
        """Transfer ``bits`` of progress (clamped to the remaining size)."""
        if bits < 0:
            raise FlowError(f"cannot advance by negative bits {bits!r}")
        moved = min(bits, self.remaining)
        self.remaining -= moved
        self.attained += moved

    def fct(self) -> float:
        """Flow completion time (raises if not finished yet)."""
        if self.completion_time is None:
            raise FlowError(f"flow {self.flow_id} has not completed")
        return self.completion_time - self.arrival_time

    def __repr__(self) -> str:
        state = "done" if self.completion_time is not None else "active"
        return (
            f"Flow(#{self.flow_id} {self.src}->{self.dst} "
            f"size={self.size:.3g}b rem={self.remaining:.3g}b {state})"
        )


@dataclass(frozen=True)
class FlowRecord:
    """Immutable completion record appended to the fabric's FCT log."""

    flow_id: FlowId
    src: NodeId
    dst: NodeId
    size: float
    arrival_time: float
    completion_time: float
    optimal_fct: float
    tag: str = ""
    coflow_id: Optional[int] = None

    @property
    def fct(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def slowdown(self) -> float:
        """FCT divided by the optimal (empty-network) FCT."""
        if self.optimal_fct <= 0:
            return 1.0
        return self.fct / self.optimal_fct

    @property
    def gap_from_optimal(self) -> float:
        """The paper's metric: ``(FCT - FCT_opt) / FCT_opt`` (= slowdown-1)."""
        return self.slowdown - 1.0
