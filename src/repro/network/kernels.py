"""Batched numpy kernels for the water-filling rate allocators.

:func:`priority_fill` is the vectorized twin of
:func:`repro.network.policies.base.greedy_priority_fill`: it takes the
same ordered priority groups and per-link capacities and returns a
**bit-identical** rate map.

The reference's per-round cost is the bottleneck scan — a Python loop
over every link of the sharing component comparing equal shares, paid
again on every round.  The kernel keeps that array of per-link shares
as a contiguous float64 vector and replays the scan as a handful of
vectorized "epsilon chain hops" (first link beating the current
candidate by more than ``RATE_EPSILON``, repeated); membership counts
and residual capacities stay scalar bookkeeping, updated pointwise only
for the links a freeze actually touches.  Per round that turns an
O(links) interpreted loop into O(touched links) scalar work plus a few
C-speed array comparisons.

Byte-identity is by construction, not by tolerance.  Every float the
Python reference produces comes from one of four scalar expressions —

* ``share = residual / count``                      (bottleneck scan)
* ``share < bottleneck_share - RATE_EPSILON``       (epsilon tie-break)
* ``residual = max(0.0, residual - share * k)``     (per-round drain)
* ``rate = bottleneck_share``                       (freeze)

— and the kernel evaluates the *same* expressions on the same operands:
shares enter the float64 vector losslessly, numpy's elementwise float64
compare/divide are bit-identical to Python float semantics (IEEE-754,
no reassociation), and the chain-hop scan visits candidates in the same
first-seen link order with the same epsilon hysteresis, so every round
freezes the same flows at the same share.  The differential and golden
suites in ``tests/test_kernel_differential.py`` / ``tests/test_goldens.py``
lock this contract end-to-end (records, JSONL traces, causal traces).

Vectorization pays inside *large* priority groups (max-min fair over a
big sharing component); a strict-priority cascade of tiny groups
(SRPT/FCFS over all-distinct keys) is inherently sequential, and numpy
array setup loses to dict arithmetic there.  :data:`GROUP_CUTOFF`
routes each group below the cutoff to the scalar reference — safe
precisely because both paths are bit-identical, and both share one
residual map so groups can mix backends within a single allocation.

numpy is an optional dependency (the ``perf`` extra).  When it is not
importable, :data:`HAVE_NUMPY` is False and :func:`resolve_backend`
silently falls back to ``"python"`` — the simulator never requires it.
"""

from __future__ import annotations

import os
from array import array as _f64buf
from itertools import accumulate
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import ConfigError
from repro.network.flow import Flow, FlowId
from repro.network.policies.base import (
    RATE_EPSILON,
    greedy_priority_fill,
    water_fill,
)
from repro.topology.base import LinkId

try:  # pragma: no cover - exercised via the no-numpy CI leg / subprocess test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when the numpy kernels are importable in this environment.
HAVE_NUMPY = _np is not None

#: Backends accepted by :func:`resolve_backend`.
BACKENDS = ("python", "numpy")

#: Environment variable that selects the default allocator backend when
#: no explicit ``backend=`` is given (the CI numpy leg sets it, as does
#: pytest's ``--alloc-backend`` option).
BACKEND_ENV = "REPRO_ALLOC_BACKEND"

#: Priority groups smaller than this water-fill on the scalar reference
#: even under the numpy backend: array setup loses to dict arithmetic on
#: the tiny groups priority cascades produce (and on the small dirty
#: components of incremental recomputes, p50 ~5 flows), while the
#: outputs are bit-identical either way.  Tunable via
#: ``REPRO_KERNEL_CUTOFF`` (tests pin it to 1 to force every group
#: through the vectorized path).
GROUP_CUTOFF = int(os.environ.get("REPRO_KERNEL_CUTOFF", "16"))


def available_backends() -> tuple:
    """Backends usable in this environment (numpy only when importable)."""
    return BACKENDS if HAVE_NUMPY else ("python",)


def resolve_backend(backend: "str | None") -> str:
    """Validate a backend request and resolve it to an effective one.

    ``None`` reads :data:`BACKEND_ENV` (default ``"python"``).  Asking
    for ``"numpy"`` without numpy installed degrades gracefully to
    ``"python"`` — the two are bit-identical, so the fallback changes
    speed, never results.  Unknown names raise :class:`ConfigError`.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "python"
    backend = backend.lower()
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ConfigError(
            f"unknown allocator backend {backend!r}; known: {known}"
        )
    if backend == "numpy" and not HAVE_NUMPY:
        return "python"
    return backend


def priority_fill(
    groups: Iterable[Sequence[Flow]],
    capacities: Mapping[LinkId, float],
) -> Dict[FlowId, float]:
    """Vectorized strict-priority water-filling (bit-identical twin of
    :func:`~repro.network.policies.base.greedy_priority_fill`).

    ``groups`` must be ordered highest priority first; equal-priority
    flows (same group) share fairly, lower groups water-fill the
    residual capacity left by higher ones.
    """
    if _np is None:
        return greedy_priority_fill(groups, capacities)
    residual: Dict[LinkId, float] = dict(capacities)
    rates: Dict[FlowId, float] = {}
    for group in groups:
        group = list(group)
        if len(group) < GROUP_CUTOFF:
            water_fill(group, residual, rates)
        else:
            _water_fill_numpy(group, residual, rates)
    return rates


#: Shares at or above this magnitude cannot be within ``RATE_EPSILON``
#: of each other without being exactly equal: two distinct float64
#: values >= 2**23 differ by at least one ulp = 2**-29 > 1e-9.  Above
#: the floor the reference's epsilon-improvement chain provably ends at
#: the *first occurrence of the minimum share* — exactly ``argmin`` —
#: so the scan collapses to one C call.  Below it (drained links, tiny
#: residuals) the chain is replayed hop by hop instead.
_NEAR_TIE_FLOOR = float(2**23)

#: Process-wide link-id interning for the kernel: maps each LinkId to a
#: stable small int so per-flow paths cache as numpy index arrays on the
#: Flow objects themselves.  Append-only; the ints are internal identity
#: only (scan order is recomputed per call from first-seen order), so
#: the registry never influences results.
_LINK_INTERN: Dict[LinkId, int] = {}
_LINK_NAMES: List[LinkId] = []


def _flow_cols(flow: Flow) -> "object":
    """The flow's path as a cached array of interned link ints."""
    cols = getattr(flow, "_kernel_cols", None)
    if cols is None:
        intern = _LINK_INTERN
        ids = []
        for link_id in flow.path:
            gid = intern.get(link_id)
            if gid is None:
                gid = len(_LINK_NAMES)
                intern[link_id] = gid
                _LINK_NAMES.append(link_id)
            ids.append(gid)
        cols = _np.asarray(ids, dtype=_np.intp)
        flow._kernel_cols = cols
    return cols


def _water_fill_numpy(
    flows: List[Flow],
    residual: Dict[LinkId, float],
    rates: Dict[FlowId, float],
) -> None:
    """One max-min water-fill round-for-round with the reference.

    Mutates ``residual`` and ``rates`` exactly like
    :func:`~repro.network.policies.base.water_fill`.
    """
    np = _np

    # ------------------------------------------------------------------
    # Build phase (vectorized): concatenate the flows' interned paths
    # and assign every distinct link a column in first-seen order — the
    # exact order the reference's ``members`` dict iterates during its
    # bottleneck scan.
    # ------------------------------------------------------------------
    objs: List[Flow] = []
    arrs = []
    lengths: List[int] = []
    for flow in flows:
        rates[flow.flow_id] = 0.0
        if not flow.path:
            continue
        cols = _flow_cols(flow)
        objs.append(flow)
        arrs.append(cols)
        lengths.append(len(cols))
    n_flows = len(objs)
    if n_flows == 0:
        return

    cat = np.concatenate(arrs)
    total = cat.size
    # Column assignment over *dense* global-id scratch arrays (the
    # intern table is small and append-only, so sized-to-registry
    # scratch beats a sort-based ``np.unique``).  Duplicate-index fancy
    # assignment applies writes in order, so scattering reversed
    # positions leaves each link's *first* occurrence — giving columns
    # in exactly the first-seen order the reference's ``members`` dict
    # iterates during its bottleneck scan.
    n_global = len(_LINK_NAMES)
    count_g = np.bincount(cat, minlength=n_global)
    present = np.flatnonzero(count_g)
    pos_g = np.empty(n_global, dtype=np.intp)
    pos_g[cat[::-1]] = np.arange(total - 1, -1, -1)
    order = np.argsort(pos_g[present], kind="stable")
    gids = present[order]  # col -> global link id, first-seen order
    n_links = gids.size
    rank_g = np.empty(n_global, dtype=np.intp)
    rank_g[gids] = np.arange(n_links)
    cols_cat = rank_g[cat]
    counts_arr = count_g[gids]

    # Residuals and shares live in ``array.array`` buffers: the fill
    # loop updates them with plain Python float arithmetic (bit-exact
    # C doubles, no numpy-scalar boxing overhead) while zero-copy numpy
    # views serve the vectorized argmin/chain scans.
    links: List[LinkId] = [_LINK_NAMES[g] for g in gids.tolist()]
    res = _f64buf("d", [residual.get(link_id, 0.0) for link_id in links])
    # Equal share per link; elementwise float64 division is
    # bit-identical to the reference's scalar divisions.
    shares_arr = np.frombuffer(res) / counts_arr
    shares_buf = _f64buf("d", shares_arr.tobytes())
    shares = np.frombuffer(shares_buf)
    counts: List[int] = counts_arr.tolist()

    # Per-column member positions (which flows cross each link), as one
    # flat list sliced by per-column offsets; only bottleneck columns
    # are ever consulted.  Per-flow column paths slice the same flat
    # ``cols_list`` by flow offsets.
    flowidx = np.repeat(np.arange(n_flows, dtype=np.intp), lengths)
    by_col = flowidx[np.argsort(cols_cat, kind="stable")].tolist()
    cols_list: List[int] = cols_cat.tolist()
    col_off: List[int] = [0, *accumulate(counts)]
    flow_off: List[int] = [0, *accumulate(lengths)]

    # ------------------------------------------------------------------
    # Fill phase: one round per bottleneck, exactly like the reference.
    # ------------------------------------------------------------------
    inf = float("inf")
    alive = [True] * n_flows
    flow_ids = [flow.flow_id for flow in objs]
    argmin = shares.argmin  # bound-method hoist: one call per round
    remaining = n_flows
    first_valid = 0  # counts only ever decrease, so this only advances
    while remaining:
        while first_valid < n_links and counts[first_valid] <= 0:
            first_valid += 1
        if first_valid == n_links:
            break
        idx = int(argmin())
        share = shares_buf[idx]  # buffer getitem -> plain Python float
        if share < _NEAR_TIE_FLOOR:
            # Above the floor no near-ties are possible, so the
            # reference's chain provably ends at the first occurrence
            # of the minimum — exactly what argmin returned.  Below it,
            # replay the epsilon-improvement chain: the reference walks
            # links in first-seen order and moves its candidate only on
            # a > RATE_EPSILON improvement, so the bottleneck is the
            # end of that chain, not the plain argmin.  Each hop finds
            # the first later link beating the candidate — one C-speed
            # compare over the tail.
            idx = first_valid
            share = shares_buf[idx]
            while idx + 1 < n_links:
                better = shares[idx + 1:] < (share - RATE_EPSILON)
                hop = int(better.argmax())
                if not better[hop]:
                    break
                idx += 1 + hop
                share = shares_buf[idx]
        if share < 0.0:
            share = 0.0

        # Freeze every unfrozen flow crossing the bottleneck (the
        # alive check also dedupes flows listing a link twice), then
        # apply the reference's single-expression drain per touched
        # link and refresh that link's cached share.
        frozen: List[int] = []
        for pos in by_col[col_off[idx]:col_off[idx + 1]]:
            if alive[pos]:
                alive[pos] = False
                frozen.append(pos)
        if not frozen:  # pragma: no cover - counts>0 implies a flow
            break
        freeze_counts: Dict[int, int] = {}
        fc_get = freeze_counts.get
        for pos in frozen:
            rates[flow_ids[pos]] = share
            for col in cols_list[flow_off[pos]:flow_off[pos + 1]]:
                freeze_counts[col] = fc_get(col, 0) + 1
        remaining -= len(frozen)
        for col, k in freeze_counts.items():
            count = counts[col] - k
            counts[col] = count
            drained = max(0.0, res[col] - share * k)
            res[col] = drained
            shares_buf[col] = drained / count if count > 0 else inf
        counts[idx] = 0  # members.pop(bottleneck)
        shares_buf[idx] = inf

    for col, link_id in enumerate(links):
        residual[link_id] = res[col]
