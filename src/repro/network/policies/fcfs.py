"""First-come-first-serve flow scheduling.

Flows are served strictly in arrival order: on every link, the earliest-
arrived flow crossing it transmits at full residual rate; later flows wait
(but backfill links the earlier flows do not use — work conservation).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.network.flow import Flow, FlowId
from repro.network.policies.base import (
    RateAllocator,
    group_by_key,
)
from repro.topology.base import LinkId


class FCFSAllocator(RateAllocator):
    """Strict arrival-order priority (FCFS)."""

    name = "fcfs"
    incremental_safe = True

    def __init__(self) -> None:
        # Persistent arrival-sorted index, maintained via the fabric hooks
        # (O(log n) insert instead of an O(n log n) re-sort per recompute).
        # Keys are (arrival_time, flow_id): unique, so the Flow member of
        # the tuple is never compared.
        self._order: List[Tuple[float, FlowId, Flow]] = []

    def note_arrival(self, flow: Flow) -> None:
        bisect.insort(self._order, (flow.arrival_time, flow.flow_id, flow))

    def note_removal(self, flow: Flow) -> None:
        # A 2-tuple key sorts immediately before its 3-tuple entry, so the
        # Flow objects themselves are never compared.
        index = bisect.bisect_left(
            self._order, (flow.arrival_time, flow.flow_id)
        )
        if index < len(self._order) and self._order[index][2] is flow:
            self._order.pop(index)

    def _groups(self, flows: Sequence[Flow]) -> List[List[Flow]]:
        if self._order and len(flows) == len(self._order):
            # Full active set (the tracked population): reuse the
            # persistent order.  Grouping matches group_by_key with zero
            # tolerance — adjacent equal arrivals merge.
            groups: List[List[Flow]] = []
            for arrival, _flow_id, flow in self._order:
                if groups and arrival == groups[-1][-1].arrival_time:
                    groups[-1].append(flow)
                else:
                    groups.append([flow])
            return groups
        keys = {flow.flow_id: flow.arrival_time for flow in flows}
        return group_by_key(flows, keys)

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        return self._fill(self._groups(flows), capacities)
