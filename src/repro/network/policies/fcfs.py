"""First-come-first-serve flow scheduling.

Flows are served strictly in arrival order: on every link, the earliest-
arrived flow crossing it transmits at full residual rate; later flows wait
(but backfill links the earlier flows do not use — work conservation).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.network.flow import Flow, FlowId
from repro.network.policies.base import (
    RateAllocator,
    greedy_priority_fill,
    group_by_key,
)
from repro.topology.base import LinkId


class FCFSAllocator(RateAllocator):
    """Strict arrival-order priority (FCFS)."""

    name = "fcfs"

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        keys = {flow.flow_id: flow.arrival_time for flow in flows}
        groups = group_by_key(flows, keys)
        return greedy_priority_fill(groups, capacities)
