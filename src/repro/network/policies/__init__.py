"""Flow scheduling policies (rate allocators) for the fluid simulator."""

from repro.network.policies.base import (
    RATE_EPSILON,
    RateAllocator,
    greedy_priority_fill,
    group_by_key,
    water_fill,
)
from repro.network.policies.fair import FairAllocator
from repro.network.policies.fcfs import FCFSAllocator
from repro.network.policies.las import LASAllocator
from repro.network.policies.registry import (
    available_policies,
    make_allocator,
    register_policy,
)
from repro.network.policies.srpt import SRPTAllocator

__all__ = [
    "RateAllocator",
    "FairAllocator",
    "FCFSAllocator",
    "LASAllocator",
    "SRPTAllocator",
    "make_allocator",
    "register_policy",
    "available_policies",
    "water_fill",
    "greedy_priority_fill",
    "group_by_key",
    "RATE_EPSILON",
]
