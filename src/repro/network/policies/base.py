"""Rate-allocator interface and shared water-filling machinery.

A :class:`RateAllocator` captures a network scheduling policy in the fluid
model: given the set of active flows and per-link capacities, it assigns
each flow an instantaneous rate.  The fabric re-invokes the allocator at
every arrival/completion (and at allocator-requested change points, e.g.
LAS attained-service crossings), so rates are piecewise constant.

All allocators here are work-conserving: no link is left idle while a flow
crossing it still has demand, matching the paper's §4.1 assumption.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.network.flow import Flow, FlowId
from repro.topology.base import LinkId

#: Rates below this (bits/sec) are treated as zero to avoid float dust.
RATE_EPSILON = 1e-9


class RateAllocator(ABC):
    """A network scheduling policy, expressed as instantaneous rates."""

    #: Short policy name, e.g. ``"fair"``; used by registries and reports.
    name: str = "abstract"

    #: Whether the allocation decomposes exactly over connected components
    #: of the flow-link sharing graph: the rates of a component depend only
    #: on that component's flows and links.  True for every policy that
    #: couples flows exclusively through shared-link capacities (fair,
    #: fcfs, las, srpt); False for coflow policies, where MADD spreads one
    #: coflow's progress across flows on *disjoint* links.  The fabric only
    #: scopes recomputes to the dirty component when this is True.
    incremental_safe: bool = False

    #: Effective compute backend for the shared priority-fill machinery:
    #: ``"python"`` (default) or ``"numpy"``.  Selected via
    #: :meth:`use_backend`; both backends are bit-identical, so this is a
    #: speed knob, never a semantics knob.
    backend: str = "python"

    def use_backend(self, backend: "Optional[str]") -> str:
        """Select the priority-fill backend and return the effective one.

        ``None`` defers to the ``REPRO_ALLOC_BACKEND`` environment
        variable (default ``"python"``); requesting ``"numpy"`` without
        numpy installed falls back to ``"python"`` silently.  Policies
        route their group allocation through :meth:`_fill`, so switching
        backends never touches policy-specific state (arrival indexes,
        link member lists, change-point hints).
        """
        from repro.network import kernels

        effective = kernels.resolve_backend(backend)
        self.backend = effective
        if effective == "numpy":
            self._fill = kernels.priority_fill
        else:
            self.__dict__.pop("_fill", None)
        return effective

    def _fill(
        self,
        groups: Iterable[Sequence[Flow]],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        """Backend dispatch point for strict-priority water-filling."""
        return greedy_priority_fill(groups, capacities)

    @abstractmethod
    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        """Return a rate (bits/sec) for every flow in ``flows``.

        Flows with an empty path (host-local transfers) should not be passed
        in; the fabric completes them immediately.  Must be side-effect free
        with respect to the flows and any allocator state: the fabric's
        ``shadow_verify`` mode replays allocations out of band.
        """

    def next_change_hint(
        self,
        flows: Sequence[Flow],
        rates: Mapping[FlowId, float],
    ) -> Optional[float]:
        """Seconds until the allocation would change *absent any arrival or
        completion*, or ``None`` if it would not.

        Most policies' priority order is stable between events; LAS and
        SRPT override this to report attained-service / remaining-size
        crossings.
        """
        return None

    def note_arrival(self, flow: Flow) -> None:
        """Fabric hook: ``flow`` entered the network.

        Stateful allocators (persistent per-link member lists, sorted
        arrival indexes) maintain their caches here instead of rebuilding
        from scratch each :meth:`allocate` call.  Default: no-op.
        """

    def note_removal(self, flow: Flow) -> None:
        """Fabric hook: ``flow`` left the network (completed or cancelled).

        Default: no-op; see :meth:`note_arrival`.
        """


class LinkMembershipMixin:
    """Reusable per-link member lists, maintained via the fabric hooks.

    Policies whose change-point detection walks flows link by link (LAS,
    SRPT) inherit this instead of rebuilding a ``link -> flows`` map on
    every hint call.  The lists stay *nearly* sorted between recomputes,
    so the in-place re-sort in :func:`earliest_adjacent_crossing` is close
    to linear.  When the allocator is used standalone (no fabric hooks),
    the tracker is simply empty and callers fall back to an ephemeral map.
    """

    def __init__(self) -> None:
        super().__init__()
        self._link_members: Dict[LinkId, List[Flow]] = {}
        self._tracked_flows = 0

    def note_arrival(self, flow: Flow) -> None:
        for link_id in flow.path:
            self._link_members.setdefault(link_id, []).append(flow)
        self._tracked_flows += 1

    def note_removal(self, flow: Flow) -> None:
        for link_id in flow.path:
            members = self._link_members.get(link_id)
            if members is not None:
                try:
                    members.remove(flow)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._tracked_flows = max(0, self._tracked_flows - 1)

    def _members_on(self, link_id: LinkId) -> Optional[List[Flow]]:
        """The tracked (persistent) member list for one link, if tracking."""
        if self._tracked_flows == 0:
            return None
        return self._link_members.get(link_id)


def earliest_adjacent_crossing(
    flows: Sequence[Flow],
    rates: Mapping[FlowId, float],
    *,
    key: Callable[[Flow], float],
    velocity: Callable[[float], float],
    tolerance: float,
    members_on: Optional[Callable[[LinkId], Optional[List[Flow]]]] = None,
) -> Optional[float]:
    """Earliest time two flows sharing a link swap priority-key order.

    For linear trajectories the first crossing is always between flows
    adjacent in key order on some shared link, so per link we sort by
    ``key`` and check adjacent pairs.  ``velocity(rate)`` maps a flow's
    rate to its key's time derivative (``+rate`` for attained service,
    ``-rate`` for remaining size); a pair converges when the lower-keyed
    flow's key grows toward the upper's.  Pairs within ``tolerance`` are
    already one priority group and are skipped.

    ``members_on`` supplies persistent per-link member lists (see
    :class:`LinkMembershipMixin`); they are sorted in place, which keeps
    repeat calls nearly linear.  Without it an ephemeral map is built from
    ``flows``.
    """
    link_ids: List[LinkId] = []
    seen: set = set()
    for flow in flows:
        for link_id in flow.path:
            if link_id not in seen:
                seen.add(link_id)
                link_ids.append(link_id)

    lists: Dict[LinkId, List[Flow]] = {}
    missing: set = set()
    for link_id in link_ids:
        members = members_on(link_id) if members_on is not None else None
        if members is None:
            missing.add(link_id)
            lists[link_id] = []
        else:
            lists[link_id] = members
    if missing:
        for flow in flows:
            for link_id in flow.path:
                if link_id in missing:
                    lists[link_id].append(flow)

    best: Optional[float] = None
    for link_id in link_ids:
        members = lists[link_id]
        if len(members) < 2:
            continue
        members.sort(key=lambda f: (key(f), f.flow_id))
        for lower, upper in zip(members, members[1:]):
            gap = key(upper) - key(lower)
            if gap <= tolerance:
                continue  # already one priority group
            closing = velocity(rates.get(lower.flow_id, 0.0)) - velocity(
                rates.get(upper.flow_id, 0.0)
            )
            if closing <= RATE_EPSILON:
                continue  # not converging
            dt = gap / closing
            if best is None or dt < best:
                best = dt
    return best


def water_fill(
    flows: Sequence[Flow],
    residual: Dict[LinkId, float],
    rates: Dict[FlowId, float],
) -> None:
    """Max-min fair (progressive-filling) allocation of ``flows`` onto
    ``residual`` capacities.

    Mutates ``residual`` (consumed capacity is subtracted) and ``rates``
    (one entry per flow).  Flows crossing a saturated link get rate 0.

    This single routine implements Fair sharing directly and serves as the
    per-priority-group allocator for FCFS/LAS/SRPT (the paper's rule that
    equal-priority flows share fairly).
    """
    # Flows with no usable link (shouldn't happen for routed flows) get 0.
    active: Dict[FlowId, Flow] = {}
    for flow in flows:
        rates[flow.flow_id] = 0.0
        if flow.path:
            active[flow.flow_id] = flow

    # Membership: link -> count of unfrozen flows crossing it.
    members: Dict[LinkId, int] = {}
    for flow in active.values():
        for link_id in flow.path:
            members[link_id] = members.get(link_id, 0) + 1

    while active:
        # The next bottleneck is the link with the smallest equal share.
        bottleneck: Optional[LinkId] = None
        bottleneck_share = float("inf")
        for link_id, count in members.items():
            if count <= 0:
                continue
            share = residual.get(link_id, 0.0) / count
            if share < bottleneck_share - RATE_EPSILON or (
                bottleneck is None and share < bottleneck_share
            ):
                bottleneck_share = share
                bottleneck = link_id
        if bottleneck is None:
            break
        bottleneck_share = max(bottleneck_share, 0.0)

        # Freeze every unfrozen flow crossing the bottleneck at that share.
        # Each touched link is drained in ONE clamped expression
        # (share * frozen-member-count) rather than one subtraction per
        # frozen flow: repeated float subtraction is order-dependent,
        # and the single-multiply form is what makes the numpy kernel in
        # repro.network.kernels bit-identical to this reference.
        frozen: List[Flow] = [
            flow for flow in active.values() if bottleneck in flow.path
        ]
        freeze_counts: Dict[LinkId, int] = {}
        for flow in frozen:
            rates[flow.flow_id] = bottleneck_share
            del active[flow.flow_id]
            for link_id in flow.path:
                freeze_counts[link_id] = freeze_counts.get(link_id, 0) + 1
        for link_id, count in freeze_counts.items():
            members[link_id] -= count
            residual[link_id] = max(
                0.0, residual.get(link_id, 0.0) - bottleneck_share * count
            )
        members.pop(bottleneck, None)


def greedy_priority_fill(
    groups: Iterable[Sequence[Flow]],
    capacities: Mapping[LinkId, float],
) -> Dict[FlowId, float]:
    """Strict-priority allocation: water-fill each group in order on the
    residual capacity left by higher-priority groups.

    ``groups`` must be ordered highest priority first.  Equal-priority flows
    (same group) share fairly; lower groups are preempted on contended links
    but still backfill idle capacity elsewhere (work conservation).
    """
    residual: Dict[LinkId, float] = dict(capacities)
    rates: Dict[FlowId, float] = {}
    for group in groups:
        water_fill(group, residual, rates)
    return rates


def group_by_key(
    flows: Sequence[Flow],
    key_values: Mapping[FlowId, float],
    *,
    tolerance: float = 0.0,
) -> List[List[Flow]]:
    """Sort flows by a priority key (ascending) and merge ties into groups.

    Two adjacent flows belong to the same group when their keys differ by at
    most ``tolerance`` (absolute).  Deterministic: ties inside a group keep
    flow-id order.
    """
    ordered = sorted(flows, key=lambda f: (key_values[f.flow_id], f.flow_id))
    groups: List[List[Flow]] = []
    for flow in ordered:
        if (
            groups
            and key_values[flow.flow_id] - key_values[groups[-1][-1].flow_id]
            <= tolerance
        ):
            groups[-1].append(flow)
        else:
            groups.append([flow])
    return groups
