"""Rate-allocator interface and shared water-filling machinery.

A :class:`RateAllocator` captures a network scheduling policy in the fluid
model: given the set of active flows and per-link capacities, it assigns
each flow an instantaneous rate.  The fabric re-invokes the allocator at
every arrival/completion (and at allocator-requested change points, e.g.
LAS attained-service crossings), so rates are piecewise constant.

All allocators here are work-conserving: no link is left idle while a flow
crossing it still has demand, matching the paper's §4.1 assumption.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.network.flow import Flow, FlowId
from repro.topology.base import LinkId

#: Rates below this (bits/sec) are treated as zero to avoid float dust.
RATE_EPSILON = 1e-9


class RateAllocator(ABC):
    """A network scheduling policy, expressed as instantaneous rates."""

    #: Short policy name, e.g. ``"fair"``; used by registries and reports.
    name: str = "abstract"

    @abstractmethod
    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        """Return a rate (bits/sec) for every flow in ``flows``.

        Flows with an empty path (host-local transfers) should not be passed
        in; the fabric completes them immediately.
        """

    def next_change_hint(
        self,
        flows: Sequence[Flow],
        rates: Mapping[FlowId, float],
    ) -> Optional[float]:
        """Seconds until the allocation would change *absent any arrival or
        completion*, or ``None`` if it would not.

        Most policies' priority order is stable between events; LAS
        overrides this to report attained-service crossings.
        """
        return None


def water_fill(
    flows: Sequence[Flow],
    residual: Dict[LinkId, float],
    rates: Dict[FlowId, float],
) -> None:
    """Max-min fair (progressive-filling) allocation of ``flows`` onto
    ``residual`` capacities.

    Mutates ``residual`` (consumed capacity is subtracted) and ``rates``
    (one entry per flow).  Flows crossing a saturated link get rate 0.

    This single routine implements Fair sharing directly and serves as the
    per-priority-group allocator for FCFS/LAS/SRPT (the paper's rule that
    equal-priority flows share fairly).
    """
    # Flows with no usable link (shouldn't happen for routed flows) get 0.
    active: Dict[FlowId, Flow] = {}
    for flow in flows:
        rates[flow.flow_id] = 0.0
        if flow.path:
            active[flow.flow_id] = flow

    # Membership: link -> count of unfrozen flows crossing it.
    members: Dict[LinkId, int] = {}
    for flow in active.values():
        for link_id in flow.path:
            members[link_id] = members.get(link_id, 0) + 1

    while active:
        # The next bottleneck is the link with the smallest equal share.
        bottleneck: Optional[LinkId] = None
        bottleneck_share = float("inf")
        for link_id, count in members.items():
            if count <= 0:
                continue
            share = residual.get(link_id, 0.0) / count
            if share < bottleneck_share - RATE_EPSILON or (
                bottleneck is None and share < bottleneck_share
            ):
                bottleneck_share = share
                bottleneck = link_id
        if bottleneck is None:
            break
        bottleneck_share = max(bottleneck_share, 0.0)

        # Freeze every unfrozen flow crossing the bottleneck at that share.
        frozen: List[Flow] = [
            flow for flow in active.values() if bottleneck in flow.path
        ]
        for flow in frozen:
            rates[flow.flow_id] = bottleneck_share
            del active[flow.flow_id]
            for link_id in flow.path:
                members[link_id] -= 1
                residual[link_id] = max(
                    0.0, residual.get(link_id, 0.0) - bottleneck_share
                )
        members.pop(bottleneck, None)


def greedy_priority_fill(
    groups: Iterable[Sequence[Flow]],
    capacities: Mapping[LinkId, float],
) -> Dict[FlowId, float]:
    """Strict-priority allocation: water-fill each group in order on the
    residual capacity left by higher-priority groups.

    ``groups`` must be ordered highest priority first.  Equal-priority flows
    (same group) share fairly; lower groups are preempted on contended links
    but still backfill idle capacity elsewhere (work conservation).
    """
    residual: Dict[LinkId, float] = dict(capacities)
    rates: Dict[FlowId, float] = {}
    for group in groups:
        water_fill(group, residual, rates)
    return rates


def group_by_key(
    flows: Sequence[Flow],
    key_values: Mapping[FlowId, float],
    *,
    tolerance: float = 0.0,
) -> List[List[Flow]]:
    """Sort flows by a priority key (ascending) and merge ties into groups.

    Two adjacent flows belong to the same group when their keys differ by at
    most ``tolerance`` (absolute).  Deterministic: ties inside a group keep
    flow-id order.
    """
    ordered = sorted(flows, key=lambda f: (key_values[f.flow_id], f.flow_id))
    groups: List[List[Flow]] = []
    for flow in ordered:
        if (
            groups
            and key_values[flow.flow_id] - key_values[groups[-1][-1].flow_id]
            <= tolerance
        ):
            groups[-1].append(flow)
        else:
            groups.append([flow])
    return groups
