"""Shortest remaining processing time (the policy PASE approximates).

Flows with smaller remaining size strictly preempt larger ones; equal
remaining sizes are tie-broken by arrival time (the paper's FCFS tie rule)
and, if they also arrived together, share fairly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.network.flow import Flow, FlowId
from repro.network.policies.base import RateAllocator, greedy_priority_fill
from repro.topology.base import LinkId

#: Two remaining sizes within this many bits count as a tie.
SIZE_TIE_TOLERANCE = 1.0


class SRPTAllocator(RateAllocator):
    """Strict smallest-remaining-first priority (SRPT / PASE)."""

    name = "srpt"

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        # Order by (remaining, arrival, id); merge exact remaining+arrival
        # ties into fair-shared groups.
        ordered = sorted(
            flows, key=lambda f: (f.remaining, f.arrival_time, f.flow_id)
        )
        groups: List[List[Flow]] = []
        for flow in ordered:
            if groups:
                prev = groups[-1][-1]
                if (
                    abs(flow.remaining - prev.remaining) <= SIZE_TIE_TOLERANCE
                    and flow.arrival_time == prev.arrival_time
                ):
                    groups[-1].append(flow)
                    continue
            groups.append([flow])
        return greedy_priority_fill(groups, capacities)
