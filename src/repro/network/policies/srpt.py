"""Shortest remaining processing time (the policy PASE approximates).

Flows with smaller remaining size strictly preempt larger ones; equal
remaining sizes are tie-broken by arrival time (the paper's FCFS tie rule)
and, if they also arrived together, share fairly.

Like LAS, the priority key (remaining bits) evolves between events: a
large flow transmitting at full rate can drop below a stalled smaller
flow's remaining size.  :meth:`SRPTAllocator.next_change_hint` reports the
earliest such remaining-size crossing so the fabric re-allocates exactly
then instead of letting the stale order persist until the next arrival or
completion.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.network.flow import Flow, FlowId
from repro.network.policies.base import (
    LinkMembershipMixin,
    RateAllocator,
    earliest_adjacent_crossing,
)
from repro.topology.base import LinkId

#: Two remaining sizes within this many bits count as a tie.
SIZE_TIE_TOLERANCE = 1.0


class SRPTAllocator(LinkMembershipMixin, RateAllocator):
    """Strict smallest-remaining-first priority (SRPT / PASE)."""

    name = "srpt"
    incremental_safe = True

    def _groups(self, flows: Sequence[Flow]) -> List[List[Flow]]:
        # Order by (remaining, arrival, id); merge exact remaining+arrival
        # ties into fair-shared groups.
        ordered = sorted(
            flows, key=lambda f: (f.remaining, f.arrival_time, f.flow_id)
        )
        groups: List[List[Flow]] = []
        for flow in ordered:
            if groups:
                prev = groups[-1][-1]
                if (
                    abs(flow.remaining - prev.remaining) <= SIZE_TIE_TOLERANCE
                    and flow.arrival_time == prev.arrival_time
                ):
                    groups[-1].append(flow)
                    continue
            groups.append([flow])
        return groups

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        return self._fill(self._groups(flows), capacities)

    def next_change_hint(
        self,
        flows: Sequence[Flow],
        rates: Mapping[FlowId, float],
    ) -> Optional[float]:
        """Earliest time a larger-remaining flow undercuts a smaller one.

        Remaining size shrinks at the flow's rate, so a pair converges
        when the larger-remaining flow is transmitting faster.  Crossings
        within the tie tolerance are not tracked (sub-bit fidelity).  No
        event storm is possible: once an order swap is applied, the
        faster flow holds the higher priority, so the pair diverges.
        """
        return earliest_adjacent_crossing(
            flows,
            rates,
            key=lambda f: f.remaining,
            velocity=lambda rate: -rate,
            tolerance=SIZE_TIE_TOLERANCE,
            members_on=self._members_on,
        )
