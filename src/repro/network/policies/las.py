"""Least attained service (the policy L2DCT approximates).

Flows that have transferred the fewest bits get strict priority; ties share
fairly.  In the fluid model this is foreground-background (FB) scheduling:
a newly arrived flow runs alone until its attained service catches up with
the next-lowest attained flow, after which they progress together.

Because the priority key (attained bits) evolves *between* events, LAS is
the one policy whose allocation can change with no arrival or completion.
:meth:`LASAllocator.next_change_hint` computes the earliest attained-service
crossing so the fabric can re-allocate exactly then.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.network.flow import Flow, FlowId
from repro.network.policies.base import (
    RATE_EPSILON,
    RateAllocator,
    greedy_priority_fill,
    group_by_key,
)
from repro.topology.base import LinkId

#: Attained-service values within this many bits are one priority group.
ATTAINED_TIE_TOLERANCE = 1.0


class LASAllocator(RateAllocator):
    """Strict least-attained-service priority (LAS / L2DCT)."""

    name = "las"

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        keys = {flow.flow_id: flow.attained for flow in flows}
        groups = group_by_key(flows, keys, tolerance=ATTAINED_TIE_TOLERANCE)
        return greedy_priority_fill(groups, capacities)

    def next_change_hint(
        self,
        flows: Sequence[Flow],
        rates: Mapping[FlowId, float],
    ) -> Optional[float]:
        """Earliest time a lower-attained flow catches a higher-attained one.

        For linear trajectories the first crossing is always between flows
        that are adjacent in attained order on some shared link, so per link
        we sort by attained and check adjacent pairs.
        """
        by_link: Dict[LinkId, List[Flow]] = {}
        for flow in flows:
            for link_id in flow.path:
                by_link.setdefault(link_id, []).append(flow)

        best: Optional[float] = None
        for members in by_link.values():
            if len(members) < 2:
                continue
            members.sort(key=lambda f: (f.attained, f.flow_id))
            for lower, upper in zip(members, members[1:]):
                gap = upper.attained - lower.attained
                if gap <= ATTAINED_TIE_TOLERANCE:
                    continue  # already one group
                closing = rates.get(lower.flow_id, 0.0) - rates.get(
                    upper.flow_id, 0.0
                )
                if closing <= RATE_EPSILON:
                    continue  # not converging
                dt = gap / closing
                if best is None or dt < best:
                    best = dt
        return best
