"""Least attained service (the policy L2DCT approximates).

Flows that have transferred the fewest bits get strict priority; ties share
fairly.  In the fluid model this is foreground-background (FB) scheduling:
a newly arrived flow runs alone until its attained service catches up with
the next-lowest attained flow, after which they progress together.

Because the priority key (attained bits) evolves *between* events, LAS is
a policy whose allocation can change with no arrival or completion.
:meth:`LASAllocator.next_change_hint` computes the earliest attained-service
crossing so the fabric can re-allocate exactly then.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.network.flow import Flow, FlowId
from repro.network.policies.base import (
    LinkMembershipMixin,
    RateAllocator,
    earliest_adjacent_crossing,
    group_by_key,
)
from repro.topology.base import LinkId

#: Attained-service values within this many bits are one priority group.
ATTAINED_TIE_TOLERANCE = 1.0


class LASAllocator(LinkMembershipMixin, RateAllocator):
    """Strict least-attained-service priority (LAS / L2DCT)."""

    name = "las"
    incremental_safe = True

    def _groups(self, flows: Sequence[Flow]):
        keys = {flow.flow_id: flow.attained for flow in flows}
        return group_by_key(flows, keys, tolerance=ATTAINED_TIE_TOLERANCE)

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        return self._fill(self._groups(flows), capacities)

    def next_change_hint(
        self,
        flows: Sequence[Flow],
        rates: Mapping[FlowId, float],
    ) -> Optional[float]:
        """Earliest time a lower-attained flow catches a higher-attained one.

        Attained service grows at the flow's rate, so a pair converges when
        the lower-attained flow is transmitting faster.  Uses the tracked
        per-link member lists when attached to a fabric.
        """
        return earliest_adjacent_crossing(
            flows,
            rates,
            key=lambda f: f.attained,
            velocity=lambda rate: rate,
            tolerance=ATTAINED_TIE_TOLERANCE,
            members_on=self._members_on,
        )
