"""Name-based registry of flow scheduling policies.

Experiments select policies by name (``"fair"``, ``"fcfs"``, ``"las"``,
``"srpt"``); the registry also maps the paper's transport names (DCTCP,
L2DCT, PASE) onto the policies they approximate.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigError
from repro.network.policies.base import RateAllocator
from repro.network.policies.fair import FairAllocator
from repro.network.policies.fcfs import FCFSAllocator
from repro.network.policies.las import LASAllocator
from repro.network.policies.srpt import SRPTAllocator

_FACTORIES: Dict[str, Callable[[], RateAllocator]] = {
    "fair": FairAllocator,
    "fcfs": FCFSAllocator,
    "las": LASAllocator,
    "srpt": SRPTAllocator,
    # Paper transport names -> policies they approximate (Table 1 / §6.1).
    "dctcp": FairAllocator,
    "l2dct": LASAllocator,
    "pase": SRPTAllocator,
}


def register_policy(name: str, factory: Callable[[], RateAllocator]) -> None:
    """Register a custom scheduling policy under ``name`` (lowercased)."""
    _FACTORIES[name.lower()] = factory


def make_allocator(
    name: str, backend: Optional[str] = None
) -> RateAllocator:
    """Instantiate the allocator registered under ``name``.

    ``backend`` selects the priority-fill compute backend (``"python"``
    or ``"numpy"``); ``None`` defers to ``REPRO_ALLOC_BACKEND`` (default
    ``"python"``).  Both backends produce bit-identical allocations, so
    the knob trades speed only.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ConfigError(
            f"unknown network scheduling policy {name!r}; known: {known}"
        ) from None
    allocator = factory()
    allocator.use_backend(backend)
    return allocator


def available_policies() -> tuple:
    """All registered policy names, sorted."""
    return tuple(sorted(_FACTORIES))
