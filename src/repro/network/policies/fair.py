"""Fair sharing (the policy DCTCP approximates).

Every active flow gets its max-min fair share of the network: progressive
filling over all links.  This is the paper's model of the default transport
in commercial datacenters.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.network.flow import Flow, FlowId
from repro.network.policies.base import RateAllocator
from repro.topology.base import LinkId


class FairAllocator(RateAllocator):
    """Max-min fair sharing across all flows (DCTCP / Fair)."""

    name = "fair"
    incremental_safe = True

    def _groups(self, flows: Sequence[Flow]) -> List[List[Flow]]:
        # Canonical flow-id order makes the allocation invariant to the
        # caller's input permutation: water-fill's epsilon tie-break on
        # near-equal bottleneck shares is otherwise input-order sensitive.
        return [sorted(flows, key=lambda f: f.flow_id)]

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        return self._fill(self._groups(flows), capacities)
