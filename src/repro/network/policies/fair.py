"""Fair sharing (the policy DCTCP approximates).

Every active flow gets its max-min fair share of the network: progressive
filling over all links.  This is the paper's model of the default transport
in commercial datacenters.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.network.flow import Flow, FlowId
from repro.network.policies.base import RateAllocator, water_fill
from repro.topology.base import LinkId


class FairAllocator(RateAllocator):
    """Max-min fair sharing across all flows (DCTCP / Fair)."""

    name = "fair"
    incremental_safe = True

    def allocate(
        self,
        flows: Sequence[Flow],
        capacities: Mapping[LinkId, float],
    ) -> Dict[FlowId, float]:
        # Canonical flow-id order makes the allocation invariant to the
        # caller's input permutation: water-fill's epsilon tie-break on
        # near-equal bottleneck shares is otherwise input-order sensitive.
        ordered = sorted(flows, key=lambda f: f.flow_id)
        residual: Dict[LinkId, float] = dict(capacities)
        rates: Dict[FlowId, float] = {}
        water_fill(ordered, residual, rates)
        return rates
