"""Datacenter topologies: graph model, routing, and concrete fabrics."""

from repro.topology.base import Link, LinkId, NodeId, Path, TopoNode, Topology
from repro.topology.fabrics import fat_tree, single_rack, single_switch, three_tier_clos
from repro.topology.routing import Router

__all__ = [
    "Topology",
    "TopoNode",
    "Link",
    "Path",
    "NodeId",
    "LinkId",
    "Router",
    "single_switch",
    "single_rack",
    "three_tier_clos",
    "fat_tree",
]
