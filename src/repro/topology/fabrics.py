"""Concrete topologies used in the paper's evaluation.

* :func:`single_switch` — the abstraction NEAT reasons over (§3): every host
  hangs off one big switch, only edge links can be bottlenecks.
* :func:`three_tier_clos` — the 160-host multi-rooted folded Clos of §6.1
  (1 Gbps edge, 10 Gbps aggregation/core, ~300 us host-to-host RTT via core).
* :func:`single_rack` — the 10-node testbed of §6.4 (1 Gbps, one switch).
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import TopoNode, Topology
from repro.units import gbps, microseconds

#: Default per-link propagation delay yielding ~300us host-to-host RTT via
#: the core of a 3-tier fabric (6 links each way -> 12 * 25us = 300us).
DEFAULT_LINK_DELAY = microseconds(25)


def single_switch(
    num_hosts: int,
    *,
    edge_capacity: float = gbps(1),
    link_delay: float = microseconds(75),
    name: str = "single-switch",
) -> Topology:
    """Build a star topology: ``num_hosts`` hosts around one switch.

    All hosts are placed in rack 0 so locality-based policies see them as
    equidistant, matching the paper's single-switch abstraction.
    """
    if num_hosts < 1:
        raise TopologyError(f"need at least one host, got {num_hosts}")
    topo = Topology(name)
    topo.add_node(TopoNode("sw0", "switch"))
    for i in range(num_hosts):
        host = f"h{i:03d}"
        topo.add_node(TopoNode(host, "host", rack=0, pod=0))
        topo.add_duplex_link(
            host, "sw0", edge_capacity, is_edge=True, propagation_delay=link_delay
        )
    return topo


def single_rack(
    num_hosts: int = 10,
    *,
    edge_capacity: float = gbps(1),
    link_delay: float = microseconds(25),
    name: str = "single-rack",
) -> Topology:
    """The 10-machine testbed of §6.4: one ToR, 1 Gbps host links."""
    if num_hosts < 2:
        raise TopologyError(f"a rack needs at least two hosts, got {num_hosts}")
    topo = Topology(name)
    topo.add_node(TopoNode("tor0", "tor", rack=0, pod=0))
    for i in range(num_hosts):
        host = f"h{i:03d}"
        topo.add_node(TopoNode(host, "host", rack=0, pod=0))
        topo.add_duplex_link(
            host, "tor0", edge_capacity, is_edge=True, propagation_delay=link_delay
        )
    return topo


def fat_tree(
    k: int = 4,
    *,
    edge_capacity: float = gbps(1),
    fabric_capacity: float = gbps(1),
    link_delay: float = DEFAULT_LINK_DELAY,
    name: str = "",
) -> Topology:
    """Build a canonical k-ary fat-tree [Al-Fares et al., SIGCOMM'08].

    ``k`` pods, each with k/2 edge and k/2 aggregation switches; (k/2)^2
    core switches; (k/2)^2 * k hosts.  With equal capacities everywhere
    (the classic construction) the fabric is rearrangeably non-blocking.
    The paper cites this family ([38]) as the shape of its evaluation
    topology; :func:`three_tier_clos` is the parameterised variant used by
    the experiments, this builder is the textbook instance.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity k must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology(name or f"fat-tree-k{k}")
    for c in range(half * half):
        topo.add_node(TopoNode(f"core{c}", "core"))
    host_index = 0
    rack_index = 0
    for p in range(k):
        for a in range(half):
            agg = f"agg{p}_{a}"
            topo.add_node(TopoNode(agg, "agg", pod=p))
            # Aggregation switch a connects to cores [a*half, (a+1)*half).
            for c in range(a * half, (a + 1) * half):
                topo.add_duplex_link(
                    agg, f"core{c}", fabric_capacity,
                    propagation_delay=link_delay,
                )
        for e in range(half):
            tor = f"tor{rack_index}"
            topo.add_node(TopoNode(tor, "tor", rack=rack_index, pod=p))
            for a in range(half):
                topo.add_duplex_link(
                    tor, f"agg{p}_{a}", fabric_capacity,
                    propagation_delay=link_delay,
                )
            for _ in range(half):
                host = f"h{host_index:03d}"
                topo.add_node(
                    TopoNode(host, "host", rack=rack_index, pod=p)
                )
                topo.add_duplex_link(
                    host, tor, edge_capacity, is_edge=True,
                    propagation_delay=link_delay,
                )
                host_index += 1
            rack_index += 1
    return topo


def three_tier_clos(
    *,
    pods: int = 4,
    racks_per_pod: int = 4,
    hosts_per_rack: int = 10,
    aggs_per_pod: int = 2,
    cores: int = 4,
    edge_capacity: float = gbps(1),
    fabric_capacity: float = gbps(10),
    oversubscription: float = 1.0,
    link_delay: float = DEFAULT_LINK_DELAY,
    name: str = "clos-3tier",
) -> Topology:
    """Build the folded-Clos fabric of §6.1.

    Defaults give 4 * 4 * 10 = 160 hosts, 1 Gbps edge and 10 Gbps fabric
    links, matching the paper's simulation setup.  Every ToR connects to all
    aggregation switches in its pod; every aggregation switch connects to
    all cores (multi-rooted).

    The fabric is rearrangeably non-blocking for these defaults (each ToR
    has 10 Gbps of host capacity below and 2*10 Gbps upward), consistent
    with NEAT's assumption that only edge links bottleneck.  Pass
    ``oversubscription > 1`` to divide all fabric (non-edge) capacities by
    that factor — this is what makes locality matter, and is how the
    comparative study (Figure 3) exposes minDist's advantage under SRPT.
    """
    if min(pods, racks_per_pod, hosts_per_rack, aggs_per_pod, cores) < 1:
        raise TopologyError("all Clos dimensions must be >= 1")
    if oversubscription < 1.0:
        raise TopologyError(
            f"oversubscription must be >= 1, got {oversubscription!r}"
        )
    fabric_capacity = fabric_capacity / oversubscription
    topo = Topology(name)
    for c in range(cores):
        topo.add_node(TopoNode(f"core{c}", "core"))
    host_index = 0
    rack_index = 0
    for p in range(pods):
        for a in range(aggs_per_pod):
            agg = f"agg{p}_{a}"
            topo.add_node(TopoNode(agg, "agg", pod=p))
            for c in range(cores):
                topo.add_duplex_link(
                    agg, f"core{c}", fabric_capacity, propagation_delay=link_delay
                )
        for r in range(racks_per_pod):
            tor = f"tor{rack_index}"
            topo.add_node(TopoNode(tor, "tor", rack=rack_index, pod=p))
            for a in range(aggs_per_pod):
                topo.add_duplex_link(
                    tor, f"agg{p}_{a}", fabric_capacity, propagation_delay=link_delay
                )
            for _ in range(hosts_per_rack):
                host = f"h{host_index:03d}"
                topo.add_node(TopoNode(host, "host", rack=rack_index, pod=p))
                topo.add_duplex_link(
                    host, tor, edge_capacity, is_edge=True,
                    propagation_delay=link_delay,
                )
                host_index += 1
            rack_index += 1
    return topo
