"""Topology model: hosts, switches, directed links, and paths.

The network is a directed graph.  Hosts run tasks; switches only forward.
Each physical cable is modelled as two directed :class:`Link` objects (one
per direction) because flow scheduling contends per direction.

The NEAT paper abstracts the network as a single switch and treats only
*edge links* (host uplink/downlink) as bottlenecks; this module supports
both that abstraction and full multi-tier fabrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TopologyError

NodeId = str
LinkId = str


@dataclass(frozen=True)
class TopoNode:
    """A vertex in the topology graph.

    Attributes:
        node_id: unique identifier, e.g. ``"h013"`` or ``"tor3"``.
        kind: ``"host"``, ``"tor"``, ``"agg"``, ``"core"``, or ``"switch"``.
        rack: rack index for hosts and ToR switches (``None`` otherwise).
        pod: pod index for multi-tier fabrics (``None`` otherwise).
    """

    node_id: NodeId
    kind: str
    rack: Optional[int] = None
    pod: Optional[int] = None

    @property
    def is_host(self) -> bool:
        return self.kind == "host"


@dataclass
class Link:
    """A directed link with fixed capacity.

    Attributes:
        link_id: unique identifier, e.g. ``"h013->tor3"``.
        src: source node id.
        dst: destination node id.
        capacity: bits per second.
        is_edge: True for host<->ToR links (the links NEAT predicts on).
        propagation_delay: one-way propagation latency in seconds.
    """

    link_id: LinkId
    src: NodeId
    dst: NodeId
    capacity: float
    is_edge: bool = False
    propagation_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise TopologyError(
                f"link {self.link_id!r} must have positive capacity, "
                f"got {self.capacity!r}"
            )


@dataclass(frozen=True)
class Path:
    """An ordered sequence of links from a source host to a destination host."""

    src: NodeId
    dst: NodeId
    links: Tuple[LinkId, ...]

    @property
    def hop_count(self) -> int:
        """Number of links traversed (0 for a host talking to itself)."""
        return len(self.links)


class Topology:
    """A directed network graph with host/switch metadata.

    Subclasses (Clos, single-switch, rack) populate nodes and links in their
    constructors; routing lives in :mod:`repro.topology.routing`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: Dict[NodeId, TopoNode] = {}
        self._links: Dict[LinkId, Link] = {}
        self._adjacency: Dict[NodeId, List[LinkId]] = {}
        self._hosts: List[NodeId] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: TopoNode) -> None:
        if node.node_id in self._nodes:
            raise TopologyError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._adjacency[node.node_id] = []
        if node.is_host:
            self._hosts.append(node.node_id)

    def add_link(
        self,
        src: NodeId,
        dst: NodeId,
        capacity: float,
        *,
        is_edge: bool = False,
        propagation_delay: float = 0.0,
    ) -> Link:
        """Add one directed link and register it in the adjacency index."""
        for endpoint in (src, dst):
            if endpoint not in self._nodes:
                raise TopologyError(f"unknown node {endpoint!r}")
        link_id = f"{src}->{dst}"
        if link_id in self._links:
            raise TopologyError(f"duplicate link {link_id!r}")
        link = Link(
            link_id=link_id,
            src=src,
            dst=dst,
            capacity=capacity,
            is_edge=is_edge,
            propagation_delay=propagation_delay,
        )
        self._links[link_id] = link
        self._adjacency[src].append(link_id)
        return link

    def add_duplex_link(
        self,
        a: NodeId,
        b: NodeId,
        capacity: float,
        *,
        is_edge: bool = False,
        propagation_delay: float = 0.0,
    ) -> Tuple[Link, Link]:
        """Add both directions of a cable with identical properties."""
        forward = self.add_link(
            a, b, capacity, is_edge=is_edge, propagation_delay=propagation_delay
        )
        backward = self.add_link(
            b, a, capacity, is_edge=is_edge, propagation_delay=propagation_delay
        )
        return forward, backward

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def hosts(self) -> Sequence[NodeId]:
        """All host node ids, in creation order."""
        return tuple(self._hosts)

    def node(self, node_id: NodeId) -> TopoNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def link(self, link_id: LinkId) -> Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise TopologyError(f"unknown link {link_id!r}") from None

    def links(self) -> Iterable[Link]:
        return self._links.values()

    def nodes(self) -> Iterable[TopoNode]:
        return self._nodes.values()

    def out_links(self, node_id: NodeId) -> Sequence[LinkId]:
        try:
            return tuple(self._adjacency[node_id])
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def host_uplink(self, host: NodeId) -> Link:
        """The edge link leaving a host (host -> ToR)."""
        node = self.node(host)
        if not node.is_host:
            raise TopologyError(f"{host!r} is not a host")
        for link_id in self._adjacency[host]:
            link = self._links[link_id]
            if link.is_edge:
                return link
        raise TopologyError(f"host {host!r} has no edge uplink")

    def host_downlink(self, host: NodeId) -> Link:
        """The edge link entering a host (ToR -> host)."""
        node = self.node(host)
        if not node.is_host:
            raise TopologyError(f"{host!r} is not a host")
        for link in self._links.values():
            if link.dst == host and link.is_edge:
                return link
        raise TopologyError(f"host {host!r} has no edge downlink")

    def edge_links(self) -> List[Link]:
        """All edge (host<->ToR) links."""
        return [link for link in self._links.values() if link.is_edge]

    # ------------------------------------------------------------------
    # Distance
    # ------------------------------------------------------------------
    def same_rack(self, a: NodeId, b: NodeId) -> bool:
        na, nb = self.node(a), self.node(b)
        return na.rack is not None and na.rack == nb.rack

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Locality distance used by the minDist placement policy.

        0 = same host, 2 = same rack, 4 = same pod, 6 = cross pod.  This is
        the hop count of the shortest path in a three-tier fabric; for flat
        topologies (single switch / single rack) only 0 and 2 occur.
        """
        if a == b:
            return 0
        na, nb = self.node(a), self.node(b)
        if na.rack is not None and na.rack == nb.rack:
            return 2
        if na.pod is not None and na.pod == nb.pod:
            return 4
        return 6

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, hosts={len(self._hosts)}, "
            f"nodes={len(self._nodes)}, links={len(self._links)})"
        )
