"""Shortest-path routing with deterministic ECMP.

The macro experiments use a folded Clos where many equal-cost paths exist
between hosts in different racks.  We precompute hop-count shortest paths
with BFS and, when several equal-cost next hops exist, pick one by hashing
the (src, dst) pair — the standard static-ECMP model, deterministic across
runs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import RoutingError
from repro.sim.randomness import hash_seed
from repro.topology.base import LinkId, NodeId, Path, Topology


class Router:
    """Computes and caches host-to-host paths over a topology."""

    def __init__(self, topology: Topology, *, ecmp_seed: int = 0) -> None:
        self._topology = topology
        self._ecmp_seed = ecmp_seed
        self._path_cache: Dict[Tuple[NodeId, NodeId], Path] = {}
        # hop-distance table per destination, built lazily
        self._dist_cache: Dict[NodeId, Dict[NodeId, int]] = {}
        # links excluded from routing (fault injection); paths are
        # recomputed from scratch when this set changes
        self._failed_links: Set[LinkId] = set()

    @property
    def failed_links(self) -> FrozenSet[LinkId]:
        """Links currently excluded from path computation."""
        return frozenset(self._failed_links)

    def fail_link(self, link_id: LinkId) -> None:
        """Exclude ``link_id`` from all future paths and drop stale caches."""
        if link_id in self._failed_links:
            return
        self._failed_links.add(link_id)
        self._path_cache.clear()
        self._dist_cache.clear()

    def path(self, src: NodeId, dst: NodeId) -> Path:
        """Return the (cached) routed path from ``src`` to ``dst``.

        A host sending to itself gets a zero-link path: the data never
        leaves the machine, so no network resources are consumed (this is
        how data locality manifests — a local read has zero FCT).
        """
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            path = Path(src=src, dst=dst, links=())
        else:
            path = self._compute_path(src, dst)
        self._path_cache[key] = path
        return path

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _distances_to(self, dst: NodeId) -> Dict[NodeId, int]:
        """BFS distance (in links) from every node to ``dst``."""
        cached = self._dist_cache.get(dst)
        if cached is not None:
            return cached
        topo = self._topology
        # Reverse BFS: walk incoming links.  Build a reverse adjacency once.
        reverse: Dict[NodeId, List[NodeId]] = {}
        for link in topo.links():
            if link.link_id in self._failed_links:
                continue
            reverse.setdefault(link.dst, []).append(link.src)
        dist: Dict[NodeId, int] = {dst: 0}
        queue = deque([dst])
        while queue:
            node = queue.popleft()
            for prev in reverse.get(node, ()):
                if prev not in dist:
                    dist[prev] = dist[node] + 1
                    queue.append(prev)
        self._dist_cache[dst] = dist
        return dist

    def _compute_path(self, src: NodeId, dst: NodeId) -> Path:
        topo = self._topology
        dist = self._distances_to(dst)
        if src not in dist:
            raise RoutingError(f"no route from {src!r} to {dst!r}")
        links: List[LinkId] = []
        node = src
        # ECMP hash is fixed per (src, dst) pair so a flow uses one path.
        choice_hash = hash_seed(self._ecmp_seed, f"{src}|{dst}")
        depth = 0
        while node != dst:
            candidates = [
                link_id
                for link_id in topo.out_links(node)
                if link_id not in self._failed_links
                and topo.link(link_id).dst in dist
                and dist[topo.link(link_id).dst] == dist[node] - 1
            ]
            if not candidates:
                raise RoutingError(
                    f"routing dead-end at {node!r} towards {dst!r}"
                )
            candidates.sort()
            pick = candidates[(choice_hash >> (depth * 4)) % len(candidates)]
            links.append(pick)
            node = topo.link(pick).dst
            depth += 1
            if depth > 64:
                raise RoutingError(f"path from {src!r} to {dst!r} too long")
        return Path(src=src, dst=dst, links=tuple(links))
