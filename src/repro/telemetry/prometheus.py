"""Prometheus text-exposition rendering of a metrics snapshot.

Converts a :meth:`~repro.telemetry.registry.MetricsRegistry.as_dict`
snapshot (or a ``--metrics-out`` JSON file, which is that snapshot plus
extras) into the Prometheus text format, so a saved run's metrics can be
pushed to a Pushgateway or scraped from a file exporter without any
Prometheus client library.

Mapping:

* counters  -> ``<prefix><name>_total`` (TYPE counter)
* gauges    -> ``<prefix><name>`` (TYPE gauge)
* timers    -> ``<prefix><name>_seconds_total`` + ``<prefix><name>_calls_total``
* histograms-> TYPE histogram: real cumulative ``_bucket{le="..."}``
  series rendered from the registry's log-bucketed quantile sketch
  (closed by ``le="+Inf"``), plus ``_sum`` / ``_count``.  Legacy
  summaries without a serialized sketch fall back to TYPE summary
  with ``{quantile="0.5"|"0.95"}`` series (or bare sum/count when even
  quantiles are missing).
* profiler  -> ``<prefix>span_*`` series labelled by flame path, when the
  snapshot carries a ``profile`` section (``--profile`` runs do)

Metric names are sanitised to the Prometheus charset (dots become
underscores); label values are escaped per the exposition format.
"""

from __future__ import annotations

import re
from typing import Dict, List

__all__ = ["render_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _name(prefix: str, raw: str, suffix: str = "") -> str:
    base = _NAME_RE.sub("_", raw)
    if base and base[0].isdigit():
        base = "_" + base
    return f"{prefix}{base}{suffix}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _num(value) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_prometheus(snapshot: Dict, *, prefix: str = "repro_") -> str:
    """Render a metrics snapshot in Prometheus text exposition format."""
    lines: List[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    # Degraded-operation and placement-service counters are exported
    # zero-defaulted whenever the snapshot carries metrics at all: an
    # absent series cannot be alerted on, a zero one can.  (A fully
    # empty snapshot — metrics were off — still renders empty.)
    from repro.telemetry.report import (
        DEGRADED_COUNTERS,
        OBSERVABILITY_COUNTERS,
        SERVICE_COUNTERS,
        SERVICE_GAUGES,
    )

    counters = dict(snapshot.get("counters", {}))
    gauges = dict(snapshot.get("gauges", {}))
    if counters:
        for raw in (
            DEGRADED_COUNTERS + SERVICE_COUNTERS + OBSERVABILITY_COUNTERS
        ):
            counters.setdefault(raw, 0)
        for raw in SERVICE_GAUGES:
            gauges.setdefault(raw, 0)
    for raw, value in counters.items():
        name = _name(prefix, raw, "_total")
        header(name, "counter", f"counter {raw}")
        lines.append(f"{name} {_num(value)}")

    for raw, value in gauges.items():
        name = _name(prefix, raw)
        header(name, "gauge", f"gauge {raw}")
        lines.append(f"{name} {_num(value)}")

    for raw, stats in snapshot.get("timers", {}).items():
        seconds = _name(prefix, raw, "_seconds_total")
        header(seconds, "counter", f"accumulated wall seconds in {raw}")
        lines.append(f"{seconds} {_num(stats.get('wall_seconds', 0.0))}")
        calls = _name(prefix, raw, "_calls_total")
        header(calls, "counter", f"timed calls of {raw}")
        lines.append(f"{calls} {_num(stats.get('calls', 0))}")

    for raw, summary in snapshot.get("histograms", {}).items():
        name = _name(prefix, raw)
        count = summary.get("count", 0)
        if "sketch" in summary:
            from repro.telemetry.timeseries import QuantileSketch

            sketch = QuantileSketch.from_dict(summary["sketch"])
            header(name, "histogram", f"histogram {raw}")
            for bound, cumulative in sketch.cumulative_buckets():
                lines.append(
                    f'{name}_bucket{{le="{_num(bound)}"}} {_num(cumulative)}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {_num(count)}')
            lines.append(f"{name}_sum {_num(sketch.total)}")
            lines.append(f"{name}_count {_num(count)}")
            continue
        header(name, "summary", f"histogram {raw}")
        if count:
            for quantile, key in (("0.5", "p50"), ("0.95", "p95")):
                if key in summary:
                    lines.append(
                        f'{name}{{quantile="{quantile}"}} '
                        f"{_num(summary[key])}"
                    )
            mean = summary.get("mean", 0.0)
            lines.append(f"{name}_sum {_num(mean * count)}")
        lines.append(f"{name}_count {_num(count)}")

    flame = snapshot.get("profile", {}).get("flame", {})
    if flame:
        calls_name = f"{prefix}span_calls_total"
        incl_name = f"{prefix}span_inclusive_seconds_total"
        excl_name = f"{prefix}span_exclusive_seconds_total"
        header(calls_name, "counter", "span entries per flame path")
        header(incl_name, "counter", "inclusive span seconds per flame path")
        header(excl_name, "counter", "exclusive span seconds per flame path")
        for path, stats in flame.items():
            label = f'{{path="{_escape_label(path)}"}}'
            lines.append(f"{calls_name}{label} {_num(stats['calls'])}")
            lines.append(
                f"{incl_name}{label} {_num(stats['inclusive_seconds'])}"
            )
            lines.append(
                f"{excl_name}{label} {_num(stats['exclusive_seconds'])}"
            )

    return "\n".join(lines) + ("\n" if lines else "")
