"""Hierarchical span profiler: attribute wall-clock to subsystems.

The profiler answers *where* the time of a run goes — allocator math vs.
component BFS vs. heap churn vs. predictor calls — which the flat
:class:`~repro.telemetry.registry.Timer` cannot: timers accumulate one
inclusive number per subsystem, while spans form a tree (``engine.event``
contains ``placement.place`` contains ``predictor.fct``) whose per-node
*exclusive* time is what a flame graph renders.

Usage::

    profiler = SpanProfiler()
    with profiler.span("fabric.recompute"):
        with profiler.span("alloc.fair"):
            ...
    profiler.as_dict()  # {"labels": {...}, "flame": {...}}

Determinism contract: spans record **wall-clock only** and never enter
simulation state, the metrics used by placement, or the deterministic
JSONL trace — a profiled run produces byte-identical completion records
and traces to an unprofiled one (asserted by the differential tests).

Disabled cost: the shared :data:`NULL_PROFILER` answers ``enabled =
False``; instrumented hot paths pre-bind ``profiler if profiler.enabled
else None`` and guard with one ``is not None`` check, exactly like the
metrics pattern, so the off path never allocates a context manager.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SpanProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "current_profiler",
    "set_current_profiler",
    "render_profile",
]

#: Separator between labels in a flattened span path ("a;b;c").
PATH_SEP = ";"


class _SpanStats:
    """Accumulated timing of one node of the span tree."""

    __slots__ = ("calls", "inclusive", "child")

    def __init__(self) -> None:
        self.calls = 0
        self.inclusive = 0.0
        self.child = 0.0

    @property
    def exclusive(self) -> float:
        """Inclusive time minus the time spent in child spans."""
        return max(self.inclusive - self.child, 0.0)


class _Span:
    """One active span (context manager handed out by :meth:`span`)."""

    __slots__ = ("_profiler", "_label", "_start")

    def __init__(self, profiler: "SpanProfiler", label: str) -> None:
        self._profiler = profiler
        self._label = label
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._profiler._push(self._label)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._profiler._pop(perf_counter() - self._start)


class SpanProfiler:
    """Parent/child span tree with per-path call counts and wall time.

    Spans are keyed by their full path from the root (a tuple of labels),
    so the same label under two different parents is two tree nodes —
    that is what makes the flame-style aggregation meaningful.  The tree
    is bounded by construction: the instrumented stack has a handful of
    nesting levels, and labels are drawn from a small fixed vocabulary.
    """

    enabled = True

    __slots__ = ("_stats", "_stack")

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, ...], _SpanStats] = {}
        # Each frame is [path, child_seconds]: the child accumulator rides
        # on the stack so a parent still open when its children pop does
        # not lose their time (its stats node is only created on pop).
        self._stack: List[list] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, label: str) -> _Span:
        """Context manager timing one section under the current parent."""
        return _Span(self, label)

    def _push(self, label: str) -> None:
        parent = self._stack[-1][0] if self._stack else ()
        self._stack.append([parent + (label,), 0.0])

    def _pop(self, elapsed: float) -> None:
        path, child_seconds = self._stack.pop()
        stats = self._stats.get(path)
        if stats is None:
            stats = self._stats[path] = _SpanStats()
        stats.calls += 1
        stats.inclusive += elapsed
        stats.child += child_seconds
        if self._stack:
            self._stack[-1][1] += elapsed

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Current nesting depth (0 when no span is open)."""
        return len(self._stack)

    def paths(self) -> List[Tuple[str, ...]]:
        """Every recorded span path, sorted."""
        return sorted(self._stats)

    def stats(self, path: Iterable[str]) -> Optional[_SpanStats]:
        """Stats for one exact path (``None`` if never recorded)."""
        return self._stats.get(tuple(path))

    def label_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-label aggregation across every position in the tree.

        A label's *inclusive* total only counts tree nodes that are not
        nested under the same label (recursion would double-count);
        *exclusive* totals sum everywhere.
        """
        totals: Dict[str, Dict[str, float]] = {}
        for path, stats in self._stats.items():
            label = path[-1]
            into = totals.setdefault(
                label,
                {"calls": 0, "inclusive_seconds": 0.0, "exclusive_seconds": 0.0},
            )
            into["calls"] += stats.calls
            into["exclusive_seconds"] += stats.exclusive
            if label not in path[:-1]:
                into["inclusive_seconds"] += stats.inclusive
        return {label: totals[label] for label in sorted(totals)}

    def as_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """JSON-safe snapshot: flame (path-keyed) plus per-label totals."""
        flame = {}
        for path in sorted(self._stats):
            stats = self._stats[path]
            flame[PATH_SEP.join(path)] = {
                "calls": stats.calls,
                "inclusive_seconds": stats.inclusive,
                "exclusive_seconds": stats.exclusive,
            }
        return {"flame": flame, "labels": self.label_totals()}


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullProfiler(SpanProfiler):
    """Disabled profiler: hands out one shared no-op span."""

    enabled = False

    __slots__ = ()

    def span(self, label: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN


#: Shared disabled profiler (the default everywhere).
NULL_PROFILER = NullProfiler()

#: Process-local ambient profiler.  Campaign workers install one so the
#: cell implementations (which build their own Telemetry) inherit it and
#: the end-of-cell heartbeat can ship a real spans snapshot.
_CURRENT: SpanProfiler = NULL_PROFILER


def current_profiler() -> SpanProfiler:
    """The ambient profiler of this process (:data:`NULL_PROFILER` when
    nothing installed one)."""
    return _CURRENT


def set_current_profiler(profiler: Optional[SpanProfiler]) -> SpanProfiler:
    """Install ``profiler`` as this process's ambient profiler.

    Returns the previous one so callers can restore it; ``None`` resets
    to :data:`NULL_PROFILER`.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = profiler if profiler is not None else NULL_PROFILER
    return previous


def render_profile(snapshot: Dict, *, indent: str = "  ") -> str:
    """Render a :meth:`SpanProfiler.as_dict` snapshot as an aligned tree.

    One line per span path, indented by depth, with call count and
    inclusive/exclusive milliseconds — the text form of a flame graph.
    """
    flame = snapshot.get("flame", {})
    if not flame:
        return "(no spans recorded)"
    paths = sorted(tuple(key.split(PATH_SEP)) for key in flame)
    total = sum(
        flame[PATH_SEP.join(p)]["inclusive_seconds"]
        for p in paths
        if len(p) == 1
    )
    names = [indent * (len(p) - 1) + p[-1] for p in paths]
    width = max(len(n) for n in names)
    lines = []
    for name, path in zip(names, paths):
        stats = flame[PATH_SEP.join(path)]
        share = (
            f" {100.0 * stats['inclusive_seconds'] / total:5.1f}%"
            if total > 0
            else ""
        )
        lines.append(
            f"{name:<{width}}  calls={stats['calls']:<8d}"
            f" incl={stats['inclusive_seconds'] * 1e3:10.3f} ms"
            f" excl={stats['exclusive_seconds'] * 1e3:10.3f} ms{share}"
        )
    return "\n".join(lines)
