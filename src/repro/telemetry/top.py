"""``repro top``: a live terminal dashboard over a status stream.

Renders one frame from the status JSONL that ``repro serve --status``
(or a campaign supervisor) appends to: per-cell progress with decision
rates, the SLO burn-rate table from the latest heartbeat, and the most
recent alert/stall transitions.  The CLI loop in :mod:`repro.__main__`
re-reads the file and redraws at a wall-clock interval; everything here
is a pure function of the records, so ``--once`` frames are testable.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.campaign.status import SETTLED_STATES, summarize_status

__all__ = ["render_top", "stream_settled"]

#: How many recent alert/stall transitions the frame shows.
RECENT_EVENTS = 5


def _fmt_burn(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"


def _cell_rates(records: List[Dict]) -> Dict[int, float]:
    """Decisions per simulated second between each cell's last two
    heartbeats (0 when fewer than two carry the fields)."""
    last: Dict[int, Dict] = {}
    rates: Dict[int, float] = {}
    for rec in records:
        if rec.get("record") != "cell" or "cell" not in rec:
            continue
        if rec.get("sim_time") is None or rec.get("decisions") is None:
            continue
        index = int(rec["cell"])
        prev = last.get(index)
        if prev is not None:
            dt = rec["sim_time"] - prev["sim_time"]
            if dt > 0:
                rates[index] = (rec["decisions"] - prev["decisions"]) / dt
        last[index] = rec
    return rates


def stream_settled(records: List[Dict]) -> bool:
    """True when every seen cell has settled (no more records expected)."""
    states: Dict[int, str] = {}
    ended = False
    for rec in records:
        if rec.get("record") == "cell" and "cell" in rec:
            states[int(rec["cell"])] = rec.get("state", "unknown")
        elif rec.get("record") == "campaign_end":
            ended = True
    if ended:
        return True
    return bool(states) and all(
        state in SETTLED_STATES for state in states.values()
    )


def render_top(
    records: List[Dict],
    *,
    now: Optional[float] = None,
    stall_threshold: float = 120.0,
) -> str:
    """Render one dashboard frame from a status record stream."""
    if now is None:
        now = time.time()
    summary = summarize_status(
        records, now=now, stall_threshold=stall_threshold
    )
    meta = summary["meta"]
    cells = summary["cells"]
    rates = _cell_rates(records)

    title = "repro top"
    if meta.get("campaign"):
        title += f" — {meta['campaign']}"
    title += "  (settled)" if stream_settled(records) else "  (live)"
    lines = [title, "=" * len(title)]

    # Per-cell progress: the serve loop emits one cell; campaigns many.
    latest: Dict[int, Dict] = {}
    for rec in records:
        if rec.get("record") == "cell" and "cell" in rec:
            latest[int(rec["cell"])] = rec
    if cells:
        lines.append("")
        lines.append(
            f"{'cell':>4}  {'state':<8} {'sim_t':>8}  {'decisions':>9}  "
            f"{'rate/s':>8}  {'queue':>5}  {'rejected':>8}"
        )
        for cell in cells:
            rec = latest.get(cell.cell, {})
            sim_t = rec.get("sim_time")
            flag = "  << STALLED" if cell.stalled else ""
            lines.append(
                f"{cell.cell:>4}  {cell.state:<8} "
                f"{(f'{sim_t:.1f}' if sim_t is not None else '-'):>8}  "
                f"{rec.get('decisions', '-'):>9}  "
                f"{rates.get(cell.cell, 0.0):>8.1f}  "
                f"{rec.get('queue_depth', '-'):>5}  "
                f"{rec.get('rejected', '-'):>8}{flag}"
            )

    # SLO burn table from the latest heartbeat that carried one.
    slo = None
    for rec in reversed(records):
        if rec.get("record") == "cell" and rec.get("slo") is not None:
            slo = rec["slo"]
            break
    if slo is not None:
        firing = set(slo.get("firing", []))
        lines.append("")
        lines.append(
            f"SLOs ({slo.get('specs', 0)} specs, "
            f"{slo.get('alerts_fired', 0)} alerts fired)"
        )
        burns = slo.get("burn", {})
        if burns:
            width = max(len(name) for name in burns)
            lines.append(
                f"  {'slo':<{width}}  {'burn_fast':>9}  {'burn_slow':>9}  state"
            )
            for name in sorted(burns):
                fast, slow = burns[name]
                state = "FIRING" if name in firing else "ok"
                lines.append(
                    f"  {name:<{width}}  {_fmt_burn(fast):>9}  "
                    f"{_fmt_burn(slow):>9}  {state}"
                )

    # Recent alert / stall transitions, newest last.
    recent = [
        rec
        for rec in records
        if rec.get("record") in ("slo_alert", "stall")
    ][-RECENT_EVENTS:]
    if recent:
        lines.append("")
        lines.append(f"recent events (last {len(recent)})")
        for rec in recent:
            if rec.get("record") == "slo_alert":
                lines.append(
                    f"  t={rec.get('t', 0):g} slo_alert {rec.get('state')}"
                    f" {rec.get('slo')} burn fast={_fmt_burn(rec.get('burn_fast'))}"
                    f" slow={_fmt_burn(rec.get('burn_slow'))}"
                )
            else:
                lines.append(
                    f"  t={rec.get('sim_time', 0):g} stall after "
                    f"{rec.get('stalled_for', 0):g}s idle, queue depth "
                    f"{rec.get('queue_depth', '-')}"
                )

    stalled = summary["stalled"]
    if stalled:
        lines.append("")
        lines.append(
            f"STALLED: {len(stalled)} cell(s): "
            + ", ".join(str(i) for i in stalled)
        )
    return "\n".join(lines)
