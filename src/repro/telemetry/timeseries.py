"""Fixed-memory windowed rollups: quantile sketches and a rollup store.

The live observability layer needs distribution summaries *while* a
session runs, at stream scale, without holding raw samples.  Two pieces
provide that:

* :class:`QuantileSketch` — a deterministic, mergeable, log-bucketed
  quantile sketch (DDSketch-family).  A value ``v`` lands in bucket
  ``ceil(log_gamma(v))`` with ``gamma = (1+alpha)/(1-alpha)``, which
  bounds the *relative* quantile error by ``alpha`` (default 1%).
  Memory is fixed: when the bucket map outgrows ``max_buckets`` the
  lowest-quantile buckets collapse together (tail accuracy is
  preserved, which is the end SLOs watch).  Sketches merge by bucket
  addition, so per-worker / per-bin sketches fold into window or
  campaign summaries exactly once.
* :class:`TimeseriesStore` — a ring of fixed-width **sim-time** bins
  over the metrics registry: counters roll up as per-bin deltas
  (windowed rates), gauges as per-bin last/max, histograms as per-bin
  *delta sketches* (the difference of two cumulative sketches is a
  sketch, since buckets only ever grow).  The store is pull-based: the
  service heartbeat (or campaign supervisor) calls :meth:`sample`
  and every window query — rate, windowed quantile, bad-event
  fraction — reads only the bins the window covers.

Determinism contract: everything here is keyed by simulated time and
derived from deterministic metric streams, so rollups, window queries,
and serialized stores are byte-identical across same-(seed, scenario)
runs.  Sampling never mutates the registry; enabling a store changes
no simulation records.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "QuantileSketch",
    "TimeseriesStore",
    "merge_sketches",
    "merge_rollups",
    "DEFAULT_ALPHA",
    "DEFAULT_MAX_BUCKETS",
]

#: Default relative accuracy of the sketch (1% quantile error).
DEFAULT_ALPHA = 0.01

#: Default bucket-map capacity before low-quantile collapsing kicks in.
#: 512 buckets at alpha=0.01 span ~4.4 decades of positive values.
DEFAULT_MAX_BUCKETS = 512

#: Values with magnitude at or below this land in the zero bucket.
_MIN_MAGNITUDE = 1e-12


class QuantileSketch:
    """Deterministic mergeable log-bucketed quantile sketch.

    Supports negative values via a mirrored bucket map; exact ``count``,
    ``sum``, ``min`` and ``max`` ride alongside the buckets, and quantile
    estimates are clamped into ``[min, max]`` so single-value and
    two-value sketches answer exactly.
    """

    __slots__ = (
        "alpha",
        "max_buckets",
        "count",
        "total",
        "min",
        "max",
        "_zero",
        "_pos",
        "_neg",
        "_gamma",
        "_log_gamma",
    )

    def __init__(
        self,
        *,
        alpha: float = DEFAULT_ALPHA,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        if max_buckets < 2:
            raise ValueError(f"max_buckets must be >= 2, got {max_buckets!r}")
        self.alpha = alpha
        self.max_buckets = max_buckets
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._zero = 0
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def add(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times)."""
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > _MIN_MAGNITUDE:
            key = self._key(value)
            self._pos[key] = self._pos.get(key, 0) + count
        elif value < -_MIN_MAGNITUDE:
            key = self._key(-value)
            self._neg[key] = self._neg.get(key, 0) + count
        else:
            self._zero += count
        self._collapse()

    def _collapse(self) -> None:
        """Fold lowest-quantile buckets together above ``max_buckets``.

        The low end is the least interesting to a tail SLO, so accuracy
        is sacrificed there: the most-negative bucket folds downward in
        the mirrored map, then the smallest positive buckets fold
        upward.  Deterministic given identical insertion history.
        """
        while len(self._pos) + len(self._neg) > self.max_buckets:
            if self._neg:
                keys = sorted(self._neg)
                # Most negative value = largest mirrored key.
                worst = keys[-1]
                if len(keys) > 1:
                    into = keys[-2]
                    self._neg[into] += self._neg.pop(worst)
                else:
                    # Lone negative bucket: fold into the zero bucket.
                    self._zero += self._neg.pop(worst)
            else:
                keys = sorted(self._pos)
                lowest = keys[0]
                into = keys[1]
                self._pos[into] += self._pos.pop(lowest)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _representative(self, key: int) -> float:
        # Geometric midpoint of (gamma^(key-1), gamma^key]: relative
        # error vs any member value is at most alpha.
        return 2.0 * self._gamma**key / (self._gamma + 1.0)

    def _ordered(self) -> Iterable[Tuple[float, int]]:
        """(representative value, count) in ascending value order."""
        for key in sorted(self._neg, reverse=True):
            yield -self._representative(key), self._neg[key]
        if self._zero:
            yield 0.0, self._zero
        for key in sorted(self._pos):
            yield self._representative(key), self._pos[key]

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 when the sketch is empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        # Nearest-rank (higher) convention: the smallest value whose
        # cumulative count covers ceil(q * n) observations.  For tiny n
        # this biases toward the tail (p99 of two samples is the max),
        # matching what an SLO on a sparse window should see.
        rank = max(1, math.ceil(q * self.count))
        # Rank 1 and rank n are the exact extremes we carry anyway.
        if rank >= self.count:
            return self.max
        if rank == 1:
            return self.min
        seen = 0
        for value, count in self._ordered():
            seen += count
            if seen >= rank:
                return min(max(value, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def count_le(self, threshold: float) -> int:
        """Observations at or below ``threshold`` (bucket granularity)."""
        if self.count == 0:
            return 0
        if threshold >= self.max:
            return self.count
        if threshold < self.min:
            return 0
        seen = 0
        for value, count in self._ordered():
            if value > threshold:
                break
            seen += count
        return seen

    def bad_fraction(self, threshold: float) -> float:
        """Fraction of observations strictly above ``threshold``."""
        if self.count == 0:
            return 0.0
        return 1.0 - self.count_le(threshold) / self.count

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, bounds ascending.

        The Prometheus ``_bucket`` series: each pair counts observations
        at or below the bound; the implicit ``+Inf`` bucket is
        :attr:`count`.
        """
        pairs: List[Tuple[float, int]] = []
        cumulative = 0
        for key in sorted(self._neg, reverse=True):
            cumulative += self._neg[key]
            # Bucket holds values in [-gamma^key, -gamma^(key-1)).
            pairs.append((-(self._gamma ** (key - 1)), cumulative))
        if self._zero:
            cumulative += self._zero
            pairs.append((_MIN_MAGNITUDE, cumulative))
        for key in sorted(self._pos):
            cumulative += self._pos[key]
            pairs.append((self._gamma**key, cumulative))
        return pairs

    # ------------------------------------------------------------------
    # Merging and deltas
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "QuantileSketch") -> None:
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot combine sketches with alpha {self.alpha} "
                f"and {other.alpha}"
            )

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (bucketwise addition)."""
        self._check_compatible(other)
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self._zero += other._zero
        for key, count in other._pos.items():
            self._pos[key] = self._pos.get(key, 0) + count
        for key, count in other._neg.items():
            self._neg[key] = self._neg.get(key, 0) + count
        self._collapse()

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch(alpha=self.alpha, max_buckets=self.max_buckets)
        clone.merge(self)
        return clone

    def delta(self, earlier: "QuantileSketch") -> "QuantileSketch":
        """The sketch of observations made since ``earlier``.

        ``earlier`` must be a previous state of the *same* series
        (buckets only grow); counts are clamped at zero so a collapse
        between the two states degrades gracefully instead of going
        negative.
        """
        self._check_compatible(earlier)
        out = QuantileSketch(alpha=self.alpha, max_buckets=self.max_buckets)
        out.count = max(self.count - earlier.count, 0)
        out.total = self.total - earlier.total
        out._zero = max(self._zero - earlier._zero, 0)
        for key, count in self._pos.items():
            diff = count - earlier._pos.get(key, 0)
            if diff > 0:
                out._pos[key] = diff
        for key, count in self._neg.items():
            diff = count - earlier._neg.get(key, 0)
            if diff > 0:
                out._neg[key] = diff
        if out.count:
            # Exact extrema of the window are unknowable from cumulative
            # state; bucket representatives bound them within alpha.
            values = [v for v, _ in out._ordered()]
            out.min = values[0]
            out.max = values[-1]
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "alpha": self.alpha,
            "max_buckets": self.max_buckets,
            "count": self.count,
            "sum": self.total,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        if self._zero:
            out["zero"] = self._zero
        if self._pos:
            out["pos"] = {str(k): v for k, v in sorted(self._pos.items())}
        if self._neg:
            out["neg"] = {str(k): v for k, v in sorted(self._neg.items())}
        return out

    @classmethod
    def from_dict(cls, spec: Dict[str, object]) -> "QuantileSketch":
        sketch = cls(
            alpha=float(spec.get("alpha", DEFAULT_ALPHA)),
            max_buckets=int(spec.get("max_buckets", DEFAULT_MAX_BUCKETS)),
        )
        sketch.count = int(spec.get("count", 0))
        sketch.total = float(spec.get("sum", 0.0))
        if sketch.count:
            sketch.min = float(spec["min"])  # type: ignore[arg-type]
            sketch.max = float(spec["max"])  # type: ignore[arg-type]
        sketch._zero = int(spec.get("zero", 0))
        sketch._pos = {int(k): int(v) for k, v in spec.get("pos", {}).items()}  # type: ignore[union-attr]
        sketch._neg = {int(k): int(v) for k, v in spec.get("neg", {}).items()}  # type: ignore[union-attr]
        return sketch

    def __len__(self) -> int:
        return len(self._pos) + len(self._neg) + (1 if self._zero else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(count={self.count}, buckets={len(self)}, "
            f"alpha={self.alpha})"
        )


def merge_sketches(sketches: Iterable[QuantileSketch]) -> QuantileSketch:
    """Fold several sketches into a fresh one (empty sketch for none)."""
    out: Optional[QuantileSketch] = None
    for sketch in sketches:
        if out is None:
            out = QuantileSketch(
                alpha=sketch.alpha, max_buckets=sketch.max_buckets
            )
        out.merge(sketch)
    return out if out is not None else QuantileSketch()


# ----------------------------------------------------------------------
# Windowed rollups
# ----------------------------------------------------------------------
class TimeseriesStore:
    """Ring of fixed-width sim-time bins over a metrics registry.

    Args:
        bin_width: bin granularity in simulated seconds (the service
            samples once per heartbeat, so heartbeat-interval bins lose
            nothing).
        bins: ring capacity; memory is ``O(series x bins)`` regardless
            of session length.  The slowest SLO window must fit inside
            ``bin_width * bins``.
    """

    def __init__(self, *, bin_width: float = 1.0, bins: int = 600) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width!r}")
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins!r}")
        self.bin_width = float(bin_width)
        self.bins = int(bins)
        self._counter_bins: Dict[str, Dict[int, float]] = {}
        self._counter_prev: Dict[str, float] = {}
        self._gauge_bins: Dict[str, Dict[int, Tuple[float, float]]] = {}
        self._hist_bins: Dict[str, Dict[int, QuantileSketch]] = {}
        self._hist_prev: Dict[str, QuantileSketch] = {}
        self._last_sample: Optional[float] = None
        self._samples = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_sample(self) -> Optional[float]:
        """Sim time of the most recent :meth:`sample` (None before any)."""
        return self._last_sample

    @property
    def samples(self) -> int:
        return self._samples

    @property
    def span(self) -> float:
        """The widest window the ring can answer, in sim seconds."""
        return self.bin_width * self.bins

    def series_names(self) -> Dict[str, List[str]]:
        return {
            "counters": sorted(self._counter_bins),
            "gauges": sorted(self._gauge_bins),
            "histograms": sorted(self._hist_bins),
        }

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _bin(self, now: float) -> int:
        return int(now // self.bin_width)

    def _trim(self, series: Dict[str, Dict[int, object]], current: int) -> None:
        floor = current - self.bins + 1
        for bins in series.values():
            if len(bins) > self.bins:
                for index in [i for i in bins if i < floor]:
                    del bins[index]

    def record_counter(self, now: float, name: str, delta: float) -> None:
        """Record ``delta`` new events on counter ``name`` at ``now``."""
        if delta == 0:
            return
        index = self._bin(now)
        bins = self._counter_bins.setdefault(name, {})
        bins[index] = bins.get(index, 0.0) + delta
        self._trim(self._counter_bins, index)  # type: ignore[arg-type]

    def record_gauge(self, now: float, name: str, value: float) -> None:
        index = self._bin(now)
        bins = self._gauge_bins.setdefault(name, {})
        last, peak = bins.get(index, (value, value))
        bins[index] = (value, max(peak, value))
        self._trim(self._gauge_bins, index)  # type: ignore[arg-type]

    def record_sketch(
        self, now: float, name: str, delta: QuantileSketch
    ) -> None:
        """Merge a window's worth of observations into ``name``'s bin."""
        if delta.count == 0:
            return
        index = self._bin(now)
        bins = self._hist_bins.setdefault(name, {})
        existing = bins.get(index)
        if existing is None:
            bins[index] = delta.copy()
        else:
            existing.merge(delta)
        self._trim(self._hist_bins, index)  # type: ignore[arg-type]

    def sample(self, now: float, registry) -> None:
        """Roll the registry's current cumulative state into the ring.

        Counters record their delta since the previous sample into the
        bin at ``now``; gauges record last/max; histograms record the
        delta sketch.  Purely read-only on the registry.
        """
        for name, counter in registry.counters_by_name().items():
            previous = self._counter_prev.get(name, 0.0)
            if counter.value != previous:
                self.record_counter(now, name, counter.value - previous)
                self._counter_prev[name] = counter.value
        for name, gauge in registry.gauges_by_name().items():
            self.record_gauge(now, name, gauge.value)
        for name, histogram in registry.histograms_by_name().items():
            sketch = histogram.sketch
            previous = self._hist_prev.get(name)
            if previous is None:
                delta = sketch.copy()
            else:
                delta = sketch.delta(previous)
            if delta.count:
                self.record_sketch(now, name, delta)
                self._hist_prev[name] = sketch.copy()
        self._last_sample = now
        self._samples += 1

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------
    def _window_indices(self, window: float, now: float) -> range:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        end = self._bin(now)
        start = self._bin(max(now - window, 0.0))
        if now - window > 0:
            start += 1  # the start bin is only partially covered: skip it
        return range(min(start, end), end + 1)

    def counter_delta(self, name: str, *, window: float, now: float) -> float:
        """Total counter increase inside the window."""
        bins = self._counter_bins.get(name)
        if not bins:
            return 0.0
        return sum(bins.get(i, 0.0) for i in self._window_indices(window, now))

    def rate(self, name: str, *, window: float, now: float) -> float:
        """Events per sim second over the window."""
        covered = min(window, now) if now > 0 else window
        if covered <= 0:
            return 0.0
        return self.counter_delta(name, window=window, now=now) / covered

    def gauge_last(self, name: str, *, now: float) -> Optional[float]:
        bins = self._gauge_bins.get(name)
        if not bins:
            return None
        visible = [i for i in bins if i <= self._bin(now)]
        if not visible:
            return None
        return bins[max(visible)][0]

    def gauge_max(self, name: str, *, window: float, now: float) -> Optional[float]:
        bins = self._gauge_bins.get(name)
        if not bins:
            return None
        peaks = [
            bins[i][1] for i in self._window_indices(window, now) if i in bins
        ]
        return max(peaks) if peaks else None

    def window_sketch(
        self, name: str, *, window: float, now: float
    ) -> QuantileSketch:
        """Merged sketch of every observation inside the window."""
        bins = self._hist_bins.get(name)
        if not bins:
            return QuantileSketch()
        return merge_sketches(
            bins[i] for i in self._window_indices(window, now) if i in bins
        )

    def quantile(
        self, name: str, q: float, *, window: float, now: float
    ) -> Optional[float]:
        sketch = self.window_sketch(name, window=window, now=now)
        if sketch.count == 0:
            return None
        return sketch.quantile(q)

    def bad_fraction(
        self, name: str, threshold: float, *, window: float, now: float
    ) -> Optional[float]:
        """Fraction of the window's observations above ``threshold``."""
        sketch = self.window_sketch(name, window=window, now=now)
        if sketch.count == 0:
            return None
        return sketch.bad_fraction(threshold)

    # ------------------------------------------------------------------
    # Serialization and merging
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "bin_width": self.bin_width,
            "bins": self.bins,
            "last_sample": self._last_sample,
            "samples": self._samples,
            "counters": {
                name: {str(i): v for i, v in sorted(bins.items())}
                for name, bins in sorted(self._counter_bins.items())
            },
            "gauges": {
                name: {str(i): list(pair) for i, pair in sorted(bins.items())}
                for name, bins in sorted(self._gauge_bins.items())
            },
            "histograms": {
                name: {
                    str(i): sketch.to_dict()
                    for i, sketch in sorted(bins.items())
                }
                for name, bins in sorted(self._hist_bins.items())
            },
        }

    @classmethod
    def from_dict(cls, spec: Dict[str, object]) -> "TimeseriesStore":
        store = cls(
            bin_width=float(spec.get("bin_width", 1.0)),
            bins=int(spec.get("bins", 600)),
        )
        store._last_sample = spec.get("last_sample")  # type: ignore[assignment]
        store._samples = int(spec.get("samples", 0))
        for name, bins in spec.get("counters", {}).items():  # type: ignore[union-attr]
            store._counter_bins[name] = {
                int(i): float(v) for i, v in bins.items()
            }
        for name, bins in spec.get("gauges", {}).items():  # type: ignore[union-attr]
            store._gauge_bins[name] = {
                int(i): (float(pair[0]), float(pair[1]))
                for i, pair in bins.items()
            }
        for name, bins in spec.get("histograms", {}).items():  # type: ignore[union-attr]
            store._hist_bins[name] = {
                int(i): QuantileSketch.from_dict(sketch)
                for i, sketch in bins.items()
            }
        return store


def merge_rollups(stores: Iterable["TimeseriesStore"]) -> "TimeseriesStore":
    """Fold per-worker rollup stores into one campaign-level store.

    Bins align by absolute sim-time index, so workers that sampled the
    same simulated window land in the same bin: counters add, gauge
    last/max take the maximum (cross-worker "last" is meaningless, the
    peak is what an SLO cares about), sketches merge.  Bin width must
    agree; the widest ring wins.
    """
    stores = list(stores)
    if not stores:
        return TimeseriesStore()
    widths = {s.bin_width for s in stores}
    if len(widths) > 1:
        raise ValueError(
            f"cannot merge rollups with different bin widths: {sorted(widths)}"
        )
    out = TimeseriesStore(
        bin_width=stores[0].bin_width, bins=max(s.bins for s in stores)
    )
    for store in stores:
        for name, bins in store._counter_bins.items():
            into = out._counter_bins.setdefault(name, {})
            for index, value in bins.items():
                into[index] = into.get(index, 0.0) + value
        for name, bins in store._gauge_bins.items():
            into = out._gauge_bins.setdefault(name, {})
            for index, (last, peak) in bins.items():
                prev = into.get(index)
                if prev is None:
                    into[index] = (last, peak)
                else:
                    into[index] = (max(prev[0], last), max(prev[1], peak))
        for name, bins in store._hist_bins.items():
            into = out._hist_bins.setdefault(name, {})
            for index, sketch in bins.items():
                existing = into.get(index)
                if existing is None:
                    into[index] = sketch.copy()
                else:
                    existing.merge(sketch)
        if store._last_sample is not None and (
            out._last_sample is None or store._last_sample > out._last_sample
        ):
            out._last_sample = store._last_sample
        out._samples += store._samples
    return out
