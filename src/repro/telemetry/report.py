"""Human-readable telemetry report.

Renders one text block from a :class:`~repro.telemetry.Telemetry`
bundle: counters, gauges, per-subsystem wall-clock profile, histogram
summaries, placement-decision accuracy, and sampled link utilisation
from any attached timeline samplers.  This is the report the CLI prints
after a figure run with ``--trace`` / ``--metrics-out`` / ``--timeline``.
"""

from __future__ import annotations

from typing import List

from repro.metrics.stats import mean
from repro.telemetry.profiler import render_profile

__all__ = [
    "DEGRADED_COUNTERS",
    "SERVICE_COUNTERS",
    "SERVICE_GAUGES",
    "OBSERVABILITY_COUNTERS",
    "render_report",
    "render_snapshot",
    "snapshot_as_dict",
]

#: Subsystem timers, outermost first (each includes the ones below it).
_PROFILE_ORDER = ("placement", "bus", "predictor", "allocator")

#: Degraded-operation counters: the fault-tolerance paths a healthy run
#: never takes.  Reports and the Prometheus exporter always emit these
#: (zero-defaulted), so "no degraded operation" is an explicit signal
#: rather than an absent series dashboards cannot alert on.
DEGRADED_COUNTERS = (
    "fabric.flows_aborted",
    "fabric.flows_rerouted",
    "bus.messages_dropped",
    "placement.stale_fallbacks",
    "faults.tasks_dropped",
)

#: Streaming-service counters (``repro serve``), zero-defaulted the same
#: way: a batch run that never served anything reports explicit zeros,
#: and a service dashboard can alert on rejections from the first scrape.
SERVICE_COUNTERS = (
    "service.tasks_rejected",
    "service.batches",
    "service.decisions",
)

#: Service gauges zero-defaulted alongside (queue depth high-water mark).
SERVICE_GAUGES = ("service.queue_depth",)

#: Live-observability counters (SLO engine + flight recorder),
#: zero-defaulted the same way: "no alert ever fired" and "no
#: post-mortem was ever dumped" are explicit, alertable zeros.
OBSERVABILITY_COUNTERS = (
    "slo.evaluations",
    "slo.alerts_fired",
    "recorder.dumps_written",
)


def _fmt(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _snapshot_lines(snapshot) -> List[str]:
    """Section lines for a metrics snapshot (counters/gauges/timers/
    histograms, plus the span profile when a ``profile`` key rides
    along, as in ``--metrics-out`` files from ``--profile`` runs)."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines += ["", "counters"]
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {_fmt(value)}")

    gauges = snapshot.get("gauges", {})
    if gauges:
        lines += ["", "gauges"]
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {_fmt(value)}")

    timers = snapshot.get("timers", {})
    if timers:
        lines += ["", "wall-time profile (inclusive; placement > bus > predictor)"]
        ordered = [n for n in _PROFILE_ORDER if n in timers]
        ordered += [n for n in sorted(timers) if n not in _PROFILE_ORDER]
        width = max(len(name) for name in ordered)
        for name in ordered:
            info = timers[name]
            lines.append(
                f"  {name:<{width}}  {info['wall_seconds'] * 1e3:10.3f} ms"
                f"  over {info['calls']} calls"
            )

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines += ["", "histograms"]
        for name, summary in histograms.items():
            if summary.get("count", 0) == 0:
                lines.append(f"  {name}: empty")
                continue
            quantiles = ""
            if "p50" in summary:
                quantiles = (
                    f" p50={_fmt(summary['p50'])} p95={_fmt(summary['p95'])}"
                )
                if "p99" in summary:
                    quantiles += f" p99={_fmt(summary['p99'])}"
            lines.append(
                f"  {name}: n={summary['count']}"
                f" mean={_fmt(summary['mean'])}"
                f"{quantiles}"
                f" max={_fmt(summary['max'])}"
            )

    profile = snapshot.get("profile")
    if profile and profile.get("flame"):
        lines += _profile_lines(profile)
    return lines


def _degraded_lines(snapshot) -> List[str]:
    """The degraded-operation section (zero-defaulted; omitted only when
    the snapshot carries no counters at all, i.e. metrics were off)."""
    counters = snapshot.get("counters")
    if not counters:
        return []
    lines = ["", "degraded operation (all zero on a healthy run)"]
    width = max(len(name) for name in DEGRADED_COUNTERS)
    for name in DEGRADED_COUNTERS:
        lines.append(f"  {name:<{width}}  {_fmt(counters.get(name, 0))}")
    return lines


def _service_lines(snapshot) -> List[str]:
    """The streaming-service section (zero-defaulted like degraded ops)."""
    counters = snapshot.get("counters")
    if not counters:
        return []
    gauges = snapshot.get("gauges", {})
    names = SERVICE_COUNTERS + SERVICE_GAUGES
    lines = ["", "placement service (zero unless `repro serve` ran)"]
    width = max(len(name) for name in names)
    for name in SERVICE_COUNTERS:
        lines.append(f"  {name:<{width}}  {_fmt(counters.get(name, 0))}")
    for name in SERVICE_GAUGES:
        lines.append(f"  {name:<{width}}  {_fmt(gauges.get(name, 0))}")
    return lines


def _observability_lines(snapshot) -> List[str]:
    """The live SLO/recorder section (zero unless the live layer ran)."""
    counters = snapshot.get("counters")
    if not counters:
        return []
    lines = ["", "live SLO layer (zero unless --slo/--recorder armed)"]
    width = max(len(name) for name in OBSERVABILITY_COUNTERS)
    for name in OBSERVABILITY_COUNTERS:
        lines.append(f"  {name:<{width}}  {_fmt(counters.get(name, 0))}")
    return lines


def _profile_lines(profile) -> List[str]:
    lines = ["", "span profile (flame view; excl = self time)"]
    for line in render_profile(profile).splitlines():
        lines.append("  " + line)
    return lines


def render_snapshot(snapshot) -> str:
    """Render a saved metrics snapshot (a ``--metrics-out`` JSON or a
    merged campaign snapshot) as the same aligned text report."""
    lines = ["telemetry report", "================"]
    lines += _snapshot_lines(snapshot)
    lines += _degraded_lines(snapshot)
    lines += _service_lines(snapshot)
    lines += _observability_lines(snapshot)
    decisions = snapshot.get("placement_decisions")
    if decisions and decisions.get("decisions"):
        lines += ["", "placement decisions"]
        lines.append(
            f"  recorded={decisions['decisions']}"
            f" joined={decisions['joined']}"
            f" with_error={decisions['with_error']}"
        )
    return "\n".join(lines)


def snapshot_as_dict(snapshot) -> dict:
    """Normalize a saved metrics snapshot for machine consumption
    (``repro report --json``).

    Core metric sections are always present, degraded-operation counters
    are zero-defaulted and mirrored into a dedicated ``degraded`` block,
    and any extra sections (``placement_decisions``, ``profile``, ...)
    pass through untouched.
    """
    counters = dict(snapshot.get("counters", {}))
    for name in (
        DEGRADED_COUNTERS + SERVICE_COUNTERS + OBSERVABILITY_COUNTERS
    ):
        counters.setdefault(name, 0)
    gauges = dict(snapshot.get("gauges", {}))
    for name in SERVICE_GAUGES:
        gauges.setdefault(name, 0)
    service = {name: counters[name] for name in SERVICE_COUNTERS}
    service.update({name: gauges[name] for name in SERVICE_GAUGES})
    out = {
        "counters": counters,
        "gauges": gauges,
        "histograms": dict(snapshot.get("histograms", {})),
        "timers": dict(snapshot.get("timers", {})),
        "degraded": {name: counters[name] for name in DEGRADED_COUNTERS},
        "service": service,
        "observability": {
            name: counters[name] for name in OBSERVABILITY_COUNTERS
        },
    }
    for key, value in snapshot.items():
        if key not in out:
            out[key] = value
    return out


def render_report(telemetry) -> str:
    """Render the telemetry bundle as an aligned text report."""
    lines: List[str] = ["telemetry report", "================"]

    snapshot = telemetry.registry.as_dict() if telemetry.registry.enabled \
        else {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}
    lines += _snapshot_lines(snapshot)
    lines += _degraded_lines(snapshot)
    lines += _service_lines(snapshot)
    lines += _observability_lines(snapshot)

    if telemetry.profiler.enabled:
        lines += _profile_lines(telemetry.profiler.as_dict())

    if telemetry.decisions.active:
        summary = telemetry.decisions.error_summary()
        lines += ["", "placement decisions"]
        lines.append(
            f"  recorded={summary['decisions']}"
            f" joined={summary['joined']}"
            f" with_error={summary['with_error']}"
        )
        if "mean_abs_error" in summary:
            lines.append(
                "  prediction error:"
                f" mean|err|={summary['mean_abs_error']:.3f}"
                f" median={summary['median_error']:+.3f}"
                f" p95|err|={summary['p95_abs_error']:.3f}"
            )

    if telemetry.timelines:
        lines += ["", "link utilisation (sampled timelines)"]
        for label, samples in telemetry.timelines:
            if not samples:
                lines.append(f"  {label}: no samples")
                continue
            utils = [
                util
                for sample in samples
                for util, _bits in sample.links.values()
            ]
            peak_flows = max(s.active_flows for s in samples)
            if utils:
                lines.append(
                    f"  {label}: samples={len(samples)}"
                    f" mean_util={mean(utils):.3f}"
                    f" peak_util={max(utils):.3f}"
                    f" peak_active_flows={peak_flows}"
                )
            else:
                lines.append(
                    f"  {label}: samples={len(samples)}"
                    f" peak_active_flows={peak_flows} (no links watched)"
                )

    return "\n".join(lines)
