"""Chrome/Perfetto trace-event export of a causal stream.

Converts the JSONL stream recorded by
:class:`repro.telemetry.causal.CausalTracer` into the legacy
``traceEvents`` JSON format that both ``chrome://tracing`` and
https://ui.perfetto.dev load directly:

* one *process* per run holding one *thread per flow* — a complete
  ("X") slice spanning the flow's lifetime with nested sub-slices for
  every constant-rate segment, so preemptions and reallocation show up
  as visual steps;
* a per-run *links* process exposing each link's capacity as a counter
  ("C") track — degrades and failures appear as cliffs;
* a per-run *hosts* process counting active outgoing flows per host;
* a per-run *faults* overlay process: instant ("i") markers for point
  faults and slices for message-loss / delay / staleness windows;
* task placements as instant markers carrying the decision args.

Timestamps are simulation seconds scaled to microseconds (the format's
native unit), so one sim-second reads as one wall-second in the UI.
Construction iterates everything in sorted order, so the export is
byte-stable for byte-identical input streams.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

__all__ = ["to_perfetto", "save_perfetto"]

_US = 1_000_000.0  # sim seconds -> trace microseconds


def _pid(run: int, track: int) -> int:
    return run * 10 + track


class _RunState:
    """Per-run accumulation while scanning the stream."""

    def __init__(self, event: Dict[str, object]) -> None:
        self.run = int(event.get("run", 0))
        self.placement = event.get("placement", "")
        self.network_policy = event.get("network_policy", "")
        self.start = float(event["t"])
        self.end: Optional[float] = None
        self.caps: List[Dict[str, object]] = [
            {"t": self.start, "link": link, "capacity": cap}
            for link, cap in event.get("capacities", {}).items()
        ]
        self.flows: Dict[int, Dict[str, object]] = {}
        self.tasks: Dict[int, Dict[str, object]] = {}
        self.faults: List[Dict[str, object]] = []
        self.windows: List[Dict[str, object]] = []
        self.last_t = self.start

    def feed(self, event: Dict[str, object]) -> None:
        ev = event["ev"]
        t = float(event.get("t", self.last_t))
        if t > self.last_t:
            self.last_t = t
        if ev == "flow":
            self.flows[event["flow"]] = {
                "meta": event,
                "rates": [(t, 0.0)],
                "reroutes": [],
                "end": None,
                "aborted": False,
            }
        elif ev == "rate":
            flow = self.flows.get(event["flow"])
            if flow is not None:
                rates = flow["rates"]
                if rates and rates[-1][0] == t:
                    rates[-1] = (t, event["rate"])
                else:
                    rates.append((t, event["rate"]))
        elif ev == "reroute":
            flow = self.flows.get(event["flow"])
            if flow is not None:
                flow["reroutes"].append(event)
        elif ev == "done":
            flow = self.flows.get(event["flow"])
            if flow is not None:
                flow["end"] = t
                flow["done"] = event
        elif ev == "abort":
            flow = self.flows.get(event["flow"])
            if flow is not None:
                flow["end"] = t
                flow["aborted"] = True
        elif ev == "cap":
            self.caps.append(dict(event))
        elif ev == "task":
            self.tasks[event["trace"]] = dict(event)
        elif ev == "decision":
            task = self.tasks.get(event.get("trace"))
            if task is not None:
                task["decision"] = event
        elif ev == "fault":
            self.faults.append(dict(event))
        elif ev == "window":
            self.windows.append(dict(event))
        elif ev == "run_end":
            self.end = t


def _flow_label(flow: Dict[str, object], tag: str) -> str:
    fid = flow["meta"]["flow"]
    return f"{tag}#{fid}" if tag else f"flow#{fid}"


def _meta(pid: int, name: str, out: List[Dict[str, object]]) -> None:
    out.append(
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": name},
        }
    )


def _flush_run(state: _RunState, out: List[Dict[str, object]]) -> None:
    run_end = state.end if state.end is not None else state.last_t
    label = f"run{state.run} {state.placement}/{state.network_policy}"
    pid_flows = _pid(state.run, 1)
    pid_links = _pid(state.run, 2)
    pid_hosts = _pid(state.run, 3)
    pid_faults = _pid(state.run, 4)
    _meta(pid_flows, f"{label} flows", out)
    _meta(pid_links, f"{label} link capacity", out)
    _meta(pid_hosts, f"{label} active flows per host", out)
    _meta(pid_faults, f"{label} faults", out)

    # Flow slices with constant-rate sub-slices.
    host_deltas: List = []
    for fid in sorted(state.flows):
        flow = state.flows[fid]
        meta = flow["meta"]
        trace = meta.get("trace")
        task = state.tasks.get(trace) if trace is not None else None
        tag = task.get("tag", "") if task else ""
        name = _flow_label(flow, tag)
        arrival = float(meta["t"])
        end = flow["end"] if flow["end"] is not None else run_end
        out.append(
            {
                "ph": "M",
                "pid": pid_flows,
                "tid": fid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
        args = {
            "src": meta["src"],
            "dst": meta["dst"],
            "size": meta["size"],
            "optimal": meta["optimal"],
            "path": meta["path"],
            "trace": trace,
        }
        done = flow.get("done")
        if done is not None:
            args["fct"] = done["fct"]
        if flow["aborted"]:
            args["aborted"] = True
        out.append(
            {
                "ph": "X",
                "pid": pid_flows,
                "tid": fid,
                "ts": arrival * _US,
                "dur": max(0.0, (end - arrival) * _US),
                "name": name,
                "cat": "flow",
                "args": args,
            }
        )
        rates = flow["rates"] + [(end, None)]
        for (t0, rate), (t1, _next) in zip(rates, rates[1:]):
            if t1 <= t0:
                continue
            out.append(
                {
                    "ph": "X",
                    "pid": pid_flows,
                    "tid": fid,
                    "ts": t0 * _US,
                    "dur": (t1 - t0) * _US,
                    "name": f"rate={rate:.4g}" if rate else "stalled",
                    "cat": "rate",
                    "args": {"rate": rate},
                }
            )
        for reroute in flow["reroutes"]:
            out.append(
                {
                    "ph": "i",
                    "pid": pid_flows,
                    "tid": fid,
                    "ts": float(reroute["t"]) * _US,
                    "name": "reroute",
                    "s": "t",
                    "cat": "flow",
                    "args": {"path": reroute["path"]},
                }
            )
        host_deltas.append((arrival, meta["src"], 1))
        host_deltas.append((end, meta["src"], -1))

    # Link-capacity counters (sorted by time then link for stability).
    for cap in sorted(state.caps, key=lambda c: (c["t"], c["link"])):
        out.append(
            {
                "ph": "C",
                "pid": pid_links,
                "tid": 0,
                "ts": float(cap["t"]) * _US,
                "name": str(cap["link"]),
                "args": {"capacity": cap["capacity"]},
            }
        )

    # Active-flows-per-host counters.
    active: Dict[str, int] = {}
    for t, host, delta in sorted(host_deltas, key=lambda d: (d[0], d[1])):
        active[host] = active.get(host, 0) + delta
        out.append(
            {
                "ph": "C",
                "pid": pid_hosts,
                "tid": 0,
                "ts": t * _US,
                "name": str(host),
                "args": {"active": active[host]},
            }
        )

    # Fault overlay: instants for point faults, slices for windows.
    for fault in state.faults:
        args = {
            k: v for k, v in fault.items() if k not in ("ev", "t", "kind")
        }
        out.append(
            {
                "ph": "i",
                "pid": pid_faults,
                "tid": 0,
                "ts": float(fault["t"]) * _US,
                "name": str(fault.get("kind", "fault")),
                "s": "p",
                "cat": "fault",
                "args": args,
            }
        )
    for index, window in enumerate(state.windows, 1):
        start = float(window.get("start", window.get("t", 0.0)))
        until = window.get("until")
        stop = float(until) if until is not None else run_end
        args = {
            k: v for k, v in window.items() if k not in ("ev", "t", "kind")
        }
        out.append(
            {
                "ph": "X",
                "pid": pid_faults,
                "tid": index,
                "ts": start * _US,
                "dur": max(0.0, (stop - start) * _US),
                "name": str(window.get("kind", "window")),
                "cat": "fault",
                "args": args,
            }
        )

    # Task placements as instants on the faults-free control row (tid 0
    # of the flows process would collide with flow ids; use a high tid).
    for trace in sorted(state.tasks):
        task = state.tasks[trace]
        decision = task.get("decision")
        args = {"trace": trace, "tag": task.get("tag", "")}
        if decision is not None:
            args.update(
                {
                    "chosen": decision.get("chosen"),
                    "predicted": decision.get("predicted"),
                    "stale": decision.get("stale"),
                    "fallback": decision.get("fallback"),
                }
            )
        out.append(
            {
                "ph": "i",
                "pid": pid_flows,
                "tid": 0,
                "ts": float(task["t"]) * _US,
                "name": f"task {task.get('tag') or trace}",
                "s": "t",
                "cat": "task",
                "args": args,
            }
        )


def to_perfetto(events: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Convert a causal event stream into a trace-event JSON object."""
    out: List[Dict[str, object]] = []
    state: Optional[_RunState] = None
    for event in events:
        if event.get("ev") == "run_start":
            if state is not None:
                _flush_run(state, out)
            state = _RunState(event)
        elif state is not None:
            state.feed(event)
    if state is not None:
        _flush_run(state, out)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def save_perfetto(events: Sequence[Dict[str, object]], path: str) -> int:
    """Write the Perfetto JSON to ``path``; returns the event count."""
    doc = to_perfetto(events)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, separators=(",", ":"), sort_keys=True)
        fp.write("\n")
    return len(doc["traceEvents"])
