"""Structured JSONL trace sink for DES lifecycle events.

Every line is one JSON object with at least ``event`` (the record type)
and ``t`` (simulation time).  Producers emit through
:meth:`TraceSink.emit`, which is a no-op on the shared
:data:`NULL_TRACE`; hot paths additionally guard on
:attr:`TraceSink.active` so a disabled trace costs one attribute read.

Determinism contract: with wall-clock stamping off (the default), two
runs from the same seed produce **byte-identical** trace files.  Any
field carrying wall-clock data must be named with a ``wall`` prefix so
readers (and the determinism tests) can strip it.

Event vocabulary produced by the stack:

========================  ====================================================
``run_start``/``run_end``  one replay's boundaries (placement, network policy)
``flow_arrival``           fabric ingress: id, src/dst, size, tag
``flow_completion``        fabric egress: fct, optimal fct, gap
``rate_recompute``         allocator invocation: active flow count plus the
                           dirty sharing-component size (flows and links)
``coflow_arrival``         sealed coflow: width, total bits
``coflow_completion``      cct, optimal cct
``bus_message``            control-plane round trip: host, type, rtt
``placement_decision``     candidates, preferred set, per-candidate scores
``decision_outcome``       realized completion joined back to the decision
``engine_run``             events processed, heap high-water mark
========================  ====================================================
"""

from __future__ import annotations

import json
import math
import time
from typing import IO, Dict, List, Mapping, Optional, Union

__all__ = ["TraceSink", "JsonlTraceSink", "NULL_TRACE", "read_trace"]


def _json_safe(value):
    """Replace non-finite floats (JSON has no inf/nan) with strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class TraceSink:
    """Base sink: discards everything (also serves as the null sink)."""

    active = False

    def emit(
        self,
        event: str,
        sim_time: float,
        fields: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one event at ``sim_time`` with extra ``fields``."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Shared disabled sink (the default everywhere).
NULL_TRACE = TraceSink()


class JsonlTraceSink(TraceSink):
    """Writes one JSON object per line to a file or file-like object.

    Args:
        target: path to (over)write, or an open text file object.
        wall_clock: also stamp every record with ``wall`` (unix seconds).
            Off by default so traces are byte-identical across same-seed
            runs; when on, determinism holds *modulo* ``wall*`` fields.
    """

    active = True

    def __init__(
        self, target: Union[str, IO[str]], *, wall_clock: bool = False
    ) -> None:
        if isinstance(target, str):
            self._fp: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_fp = True
        else:
            self._fp = target
            self._owns_fp = False
        self._wall_clock = wall_clock
        self._events_written = 0
        self._closed = False

    @property
    def events_written(self) -> int:
        return self._events_written

    def emit(
        self,
        event: str,
        sim_time: float,
        fields: Optional[Mapping[str, object]] = None,
    ) -> None:
        if self._closed:
            return
        record = {"event": event, "t": sim_time}
        if self._wall_clock:
            record["wall"] = time.time()
        if fields:
            for key, value in fields.items():
                record[key] = _json_safe(value)
        self._fp.write(json.dumps(record, separators=(",", ":")))
        self._fp.write("\n")
        self._events_written += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_fp:
            self._fp.close()
        else:
            self._fp.flush()


def read_trace(path: str) -> List[Dict[str, object]]:
    """Read a JSONL trace back into a list of event dicts.

    Tolerates a truncated final line (a run killed mid-write leaves at
    most one partial record; it is dropped).  A malformed line anywhere
    *else* is corruption, not truncation, and raises ``ValueError``.
    """
    events: List[Dict[str, object]] = []
    bad_line: Optional[int] = None
    with open(path, "r", encoding="utf-8") as fp:
        for number, line in enumerate(fp, 1):
            if bad_line is not None:
                raise ValueError(
                    f"{path}:{bad_line}: malformed trace record "
                    "(not a truncated tail; file is corrupt)"
                )
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                bad_line = number
    return events
