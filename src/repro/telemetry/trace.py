"""Structured JSONL trace sink for DES lifecycle events.

Every line is one JSON object with at least ``event`` (the record type)
and ``t`` (simulation time).  Producers emit through
:meth:`TraceSink.emit`, which is a no-op on the shared
:data:`NULL_TRACE`; hot paths additionally guard on
:attr:`TraceSink.active` so a disabled trace costs one attribute read.

Determinism contract: with wall-clock stamping off (the default), two
runs from the same seed produce **byte-identical** trace files.  Any
field carrying wall-clock data must be named with a ``wall`` prefix so
readers (and the determinism tests) can strip it.

Event vocabulary produced by the stack:

========================  ====================================================
``run_start``/``run_end``  one replay's boundaries (placement, network policy)
``flow_arrival``           fabric ingress: id, src/dst, size, tag
``flow_completion``        fabric egress: fct, optimal fct, gap
``rate_recompute``         allocator invocation: active flow count plus the
                           dirty sharing-component size (flows and links)
``coflow_arrival``         sealed coflow: width, total bits
``coflow_completion``      cct, optimal cct
``bus_message``            control-plane round trip: host, type, rtt
``placement_decision``     candidates, preferred set, per-candidate scores
``decision_outcome``       realized completion joined back to the decision
``engine_run``             events processed, heap high-water mark
========================  ====================================================
"""

from __future__ import annotations

import gzip
import io
import json
import math
import os
import time
from typing import IO, Dict, List, Mapping, Optional, Union

__all__ = [
    "TraceSink",
    "JsonlTraceSink",
    "RotatingJsonlTraceSink",
    "NULL_TRACE",
    "read_trace",
    "read_rotated_trace",
]


def _is_gzip_path(path: str) -> bool:
    # Rotation renames "t.jsonl.gz" to "t.jsonl.gz.1", so a numeric
    # rotation suffix after ".gz" still names a gzip stream.
    base, dot, suffix = path.rpartition(".")
    if dot and suffix.isdigit():
        path = base
    return path.endswith(".gz")


def _open_trace_for_write(path: str) -> IO[str]:
    """Open a trace path for writing, transparently gzip for ``*.gz``.

    The gzip stream is built with ``mtime=0`` and no embedded filename,
    so two same-seed runs produce **byte-identical compressed files** —
    the determinism contract survives compression.  Closing the returned
    wrapper closes the whole chain (gzip trailer included).
    """
    if not _is_gzip_path(path):
        return open(path, "w", encoding="utf-8", newline="")
    raw = open(path, "wb")
    try:
        gz = gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0)
    except BaseException:
        raw.close()
        raise

    wrapper = io.TextIOWrapper(gz, encoding="utf-8", newline="")
    original_close = wrapper.close

    def close_chain() -> None:
        try:
            original_close()  # flushes text buffer, closes gz (trailer)
        finally:
            raw.close()

    wrapper.close = close_chain  # type: ignore[method-assign]
    return wrapper


def _open_trace_for_read(path: str) -> IO[str]:
    if _is_gzip_path(path):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _json_safe(value):
    """Replace non-finite floats (JSON has no inf/nan) with strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class TraceSink:
    """Base sink: discards everything (also serves as the null sink)."""

    active = False

    def emit(
        self,
        event: str,
        sim_time: float,
        fields: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one event at ``sim_time`` with extra ``fields``."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Shared disabled sink (the default everywhere).
NULL_TRACE = TraceSink()


class JsonlTraceSink(TraceSink):
    """Writes one JSON object per line to a file or file-like object.

    Args:
        target: path to (over)write, or an open text file object.  A
            path ending in ``.gz`` writes a deterministic gzip stream
            (``mtime=0``), still byte-identical across same-seed runs.
        wall_clock: also stamp every record with ``wall`` (unix seconds).
            Off by default so traces are byte-identical across same-seed
            runs; when on, determinism holds *modulo* ``wall*`` fields.
    """

    active = True

    def __init__(
        self, target: Union[str, IO[str]], *, wall_clock: bool = False
    ) -> None:
        if isinstance(target, str):
            self._fp: IO[str] = _open_trace_for_write(target)
            self._owns_fp = True
        else:
            self._fp = target
            self._owns_fp = False
        self._wall_clock = wall_clock
        self._events_written = 0
        self._closed = False

    @property
    def events_written(self) -> int:
        return self._events_written

    def emit(
        self,
        event: str,
        sim_time: float,
        fields: Optional[Mapping[str, object]] = None,
    ) -> None:
        if self._closed:
            return
        record = {"event": event, "t": sim_time}
        if self._wall_clock:
            record["wall"] = time.time()
        if fields:
            for key, value in fields.items():
                record[key] = _json_safe(value)
        self._fp.write(json.dumps(record, separators=(",", ":")))
        self._fp.write("\n")
        self._events_written += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_fp:
            self._fp.close()
        else:
            self._fp.flush()


class RotatingJsonlTraceSink(TraceSink):
    """A :class:`JsonlTraceSink` that rotates by size, keeping backups.

    A thousand-cell campaign's traces outgrow any single file; this sink
    caps the active segment at ``max_bytes`` of *uncompressed* JSONL and
    rotates: ``path`` becomes ``path.1``, the previous ``path.1``
    becomes ``path.2``, … and the segment beyond ``backups`` is deleted.
    Rotation points are byte counts of the serialized records, so two
    same-seed runs rotate at identical events and every surviving
    segment is byte-identical (gzip segments included — ``.gz`` paths
    compress each segment deterministically with ``mtime=0``).

    Read the whole set back with :func:`read_rotated_trace`.
    """

    active = True

    def __init__(
        self,
        path: str,
        *,
        max_bytes: int = 4 * 1024 * 1024,
        backups: int = 4,
        wall_clock: bool = False,
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes!r}")
        if backups < 1:
            raise ValueError(f"backups must be >= 1, got {backups!r}")
        self._path = path
        self._max_bytes = max_bytes
        self._backups = backups
        self._wall_clock = wall_clock
        self._fp: IO[str] = _open_trace_for_write(path)
        self._segment_bytes = 0
        self._events_written = 0
        self._rotations = 0
        self._closed = False

    @property
    def events_written(self) -> int:
        return self._events_written

    @property
    def rotations(self) -> int:
        return self._rotations

    def _rotate(self) -> None:
        self._fp.close()
        oldest = f"{self._path}.{self._backups}"
        try:
            os.remove(oldest)
        except OSError:
            pass
        for n in range(self._backups - 1, 0, -1):
            src = f"{self._path}.{n}"
            if os.path.exists(src):
                os.replace(src, f"{self._path}.{n + 1}")
        os.replace(self._path, f"{self._path}.1")
        self._fp = _open_trace_for_write(self._path)
        self._segment_bytes = 0
        self._rotations += 1

    def emit(
        self,
        event: str,
        sim_time: float,
        fields: Optional[Mapping[str, object]] = None,
    ) -> None:
        if self._closed:
            return
        record = {"event": event, "t": sim_time}
        if self._wall_clock:
            record["wall"] = time.time()
        if fields:
            for key, value in fields.items():
                record[key] = _json_safe(value)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        # Rotate *before* writing when the record would overflow the
        # segment, so a record never straddles two files and rotation
        # points depend only on the byte stream (deterministic).
        if (
            self._segment_bytes
            and self._segment_bytes + len(line) > self._max_bytes
        ):
            self._rotate()
        self._fp.write(line)
        self._segment_bytes += len(line)
        self._events_written += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fp.close()


def read_trace(path: str) -> List[Dict[str, object]]:
    """Read a JSONL trace back into a list of event dicts.

    Transparently decompresses ``*.gz`` traces.  Tolerates a truncated
    final line (a run killed mid-write leaves at most one partial
    record; it is dropped).  A malformed line anywhere *else* is
    corruption, not truncation, and raises ``ValueError``.
    """
    events: List[Dict[str, object]] = []
    bad_line: Optional[int] = None
    with _open_trace_for_read(path) as fp:
        for number, line in enumerate(fp, 1):
            if bad_line is not None:
                raise ValueError(
                    f"{path}:{bad_line}: malformed trace record "
                    "(not a truncated tail; file is corrupt)"
                )
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                bad_line = number
    return events


def read_rotated_trace(path: str) -> List[Dict[str, object]]:
    """Read a rotated trace set back as one event list, oldest first.

    Segments are ``path.N`` (highest N = oldest) followed by the active
    ``path``; a plain un-rotated trace (no ``path.1``) reads the same as
    :func:`read_trace`.
    """
    segments: List[str] = []
    n = 1
    while os.path.exists(f"{path}.{n}"):
        segments.append(f"{path}.{n}")
        n += 1
    segments.reverse()  # oldest (highest N) first
    if os.path.exists(path):
        segments.append(path)
    events: List[Dict[str, object]] = []
    for segment in segments:
        events.extend(read_trace(segment))
    return events
