"""End-to-end telemetry: metrics, structured tracing, explainability.

One :class:`Telemetry` object threads through the whole stack (engine,
fabric, bus, daemons, placement policies, experiment runner) and bundles
the three observability channels:

* :attr:`Telemetry.registry` — counters / gauges / histograms / timers
  (:mod:`repro.telemetry.registry`);
* :attr:`Telemetry.trace` — a structured JSONL event sink
  (:mod:`repro.telemetry.trace`);
* :attr:`Telemetry.decisions` — the placement-decision log with
  realized-outcome joins (:mod:`repro.telemetry.decisions`);
* :attr:`Telemetry.profiler` — a hierarchical wall-clock span profiler
  (:mod:`repro.telemetry.profiler`);
* :attr:`Telemetry.causal` — request-scoped causal traces with FCT/CCT
  blame decomposition (:mod:`repro.telemetry.causal`).

Everything defaults to shared no-op singletons, so components take
``telemetry: Optional[Telemetry] = None`` and pay a single attribute
check when telemetry is off (:data:`NULL_TELEMETRY`).

Quickstart (the bundle is a context manager; it closes its trace sink
on exit, so nobody hand-closes ``tele.trace``)::

    from repro.telemetry import create_telemetry
    from repro.experiments import MacroConfig, replay_flow_trace

    with create_telemetry(trace_path="/tmp/t.jsonl", profile=True) as tele:
        cfg = MacroConfig(num_arrivals=100)
        topo = cfg.build_topology()
        replay_flow_trace(cfg.build_trace(topo), topo,
                          network_policy="fair", placement="neat",
                          telemetry=tele)
    print(tele.decisions.error_summary())
    print(tele.profiler.as_dict()["labels"])
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.telemetry.decisions import (
    NULL_DECISIONS,
    DecisionLog,
    DecisionRecord,
)
from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
    merge_snapshots,
)
from repro.telemetry.profiler import (
    NULL_PROFILER,
    NullProfiler,
    SpanProfiler,
    render_profile,
)
from repro.telemetry.causal import (
    NULL_CAUSAL,
    CausalTracer,
    NullCausalTracer,
)
from repro.telemetry.trace import (
    NULL_TRACE,
    JsonlTraceSink,
    RotatingJsonlTraceSink,
    TraceSink,
    read_rotated_trace,
    read_trace,
)
from repro.telemetry.timeseries import (
    QuantileSketch,
    TimeseriesStore,
    merge_rollups,
    merge_sketches,
)
from repro.telemetry.slo import (
    SLOAlert,
    SLOEngine,
    SLOSpec,
    default_slo_specs,
    load_slo_specs,
)
from repro.telemetry.recorder import FlightRecorder

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "create_telemetry",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "TraceSink",
    "JsonlTraceSink",
    "RotatingJsonlTraceSink",
    "NULL_TRACE",
    "read_trace",
    "read_rotated_trace",
    "CausalTracer",
    "NullCausalTracer",
    "NULL_CAUSAL",
    "DecisionLog",
    "DecisionRecord",
    "NULL_DECISIONS",
    "SpanProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "render_profile",
    "merge_snapshots",
    "render_report",
    "QuantileSketch",
    "TimeseriesStore",
    "merge_sketches",
    "merge_rollups",
    "SLOSpec",
    "SLOAlert",
    "SLOEngine",
    "load_slo_specs",
    "default_slo_specs",
    "FlightRecorder",
]


class Telemetry:
    """Bundle of the three telemetry channels plus timeline config.

    Attributes:
        registry: metrics registry (no-op when telemetry is off).
        trace: structured event sink (no-op when telemetry is off).
        decisions: placement-decision log (no-op when telemetry is off).
        profiler: hierarchical wall-clock span profiler (no-op when off).
        timeline_interval: when set, the experiment runner attaches a
            :class:`~repro.metrics.timeline.TimelineSampler` at this
            sampling interval (seconds of sim time) to every replayed
            fabric and appends ``(label, samples)`` to :attr:`timelines`.
        timelines: collected ``(label, samples)`` pairs, one per run.
    """

    __slots__ = (
        "registry",
        "trace",
        "decisions",
        "profiler",
        "causal",
        "timeline_interval",
        "timelines",
    )

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceSink] = None,
        decisions: Optional[DecisionLog] = None,
        profiler: Optional[SpanProfiler] = None,
        causal: Optional[CausalTracer] = None,
        timeline_interval: Optional[float] = None,
    ) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.trace = trace if trace is not None else NULL_TRACE
        self.decisions = (
            decisions if decisions is not None else NULL_DECISIONS
        )
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.causal = causal if causal is not None else NULL_CAUSAL
        self.timeline_interval = timeline_interval
        self.timelines: List[Tuple[str, Sequence]] = []

    @property
    def enabled(self) -> bool:
        """True when any channel would actually record something."""
        return (
            self.registry.enabled
            or self.trace.active
            or self.decisions.active
            or self.profiler.enabled
            or self.causal.active
            or self.timeline_interval is not None
        )

    def close(self) -> None:
        """Flush/close the trace sink (safe to call repeatedly)."""
        self.trace.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Shared disabled telemetry (the default everywhere; ``enabled`` False).
NULL_TELEMETRY = Telemetry()


def create_telemetry(
    *,
    trace_path: Optional[str] = None,
    metrics: bool = True,
    decisions: bool = True,
    profile: bool = False,
    causal: bool = False,
    timeline_interval: Optional[float] = None,
    wall_clock: bool = False,
    trace_rotate_bytes: Optional[int] = None,
    trace_backups: int = 4,
) -> Telemetry:
    """Convenience factory for a fully armed :class:`Telemetry`.

    Args:
        trace_path: write a JSONL trace here (omit for no trace file);
            a ``.gz`` suffix writes a deterministic gzip stream.
        metrics: collect counters/gauges/histograms/timers.
        decisions: collect the placement-decision log.
        profile: attach a :class:`SpanProfiler` (hierarchical wall-clock
            spans; never perturbs simulation results).
        causal: attach a :class:`CausalTracer` recording the request-
            scoped causal stream (purely observational; changes no
            simulation records).
        timeline_interval: attach fabric timeline samplers at this
            interval (seconds of simulation time).
        wall_clock: stamp trace records with wall time (breaks
            byte-identical determinism; ``wall*`` fields only).
        trace_rotate_bytes: rotate the trace every this-many
            uncompressed bytes (``path.1`` … ``path.N`` backups; read
            the set back with :func:`read_rotated_trace`); None writes
            one unbounded file.
        trace_backups: rotated segments kept beyond the active one.
    """
    sink: Optional[TraceSink] = None
    if trace_path is not None:
        if trace_rotate_bytes is not None:
            sink = RotatingJsonlTraceSink(
                trace_path,
                max_bytes=trace_rotate_bytes,
                backups=trace_backups,
                wall_clock=wall_clock,
            )
        else:
            sink = JsonlTraceSink(trace_path, wall_clock=wall_clock)
    return Telemetry(
        registry=MetricsRegistry() if metrics else None,
        trace=sink,
        decisions=DecisionLog(trace=sink) if decisions else None,
        profiler=SpanProfiler() if profile else None,
        causal=CausalTracer() if causal else None,
        timeline_interval=timeline_interval,
    )


from repro.telemetry.report import render_report  # noqa: E402  (cycle-free tail import)
