"""Flight recorder: a bounded ring of recent events plus post-mortems.

A :class:`FlightRecorder` keeps the last ``capacity`` trace/causal
events in memory (a ring — total memory is fixed no matter how long the
session runs).  When something goes wrong — an SLO burn-rate alert
fires, the serving loop stalls, or the session crashes — :meth:`dump`
writes a self-contained **post-mortem bundle** directory:

* ``bundle.json``  — manifest: reason, sim time, the offending SLO and
  its burn rates, the seed/scenario identity, and a ready-to-run replay
  command (the determinism contract makes the replay exact).
* ``events.jsonl`` — the ring's recent events, causal-stream shaped, so
  ``repro explain bundle/events.jsonl`` decomposes the blame.
* ``metrics.json`` — the full metrics snapshot at dump time (counters,
  gauges, histogram sketches, span profile when available).
* ``scenario.json`` / ``faults.json`` — the exact session inputs.

Determinism contract: the recorder only *observes* — it polls the
causal tracer's event list by offset and never mutates simulation
state.  Bundle contents are keyed by simulated time; directory names
are sequence-numbered, not timestamped, so repeated runs dump
identically-named bundles.
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from typing import Dict, List, Optional

__all__ = ["FlightRecorder", "DEFAULT_CAPACITY"]

#: Default ring capacity (events). ~2k events cover several seconds of a
#: busy session — enough context to explain a breach, small enough to
#: hold always-on.
DEFAULT_CAPACITY = 2048

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("-", text.lower()).strip("-") or "event"


class FlightRecorder:
    """Bounded event ring with post-mortem bundle dumps."""

    def __init__(
        self,
        out_dir: str,
        *,
        capacity: int = DEFAULT_CAPACITY,
        registry=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.out_dir = out_dir
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self._headers: List[Dict[str, object]] = []
        self._source: Optional[List[Dict[str, object]]] = None
        self._cursor = 0
        self._seq = 0
        self.dumps: List[str] = []
        self._ctr_dumps = None
        if registry is not None and registry.enabled:
            self._ctr_dumps = registry.counter("recorder.dumps_written")

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def attach(self, events: List[Dict[str, object]]) -> None:
        """Follow a live event list (e.g. ``CausalTracer.events``).

        The recorder ingests by offset, so the producer appends freely
        and :meth:`poll` picks up only what is new.
        """
        self._source = events
        self._cursor = 0

    def poll(self) -> int:
        """Ingest events appended to the attached source; return count."""
        if self._source is None:
            return 0
        new = self._source[self._cursor:]
        if new:
            for event in new:
                # Stream headers (run_start) are pinned: the blame
                # decomposition in `repro explain` groups by them, and
                # they must survive ring eviction.
                if event.get("ev") == "run_start":
                    self._headers.append(event)
            self._ring.extend(new)
            self._cursor += len(new)
        return len(new)

    def observe(self, event: Dict[str, object]) -> None:
        """Record one extra event (e.g. an SLO alert's ``as_event()``)."""
        self._ring.append(dict(event))

    @property
    def events(self) -> List[Dict[str, object]]:
        """Pinned headers (when evicted from the ring) + recent ring."""
        ring = list(self._ring)
        evicted = [
            header
            for header in self._headers
            if not any(event is header for event in ring)
        ]
        return evicted + ring

    @property
    def dumps_written(self) -> int:
        return len(self.dumps)

    # ------------------------------------------------------------------
    # Post-mortems
    # ------------------------------------------------------------------
    def dump(
        self,
        reason: str,
        *,
        now: float,
        offending: Optional[Dict[str, object]] = None,
        metrics: Optional[Dict[str, object]] = None,
        scenario: Optional[Dict[str, object]] = None,
        faults: Optional[Dict[str, object]] = None,
        context: Optional[Dict[str, object]] = None,
    ) -> str:
        """Write one post-mortem bundle; return its directory path.

        Args:
            reason: short machine-friendly cause ("slo-breach", "stall",
                "crash", ...); becomes part of the directory name.
            now: simulated time of the dump.
            offending: the breached SLO's spec + burn rates, if any.
            metrics: a metrics snapshot (``registry.as_dict()`` shape).
            scenario: the session scenario's ``to_dict()`` for replay.
            faults: the armed fault plan's ``to_dict()``.
            context: any extra identity (seed, scenario path, argv...).
        """
        self.poll()
        self._seq += 1
        name = f"bundle-{self._seq:03d}-{_slug(reason)}"
        path = os.path.join(self.out_dir, name)
        os.makedirs(path, exist_ok=True)

        events = self.events
        files = ["bundle.json", "events.jsonl"]
        with open(
            os.path.join(path, "events.jsonl"), "w", encoding="utf-8"
        ) as fp:
            for event in events:
                fp.write(json.dumps(event, separators=(",", ":"), default=str))
                fp.write("\n")
        if metrics is not None:
            files.append("metrics.json")
            with open(
                os.path.join(path, "metrics.json"), "w", encoding="utf-8"
            ) as fp:
                json.dump(metrics, fp, indent=2, sort_keys=True, default=str)
                fp.write("\n")
        if scenario is not None:
            files.append("scenario.json")
            with open(
                os.path.join(path, "scenario.json"), "w", encoding="utf-8"
            ) as fp:
                json.dump(scenario, fp, indent=2, sort_keys=True)
                fp.write("\n")
        if faults is not None:
            files.append("faults.json")
            with open(
                os.path.join(path, "faults.json"), "w", encoding="utf-8"
            ) as fp:
                json.dump(faults, fp, indent=2, sort_keys=True)
                fp.write("\n")

        manifest: Dict[str, object] = {
            "reason": reason,
            "t": now,
            "seq": self._seq,
            "events": len(events),
            "files": sorted(files),
        }
        if offending is not None:
            manifest["offending"] = offending
        if context is not None:
            manifest["context"] = dict(context)
        seed = (context or {}).get("seed")
        if scenario is not None and seed is not None:
            manifest["replay"] = (
                f"repro serve {name}/scenario.json --seed {seed}"
                + (f" --faults {name}/faults.json" if faults else "")
            )
        with open(
            os.path.join(path, "bundle.json"), "w", encoding="utf-8"
        ) as fp:
            json.dump(manifest, fp, indent=2, sort_keys=True)
            fp.write("\n")

        self.dumps.append(path)
        if self._ctr_dumps is not None:
            self._ctr_dumps.inc()
        return path
