"""Placement-decision explainability: why each host was chosen.

For every placement the stack records the full evidence trail —
candidate set, preferred-host filter outcome, per-candidate predicted
completion times, and the chosen host — and, once the placed flow (or
coflow) completes, joins the *realized* completion time back onto the
decision to yield a per-decision prediction error.  This generalizes the
paper's Figure 10 (per-flow FCT prediction error) to every decision of
every policy: the ``minfct`` baseline's predictions join the same way,
and score-based baselines (minLoad's queued bits, minDist's hop counts)
keep their evidence even though no error is defined for them.

The log mirrors each record into the structured trace
(:mod:`repro.telemetry.trace`) as ``placement_decision`` /
``decision_outcome`` events, and keeps everything in memory for the
report and for programmatic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.stats import mean, percentile
from repro.telemetry.trace import NULL_TRACE, TraceSink

__all__ = ["DecisionRecord", "DecisionLog", "NULL_DECISIONS"]

#: ``score_kind`` for scores that are predicted completion times in
#: seconds; only these decisions can be joined into prediction errors.
PREDICTED_TIME = "predicted_time"


@dataclass
class DecisionRecord:
    """One placement decision with its evidence and (later) its outcome.

    Attributes:
        decision_id: monotonically increasing id within one log.
        time: simulation time of the decision.
        kind: ``"flow"``, ``"coflow"`` (one flow of a coflow), or
            ``"reducer"`` (many-to-one destination choice).
        placement: policy label (set via :meth:`DecisionLog.set_context`).
        network_policy: scheduling policy label (same source).
        tag: the task/coflow tag used to join the realized outcome.
        size: bits the decision placed.
        data_node: where the input data lives.
        candidates: the full candidate set offered to the policy.
        preferred: survivors of the preferred-host (node state) filter —
            equal to ``candidates`` for policies without the filter.
        used_fallback: the filter emptied and fell back to everyone.
        scores: per-scored-host ``(host, score)`` pairs, in query order.
        score_kind: what the scores mean (``"predicted_time"`` seconds,
            ``"queued_bits"``, ``"hops"``, ``"random"``...).
        chosen: the winning host.
        predicted_time: predicted completion seconds for ``chosen``
            (``None`` when scores are not times).
        realized_time: actual completion seconds, joined at completion.
        error: relative prediction error ``(realized - predicted) /
            predicted`` (``None`` until joined, or when undefined).
    """

    decision_id: int
    time: float
    kind: str
    placement: str
    network_policy: str
    tag: str
    size: float
    data_node: object
    candidates: Tuple[object, ...]
    preferred: Tuple[object, ...]
    used_fallback: bool
    scores: Tuple[Tuple[object, float], ...]
    score_kind: str
    chosen: object
    predicted_time: Optional[float] = None
    realized_time: Optional[float] = None
    error: Optional[float] = None


class DecisionLog:
    """Collects :class:`DecisionRecord` and joins realized outcomes."""

    active = True

    def __init__(self, *, trace: Optional[TraceSink] = None) -> None:
        self._trace = trace if trace is not None else NULL_TRACE
        self._records: List[DecisionRecord] = []
        self._pending: Dict[str, List[DecisionRecord]] = {}
        self._placement = ""
        self._network_policy = ""
        self._next_id = 0

    # ------------------------------------------------------------------
    # Context
    # ------------------------------------------------------------------
    def set_context(
        self, *, placement: str = "", network_policy: str = ""
    ) -> None:
        """Label subsequent decisions with the current run's policies.

        Clears unjoined decisions of the previous run (their flows will
        never complete in the new run's fabric).
        """
        self._placement = placement
        self._network_policy = network_policy
        self._pending.clear()

    def bind(self, fabric) -> None:
        """Join flow completions from ``fabric`` back onto decisions."""
        fabric.add_completion_listener(
            lambda flow, record: self.note_completed(
                record.tag, record.fct, record.completion_time
            )
        )

    def bind_coflows(self, tracker) -> None:
        """Join coflow completions from ``tracker`` onto decisions."""
        tracker.add_completion_listener(
            lambda coflow, record: self.note_completed(
                record.tag, record.cct, record.completion_time
            )
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def records(self) -> Sequence[DecisionRecord]:
        return tuple(self._records)

    def record(
        self,
        *,
        time: float,
        kind: str,
        tag: str,
        size: float,
        data_node,
        candidates: Sequence,
        preferred: Sequence,
        used_fallback: bool,
        scores: Sequence[Tuple[object, float]],
        score_kind: str,
        chosen,
        predicted_time: Optional[float] = None,
    ) -> DecisionRecord:
        """Record one decision and emit its ``placement_decision`` event."""
        rec = DecisionRecord(
            decision_id=self._next_id,
            time=time,
            kind=kind,
            placement=self._placement,
            network_policy=self._network_policy,
            tag=tag,
            size=size,
            data_node=data_node,
            candidates=tuple(candidates),
            preferred=tuple(preferred),
            used_fallback=used_fallback,
            scores=tuple(scores),
            score_kind=score_kind,
            chosen=chosen,
            predicted_time=predicted_time,
        )
        self._next_id += 1
        self._records.append(rec)
        if tag and score_kind == PREDICTED_TIME:
            self._pending.setdefault(tag, []).append(rec)
        if self._trace.active:
            self._trace.emit(
                "placement_decision",
                time,
                {
                    "id": rec.decision_id,
                    "kind": kind,
                    "placement": rec.placement,
                    "tag": tag,
                    "size": size,
                    "data_node": data_node,
                    "candidates": list(rec.candidates),
                    "preferred": list(rec.preferred),
                    "fallback": used_fallback,
                    "scores": {
                        str(host): score for host, score in rec.scores
                    },
                    "score_kind": score_kind,
                    "chosen": chosen,
                    "predicted": predicted_time,
                },
            )
        return rec

    def note_completed(self, tag: str, realized: float, time: float) -> None:
        """Join a realized completion time onto the decision(s) for ``tag``.

        Flow tags are unique per arrival so this resolves one decision;
        coflow tags resolve every constituent decision at once (they all
        share the coflow's CCT).
        """
        pending = self._pending.pop(tag, None)
        if not pending:
            return
        for rec in pending:
            rec.realized_time = realized
            if rec.predicted_time is not None and rec.predicted_time > 0:
                rec.error = (
                    realized - rec.predicted_time
                ) / rec.predicted_time
            if self._trace.active:
                self._trace.emit(
                    "decision_outcome",
                    time,
                    {
                        "id": rec.decision_id,
                        "tag": tag,
                        "predicted": rec.predicted_time,
                        "realized": realized,
                        "error": rec.error,
                    },
                )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def error_summary(self) -> Dict[str, object]:
        """Prediction-error statistics over all joined decisions."""
        errors = [r.error for r in self._records if r.error is not None]
        joined = sum(1 for r in self._records if r.realized_time is not None)
        out: Dict[str, object] = {
            "decisions": len(self._records),
            "joined": joined,
            "with_error": len(errors),
        }
        if errors:
            abs_errors = [abs(e) for e in errors]
            out.update(
                mean_abs_error=mean(abs_errors),
                median_error=percentile(errors, 50),
                p95_abs_error=percentile(abs_errors, 95),
            )
        return out


class _NullDecisionLog(DecisionLog):
    """Disabled log: records nothing, joins nothing."""

    active = False

    def record(self, **kwargs):  # type: ignore[override]
        return None

    def note_completed(self, tag, realized, time) -> None:
        pass

    def bind(self, fabric) -> None:
        pass

    def bind_coflows(self, tracker) -> None:
        pass


#: Shared disabled decision log (the default everywhere).
NULL_DECISIONS = _NullDecisionLog()
