"""Declarative SLOs evaluated with fast/slow-window burn rates.

An :class:`SLOSpec` names one service-level objective over the metric
streams a :class:`~repro.telemetry.timeseries.TimeseriesStore` rolls up.
Four kinds cover the placement service's health surface:

* ``latency`` — at most ``1 - objective`` of a histogram's observations
  may exceed ``threshold`` (e.g. "99% of decisions under 1 ms").
* ``ratio`` — a bad-event counter may grow at most ``budget`` as a
  fraction of a total counter (e.g. drops / offers, stale fallbacks /
  decisions).
* ``quantile`` — a windowed quantile must stay at or below ``bound``
  (e.g. "p95 of fabric.fct_gap <= 1.5x optimal").
* ``gauge`` — a gauge's window peak must stay at or below ``bound``
  (e.g. admission queue depth).

Every kind reduces to a **burn rate**: how fast the error budget is
being consumed, where 1.0 means "exactly on objective".  Following the
multiwindow multi-burn-rate recipe, an alert fires only when *both* the
fast window (catches sharp regressions quickly) and the slow window
(guards against flapping on noise) burn at or above
``burn_threshold``; it resolves when the fast window recovers.

Determinism contract: evaluation is a pure function of (specs, rollup
store, sim time).  Alerts are surfaced through the engine's history,
the status stream, the flight recorder, and the ``slo.*`` counters —
never through the simulation's trace/record streams, so arming SLOs
cannot change simulation output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "SLOSpec",
    "SLOAlert",
    "SLOEngine",
    "load_slo_specs",
    "default_slo_specs",
    "DEFAULT_SLOS",
]

_KINDS = ("latency", "ratio", "quantile", "gauge")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over rolled-up metric streams."""

    name: str
    kind: str
    metric: str
    #: latency: bad-event threshold on the histogram's values.
    threshold: float = 0.0
    #: latency: target good fraction (error budget is ``1 - objective``).
    objective: float = 0.99
    #: ratio: denominator counter (numerator is ``metric``).
    total: str = ""
    #: ratio: allowed bad fraction of ``total``.
    budget: float = 0.01
    #: quantile: which quantile to bound.
    q: float = 0.99
    #: quantile/gauge: the bound the watched value must stay under.
    bound: float = 0.0
    fast_window: float = 30.0
    slow_window: float = 300.0
    burn_threshold: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(
                f"SLO {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {_KINDS})"
            )
        if not self.name:
            raise ConfigError("SLO spec needs a non-empty name")
        if not self.metric:
            raise ConfigError(f"SLO {self.name!r}: needs a metric")
        if not 0.0 < self.fast_window <= self.slow_window:
            raise ConfigError(
                f"SLO {self.name!r}: windows must satisfy "
                f"0 < fast_window <= slow_window, got "
                f"{self.fast_window!r}/{self.slow_window!r}"
            )
        if self.burn_threshold <= 0:
            raise ConfigError(
                f"SLO {self.name!r}: burn_threshold must be positive"
            )
        if self.kind == "latency":
            if not 0.0 < self.objective < 1.0:
                raise ConfigError(
                    f"SLO {self.name!r}: objective must be in (0, 1), "
                    f"got {self.objective!r}"
                )
            if self.threshold <= 0:
                raise ConfigError(
                    f"SLO {self.name!r}: latency threshold must be positive"
                )
        elif self.kind == "ratio":
            if not self.total:
                raise ConfigError(
                    f"SLO {self.name!r}: ratio kind needs a total counter"
                )
            if not 0.0 < self.budget <= 1.0:
                raise ConfigError(
                    f"SLO {self.name!r}: budget must be in (0, 1], "
                    f"got {self.budget!r}"
                )
        elif self.kind in ("quantile", "gauge"):
            if self.bound <= 0:
                raise ConfigError(
                    f"SLO {self.name!r}: {self.kind} kind needs a "
                    "positive bound"
                )
            if self.kind == "quantile" and not 0.0 <= self.q <= 1.0:
                raise ConfigError(
                    f"SLO {self.name!r}: q must be in [0, 1], got {self.q!r}"
                )

    # ------------------------------------------------------------------
    def burn_rate(
        self, store, *, window: float, now: float
    ) -> Optional[float]:
        """Budget burn over ``window`` ending at ``now`` (None = no data).

        1.0 means exactly on objective; above 1.0 the budget is being
        consumed faster than it regenerates.
        """
        if self.kind == "latency":
            bad = store.bad_fraction(
                self.metric, self.threshold, window=window, now=now
            )
            if bad is None:
                return None
            return bad / (1.0 - self.objective)
        if self.kind == "ratio":
            total = store.counter_delta(self.total, window=window, now=now)
            if total <= 0:
                return None
            bad = store.counter_delta(self.metric, window=window, now=now)
            return (bad / total) / self.budget
        if self.kind == "quantile":
            value = store.quantile(self.metric, self.q, window=window, now=now)
            if value is None:
                return None
            return value / self.bound
        # gauge
        peak = store.gauge_max(self.metric, window=window, now=now)
        if peak is None:
            return None
        return peak / self.bound

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "burn_threshold": self.burn_threshold,
        }
        if self.kind == "latency":
            out["threshold"] = self.threshold
            out["objective"] = self.objective
        elif self.kind == "ratio":
            out["total"] = self.total
            out["budget"] = self.budget
        elif self.kind == "quantile":
            out["q"] = self.q
            out["bound"] = self.bound
        else:
            out["bound"] = self.bound
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, spec: Dict[str, object]) -> "SLOSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(spec) - known
        if unknown:
            raise ConfigError(
                f"SLO spec {spec.get('name', '?')!r}: "
                f"unknown keys {sorted(unknown)}"
            )
        return cls(**spec)  # type: ignore[arg-type]


@dataclass(frozen=True)
class SLOAlert:
    """One alert transition: an SLO started or stopped firing."""

    slo: str
    state: str  # "firing" | "resolved"
    t: float
    burn_fast: Optional[float]
    burn_slow: Optional[float]
    spec: SLOSpec = field(compare=False)

    def as_event(self) -> Dict[str, object]:
        """Causal-stream-shaped event (``repro explain`` passes unknown
        kinds through, so these annotate a bundle without breaking it)."""
        return {
            "ev": "slo_alert",
            "t": self.t,
            "slo": self.slo,
            "state": self.state,
            "kind": self.spec.kind,
            "metric": self.spec.metric,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "burn_threshold": self.spec.burn_threshold,
        }


class SLOEngine:
    """Evaluates a set of SLO specs against a rollup store.

    Call :meth:`evaluate` at each heartbeat; it returns the alert
    *transitions* (newly firing / newly resolved) and maintains firing
    state, history, and the ``slo.evaluations`` / ``slo.alerts_fired``
    counters on the supplied registry.
    """

    def __init__(self, specs: Sequence[SLOSpec], store, registry=None) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO names in {names}")
        self.specs = list(specs)
        self.store = store
        self.alerts: List[SLOAlert] = []
        self._firing: Dict[str, SLOAlert] = {}
        self._ctr_evaluations = None
        self._ctr_fired = None
        if registry is not None and registry.enabled:
            self._ctr_evaluations = registry.counter("slo.evaluations")
            self._ctr_fired = registry.counter("slo.alerts_fired")

    @property
    def firing(self) -> List[str]:
        return sorted(self._firing)

    @property
    def alerts_fired(self) -> int:
        return sum(1 for a in self.alerts if a.state == "firing")

    def burn_rates(
        self, now: float
    ) -> Dict[str, Tuple[Optional[float], Optional[float]]]:
        """``{slo: (burn_fast, burn_slow)}`` at ``now`` (for dashboards)."""
        return {
            spec.name: (
                spec.burn_rate(
                    self.store, window=spec.fast_window, now=now
                ),
                spec.burn_rate(
                    self.store, window=spec.slow_window, now=now
                ),
            )
            for spec in self.specs
        }

    def evaluate(self, now: float) -> List[SLOAlert]:
        """Evaluate every spec at sim time ``now``; return transitions."""
        if self._ctr_evaluations is not None:
            self._ctr_evaluations.inc()
        transitions: List[SLOAlert] = []
        for spec in self.specs:
            fast = spec.burn_rate(self.store, window=spec.fast_window, now=now)
            slow = spec.burn_rate(self.store, window=spec.slow_window, now=now)
            breaching = (
                fast is not None
                and slow is not None
                and fast >= spec.burn_threshold
                and slow >= spec.burn_threshold
            )
            was_firing = spec.name in self._firing
            if breaching and not was_firing:
                alert = SLOAlert(
                    slo=spec.name,
                    state="firing",
                    t=now,
                    burn_fast=fast,
                    burn_slow=slow,
                    spec=spec,
                )
                self._firing[spec.name] = alert
                transitions.append(alert)
                if self._ctr_fired is not None:
                    self._ctr_fired.inc()
            elif was_firing and not (
                fast is not None and fast >= spec.burn_threshold
            ):
                # Resolve on fast-window recovery (or data drying up).
                del self._firing[spec.name]
                transitions.append(
                    SLOAlert(
                        slo=spec.name,
                        state="resolved",
                        t=now,
                        burn_fast=fast,
                        burn_slow=slow,
                        spec=spec,
                    )
                )
        self.alerts.extend(transitions)
        return transitions

    def summary(self, now: Optional[float] = None) -> Dict[str, object]:
        """Status-record payload: firing set, counts, current burns."""
        out: Dict[str, object] = {
            "specs": len(self.specs),
            "firing": self.firing,
            "alerts_fired": self.alerts_fired,
        }
        if now is not None:
            out["burn"] = {
                name: [fast, slow]
                for name, (fast, slow) in sorted(
                    self.burn_rates(now).items()
                )
            }
        return out


# ----------------------------------------------------------------------
# Spec loading
# ----------------------------------------------------------------------
#: The stock objectives for the placement service (`repro serve --slo
#: default`): decision latency, FCT stretch vs optimal, admission queue
#: depth, and the drop / stale-fallback budget.
DEFAULT_SLOS: Tuple[Dict[str, object], ...] = (
    {
        "name": "decision-latency-p99",
        "kind": "latency",
        "metric": "service.decision_latency_seconds",
        "threshold": 0.005,
        "objective": 0.99,
        "fast_window": 10.0,
        "slow_window": 60.0,
        "description": "99% of placement decisions within 5 ms",
    },
    {
        "name": "fct-stretch-p95",
        "kind": "quantile",
        "metric": "fabric.fct_gap",
        "q": 0.95,
        "bound": 16.0,
        "fast_window": 10.0,
        "slow_window": 60.0,
        "description": "p95 flow completion within 16x optimal",
    },
    {
        "name": "queue-depth",
        "kind": "gauge",
        "metric": "service.queue_depth",
        "bound": 64.0,
        "fast_window": 10.0,
        "slow_window": 60.0,
        "description": "admission queue peak below 64 tasks",
    },
    {
        "name": "drop-rate",
        "kind": "ratio",
        "metric": "faults.tasks_dropped",
        "total": "service.tasks_offered",
        "budget": 0.01,
        "fast_window": 10.0,
        "slow_window": 60.0,
        "description": "under 1% of offered tasks dropped",
    },
    {
        "name": "stale-fallback-rate",
        "kind": "ratio",
        "metric": "placement.stale_fallbacks",
        "total": "service.decisions",
        "budget": 0.05,
        "fast_window": 10.0,
        "slow_window": 60.0,
        "description": "under 5% of decisions on stale fallbacks",
    },
)


def default_slo_specs() -> List[SLOSpec]:
    return [SLOSpec.from_dict(dict(spec)) for spec in DEFAULT_SLOS]


def load_slo_specs(source) -> List[SLOSpec]:
    """Load SLO specs from a JSON file path, a dict, or a list.

    Accepts ``{"slos": [...]}`` or a bare list of spec objects; the
    literal string ``"default"`` yields the stock service objectives.
    """
    if source == "default":
        return default_slo_specs()
    if isinstance(source, (str,)):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                source = json.load(handle)
        except OSError as exc:
            raise ConfigError(f"cannot read SLO spec {source!r}: {exc}")
        except ValueError as exc:
            raise ConfigError(f"invalid JSON in SLO spec {source!r}: {exc}")
    if isinstance(source, dict):
        source = source.get("slos", source.get("specs"))
        if source is None:
            raise ConfigError("SLO spec object needs an 'slos' list")
    if not isinstance(source, list) or not source:
        raise ConfigError("SLO spec must be a non-empty list of objects")
    specs = [SLOSpec.from_dict(dict(item)) for item in source]
    # Trip duplicate-name validation early.
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate SLO names in {names}")
    return specs
