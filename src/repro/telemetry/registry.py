"""Zero-dependency metrics registry: counters, gauges, histograms, timers.

The registry is the quantitative half of the telemetry layer
(:mod:`repro.telemetry`): subsystems record *how much* happened (flows
completed, rate recomputes, control messages) and *how long* it took
(wall-clock per subsystem via :class:`Timer`), while the trace sink
(:mod:`repro.telemetry.trace`) records *what* happened event by event.

Metrics carry two time dimensions:

* **sim-time** values (FCTs, latencies) are observed into histograms —
  they are deterministic and safe to assert on in tests;
* **wall-time** values accumulate in timers — they are measurement-only
  and never enter the deterministic trace.

Disabled telemetry must cost (almost) nothing, so every class has a
no-op twin and :data:`NULL_REGISTRY` hands out shared no-op instances;
hot call sites additionally pre-bind their metric objects and guard on
:attr:`MetricsRegistry.enabled` so the disabled path is a single
attribute check.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional

from repro.telemetry.timeseries import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
]


class Counter:
    """Monotonically increasing count (e.g. ``fabric.flows_completed``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (e.g. ``engine.heap_high_water``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the maximum over all writes (high-water marks)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Distribution of observed values.

    Exact ``count``/``sum``/``min``/``max`` plus a fixed-memory
    log-bucketed :class:`~repro.telemetry.timeseries.QuantileSketch`
    (relative quantile error bounded by its ``alpha``, default 1%) in
    place of the former unbounded raw-sample list — a histogram now
    costs the same after a million observations as after a hundred,
    merges exactly across workers, and feeds windowed rollups via
    sketch deltas.
    """

    __slots__ = ("name", "count", "total", "min", "max", "sketch")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.sketch = QuantileSketch()

    def observe(self, value: float, count: int = 1) -> None:
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.sketch.add(value, count)

    def summary(self) -> Dict[str, object]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.sketch.quantile(0.50),
            "p95": self.sketch.quantile(0.95),
            "p99": self.sketch.quantile(0.99),
            "sketch": self.sketch.to_dict(),
        }


class _TimerSpan:
    """One timed section (context manager handed out by :meth:`Timer.time`)."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        timer = self._timer
        timer.calls += 1
        timer.wall_seconds += time.perf_counter() - self._start


class Timer:
    """Accumulated wall-clock time of one subsystem (profiling hook).

    Nested timers each accumulate their own *inclusive* time: the
    ``placement`` timer includes the ``bus`` calls it makes, which in
    turn include ``predictor`` work.
    """

    __slots__ = ("name", "calls", "wall_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.wall_seconds = 0.0

    def time(self) -> _TimerSpan:
        return _TimerSpan(self)


# ----------------------------------------------------------------------
# No-op twins (shared singletons; every method is a cheap pass)
# ----------------------------------------------------------------------
class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float, count: int = 1) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullTimer(Timer):
    __slots__ = ()

    def time(self) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN


class MetricsRegistry:
    """Namespace of metrics, created on first use, JSON-exportable."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}

    # ------------------------------------------------------------------
    # Accessors (get-or-create; names are dotted, e.g. "bus.messages")
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def timer(self, name: str) -> Timer:
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = Timer(name)
        return metric

    # ------------------------------------------------------------------
    # Read-only iteration (windowed-rollup sampling)
    # ------------------------------------------------------------------
    def counters_by_name(self) -> Dict[str, Counter]:
        """Live counter objects by name (treat as read-only)."""
        return self._counters

    def gauges_by_name(self) -> Dict[str, Gauge]:
        return self._gauges

    def histograms_by_name(self) -> Dict[str, Histogram]:
        return self._histograms

    def timers_by_name(self) -> Dict[str, Timer]:
        return self._timers

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe snapshot of every metric."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
            "timers": {
                name: {"calls": t.calls, "wall_seconds": t.wall_seconds}
                for name, t in sorted(self._timers.items())
            },
        }

    def write_json(
        self, path: str, *, extra: Optional[Dict[str, object]] = None
    ) -> None:
        """Write the snapshot (plus optional ``extra`` keys) to ``path``."""
        payload = dict(self.as_dict())
        if extra:
            payload.update(extra)
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True, default=str)
            fp.write("\n")


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: hands out shared no-op metrics."""

    enabled = False

    _COUNTER = _NullCounter("null")
    _GAUGE = _NullGauge("null")
    _HISTOGRAM = _NullHistogram("null")
    _TIMER = _NullTimer("null")

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str) -> Histogram:
        return self._HISTOGRAM

    def timer(self, name: str) -> Timer:
        return self._TIMER


#: Shared disabled registry (the default everywhere).
NULL_REGISTRY = NullMetricsRegistry()


class SnapshotAccumulator:
    """Fixed-memory incremental fold of registry snapshots.

    The streaming campaign executor feeds one cell's
    :meth:`MetricsRegistry.as_dict` snapshot at a time through
    :meth:`add` and never retains the snapshot afterwards — the
    accumulator's state is bounded by the number of *distinct metric
    names*, not the number of cells.  :func:`merge_snapshots` is a thin
    wrapper over this class, so "fold one at a time" and "merge the
    whole batch" are literally the same arithmetic in the same order —
    the foundation of the streaming/batch byte-identity guarantee.

    Merge semantics (unchanged from the original ``merge_snapshots``):
    counters sum, gauges keep the maximum (high-water), timers sum calls
    and wall seconds, histograms combine count/mean/min/max exactly and
    merge their quantile sketches when every input carried one.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, Dict[str, float]] = {}
        self._histograms: Dict[str, Dict[str, object]] = {}
        self._kind_of: Dict[str, str] = {}
        self._snapshots = 0

    @property
    def snapshots_folded(self) -> int:
        return self._snapshots

    def _claim(self, name: str, kind: str) -> None:
        previous = self._kind_of.setdefault(name, kind)
        if previous != kind:
            raise ValueError(
                f"cannot merge heterogeneous snapshots: metric {name!r} "
                f"is a {previous} in one snapshot and a {kind} in another"
            )

    def add(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold one snapshot into the accumulator (snapshot not retained)."""
        self._snapshots += 1
        for name, value in snapshot.get("counters", {}).items():
            self._claim(name, "counter")
            self._counters[name] = self._counters.get(name, 0.0) + value
        for name, value in snapshot.get("gauges", {}).items():
            self._claim(name, "gauge")
            if name not in self._gauges or value > self._gauges[name]:
                self._gauges[name] = value
        for name, stats in snapshot.get("timers", {}).items():
            self._claim(name, "timer")
            into = self._timers.setdefault(
                name, {"calls": 0, "wall_seconds": 0.0}
            )
            into["calls"] += stats.get("calls", 0)
            into["wall_seconds"] += stats.get("wall_seconds", 0.0)
        for name, summary in snapshot.get("histograms", {}).items():
            self._claim(name, "histogram")
            count = summary.get("count", 0)
            if not count:
                continue
            into = self._histograms.get(name)
            if into is None:
                into = self._histograms[name] = {
                    "count": count,
                    "total": summary["mean"] * count,
                    "min": summary["min"],
                    "max": summary["max"],
                    "sketch": None,
                    "sketchless": 0,
                }
            else:
                into["count"] += count
                into["total"] += summary["mean"] * count
                into["min"] = min(into["min"], summary["min"])
                into["max"] = max(into["max"], summary["max"])
            if "sketch" in summary:
                incoming = QuantileSketch.from_dict(summary["sketch"])
                if into["sketch"] is None:
                    into["sketch"] = incoming
                else:
                    into["sketch"].merge(incoming)  # type: ignore[union-attr]
            else:
                into["sketchless"] += 1

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """The merged snapshot (same shape as ``merge_snapshots``)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: _merged_histogram(h)
                for name, h in sorted(self._histograms.items())
            },
            "timers": dict(sorted(self._timers.items())),
        }


def merge_snapshots(snapshots) -> Dict[str, Dict[str, object]]:
    """Fold several :meth:`MetricsRegistry.as_dict` snapshots into one.

    The campaign orchestrator runs each cell with its own registry (in
    its own process); this merges the exported snapshots into one
    campaign-level view: counters sum, gauges keep the maximum
    (high-water semantics), timers sum calls and wall seconds, and
    histograms combine ``count``/``mean``/``min``/``max`` exactly.
    Summaries that carry a serialized quantile sketch (every snapshot
    written since the sketch-backed registry) additionally merge their
    sketches, so merged histograms keep p50/p95/p99; legacy summaries
    without one merge exact stats only and omit the quantiles.

    Implemented as one :class:`SnapshotAccumulator` pass, so batch
    merging and the campaign executor's streaming fold are the same
    arithmetic in the same order.

    Raises:
        ValueError: when the snapshots are *heterogeneous* — the same
            metric name appears under different kinds (e.g. a counter in
            one run and a histogram in another).  Summing a count into a
            distribution would silently corrupt both, so the conflict is
            an error naming the metric and both kinds.
    """
    accumulator = SnapshotAccumulator()
    for snapshot in snapshots:
        accumulator.add(snapshot)
    return accumulator.as_dict()


def _merged_histogram(h: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {
        "count": h["count"],
        "mean": h["total"] / h["count"],  # type: ignore[operator]
        "min": h["min"],
        "max": h["max"],
    }
    # Quantiles are claimed only when *every* input carried a sketch —
    # a partial merge would silently misweight the sketchless runs.
    if h["sketch"] is not None and not h["sketchless"]:
        merged = h["sketch"]
        out["p50"] = merged.quantile(0.50)  # type: ignore[union-attr]
        out["p95"] = merged.quantile(0.95)  # type: ignore[union-attr]
        out["p99"] = merged.quantile(0.99)  # type: ignore[union-attr]
        out["sketch"] = merged.to_dict()  # type: ignore[union-attr]
    return out
