"""Request-scoped causal tracing and FCT/CCT blame decomposition.

The fifth observability channel: while the event trace answers *what*
happened and the decision log answers *what the controller believed*,
the causal layer answers *why a particular task was slow*.  Every task
arrival is assigned a trace id which is threaded — without any signature
changes, the simulator being single-threaded and synchronous — through
the placement decision, the control-plane messages it triggered, each
spawned flow's full lifecycle (submit, every rate change, reroute,
abort, completion) and, for coflows, the coflow's completion.

On top of the recorded stream, :func:`analyze` rebuilds each run's rate
and capacity step functions and splits every realized FCT into four
**additive** components (the decomposition invariant: they sum to the
FCT within float dust, enforced by tests at 1e-6):

* ``serialization`` — time the flow would have needed for the bits
  moved at the pristine (run-start) bottleneck capacity of its path.
  Deliberately *not* the engine's submit-frozen optimal: that bakes in
  any capacity fault active at submit, which would charge the fault's
  slowdown to serialization;
* ``queueing`` — time spent queued in the placement daemon.  Placement
  is synchronous in this fluid model, so the component is structurally
  zero; it is carried explicitly so the schema survives an asynchronous
  control plane, and the *estimated* control latency rides separately in
  ``control_messages`` / the decision log;
* ``fault`` — extra serialization caused by degraded/failed capacity on
  the flow's path (``bits/r_fault - bits/r_base`` per constant-capacity
  segment, where ``r_fault`` is the path bottleneck *during* the segment
  and ``r_base`` the pristine one).  Signed: a boost above the pristine
  capacity yields negative fault time;
* ``contention`` — the remainder of each segment
  (``dt - bits/r_fault``): time lost to competing flows and to the
  scheduling policy itself, attributed per segment to the most-utilised
  path link and split across the flows sharing it in proportion to
  their rates.

Per coflow, the critical path is the last-completing constituent flow:
``CCT = skew + serialization + queueing + contention + fault`` where
``skew`` is how long the coflow waited for the critical flow to even be
submitted.

Determinism contract: recording is purely observational (no simulation
state is read back mutably), so tracing on changes no records, and the
recorded stream — and therefore :meth:`CausalTracer.save`'s JSONL — is
byte-identical across same-(seed, plan) runs.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.stats import percentile
from repro.telemetry.trace import _json_safe, read_trace

__all__ = [
    "CausalTracer",
    "NullCausalTracer",
    "NULL_CAUSAL",
    "FlowBlame",
    "CoflowBlame",
    "RunAnalysis",
    "analyze",
    "load_causal",
    "aggregate_blame",
    "blame_shares_dict",
    "render_explain",
    "BLAME_COMPONENTS",
]

#: The additive FCT components, in display order.
BLAME_COMPONENTS = ("serialization", "queueing", "contention", "fault")


class CausalTracer:
    """Records the causal event stream for one or more runs.

    All ``on_*`` hooks are purely observational; hot call sites pre-bind
    the tracer (or ``None`` when inactive) so the disabled path costs a
    single identity check, mirroring the trace/metrics idiom.
    """

    active = True

    def __init__(self) -> None:
        self._events: List[Dict[str, object]] = []
        self._run = -1
        self._open = False
        # Window declarations recorded before a run opens (the injector
        # arms before the runner binds its run context) park here and are
        # flushed right after the next ``run_start``.
        self._pending: List[Dict[str, object]] = []
        self._next_trace = 0
        self._current: Optional[int] = None
        self._task_messages = 0
        self._task_dropped = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Dict[str, object]]:
        """The recorded stream (list of dicts, chronological per run)."""
        return self._events

    @property
    def events_recorded(self) -> int:
        return len(self._events)

    @property
    def current_trace(self) -> Optional[int]:
        """The open task's trace id (None outside a task context)."""
        return self._current

    # ------------------------------------------------------------------
    # Run boundaries
    # ------------------------------------------------------------------
    def begin_run(
        self,
        t: float,
        *,
        placement: str,
        network_policy: str,
        capacities: Dict[str, float],
    ) -> int:
        self._run += 1
        self._open = True
        self._current = None
        self._events.append(
            {
                "ev": "run_start",
                "t": t,
                "run": self._run,
                "placement": placement,
                "network_policy": network_policy,
                "capacities": dict(sorted(capacities.items())),
            }
        )
        if self._pending:
            self._events.extend(self._pending)
            self._pending.clear()
        return self._run

    def end_run(self, t: float, *, records: int) -> None:
        self._open = False
        self._events.append(
            {"ev": "run_end", "t": t, "run": self._run, "records": records}
        )

    # ------------------------------------------------------------------
    # Task (request) context
    # ------------------------------------------------------------------
    def begin_task(
        self, t: float, *, tag: str, kind: str, size: float, data_node: str
    ) -> int:
        trace = self._next_trace
        self._next_trace += 1
        self._current = trace
        self._task_messages = 0
        self._task_dropped = 0
        self._events.append(
            {
                "ev": "task",
                "t": t,
                "trace": trace,
                "tag": tag,
                "kind": kind,
                "size": size,
                "data_node": data_node,
            }
        )
        return trace

    def end_task(self, t: float) -> None:
        if self._current is None:
            return
        self._events.append(
            {
                "ev": "task_end",
                "t": t,
                "trace": self._current,
                "messages": self._task_messages,
                "dropped": self._task_dropped,
            }
        )
        self._current = None

    def note_bus_message(self) -> None:
        if self._current is not None:
            self._task_messages += 1

    def note_bus_drop(self) -> None:
        if self._current is not None:
            self._task_dropped += 1

    # ------------------------------------------------------------------
    # Placement decisions
    # ------------------------------------------------------------------
    def on_decision(
        self,
        t: float,
        *,
        chosen: str,
        predicted: float,
        fallback: bool,
        stale: bool,
    ) -> None:
        self._events.append(
            {
                "ev": "decision",
                "t": t,
                "trace": self._current,
                "chosen": chosen,
                "predicted": predicted,
                "fallback": fallback,
                "stale": stale,
            }
        )

    # ------------------------------------------------------------------
    # Flow lifecycle (fabric hooks)
    # ------------------------------------------------------------------
    def on_flow_submit(
        self,
        t: float,
        flow_id: int,
        *,
        src: str,
        dst: str,
        size: float,
        path: Sequence[str],
        optimal: float,
    ) -> None:
        self._events.append(
            {
                "ev": "flow",
                "t": t,
                "trace": self._current,
                "flow": flow_id,
                "src": src,
                "dst": dst,
                "size": size,
                "path": list(path),
                "optimal": optimal,
            }
        )

    def on_rate(self, t: float, flow_id: int, rate: float) -> None:
        self._events.append(
            {"ev": "rate", "t": t, "flow": flow_id, "rate": rate}
        )

    def on_reroute(self, t: float, flow_id: int, path: Sequence[str]) -> None:
        self._events.append(
            {"ev": "reroute", "t": t, "flow": flow_id, "path": list(path)}
        )

    def on_abort(self, t: float, flow_id: int, remaining: float) -> None:
        self._events.append(
            {"ev": "abort", "t": t, "flow": flow_id, "remaining": remaining}
        )

    def on_flow_done(
        self, t: float, flow_id: int, *, fct: float, optimal: float
    ) -> None:
        self._events.append(
            {
                "ev": "done",
                "t": t,
                "flow": flow_id,
                "fct": fct,
                "optimal": optimal,
            }
        )

    def on_capacity(self, t: float, link: str, capacity: float) -> None:
        self._events.append(
            {"ev": "cap", "t": t, "link": link, "capacity": capacity}
        )

    # ------------------------------------------------------------------
    # Coflows
    # ------------------------------------------------------------------
    def on_coflow(
        self,
        t: float,
        coflow_id: int,
        *,
        tag: str,
        flows: Sequence[int],
        total: float,
    ) -> None:
        self._events.append(
            {
                "ev": "coflow",
                "t": t,
                "trace": self._current,
                "coflow": coflow_id,
                "tag": tag,
                "flows": list(flows),
                "total": total,
            }
        )

    def on_coflow_done(
        self, t: float, coflow_id: int, *, cct: float, optimal: float
    ) -> None:
        self._events.append(
            {
                "ev": "coflow_done",
                "t": t,
                "coflow": coflow_id,
                "cct": cct,
                "optimal": optimal,
            }
        )

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def on_fault(self, t: float, payload: Dict[str, object]) -> None:
        record: Dict[str, object] = {"ev": "fault", "t": t}
        record.update(payload)
        self._events.append(record)

    def on_window(self, t: float, payload: Dict[str, object]) -> None:
        record: Dict[str, object] = {"ev": "window", "t": t}
        record.update(payload)
        if self._open:
            self._events.append(record)
        else:
            self._pending.append(record)

    # ------------------------------------------------------------------
    # Engine stats
    # ------------------------------------------------------------------
    def on_engine_stats(
        self, t: float, *, events_processed: int, heap_high_water: int
    ) -> None:
        self._events.append(
            {
                "ev": "engine",
                "t": t,
                "run": self._run,
                "events_processed": events_processed,
                "heap_high_water": heap_high_water,
            }
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> int:
        """Write the stream as JSONL; returns the number of lines."""
        with open(path, "w", encoding="utf-8") as fp:
            for event in self._events:
                fp.write(json.dumps(_json_safe(event), separators=(",", ":")))
                fp.write("\n")
        return len(self._events)


class NullCausalTracer(CausalTracer):
    """Disabled tracer: every hook is a no-op (shared singleton)."""

    active = False

    def begin_run(self, t, *, placement, network_policy, capacities) -> int:
        return -1

    def end_run(self, t, *, records) -> None:
        pass

    def begin_task(self, t, *, tag, kind, size, data_node) -> int:
        return -1

    def end_task(self, t) -> None:
        pass

    def note_bus_message(self) -> None:
        pass

    def note_bus_drop(self) -> None:
        pass

    def on_decision(self, t, *, chosen, predicted, fallback, stale) -> None:
        pass

    def on_flow_submit(
        self, t, flow_id, *, src, dst, size, path, optimal
    ) -> None:
        pass

    def on_rate(self, t, flow_id, rate) -> None:
        pass

    def on_reroute(self, t, flow_id, path) -> None:
        pass

    def on_abort(self, t, flow_id, remaining) -> None:
        pass

    def on_flow_done(self, t, flow_id, *, fct, optimal) -> None:
        pass

    def on_capacity(self, t, link, capacity) -> None:
        pass

    def on_coflow(self, t, coflow_id, *, tag, flows, total) -> None:
        pass

    def on_coflow_done(self, t, coflow_id, *, cct, optimal) -> None:
        pass

    def on_fault(self, t, payload) -> None:
        pass

    def on_window(self, t, payload) -> None:
        pass

    def on_engine_stats(self, t, *, events_processed, heap_high_water) -> None:
        pass


#: Shared disabled tracer (the default everywhere).
NULL_CAUSAL = NullCausalTracer()


def load_causal(path: str) -> List[Dict[str, object]]:
    """Read a saved causal stream (tolerates a truncated final line)."""
    return read_trace(path)


# ======================================================================
# Decomposition engine
# ======================================================================
@dataclass
class FlowBlame:
    """One completed flow's FCT split into additive blame components.

    ``serialization + queueing + contention + fault == fct`` within
    float tolerance (the decomposition invariant).
    """

    run: int
    placement: str
    network_policy: str
    flow: int
    trace: Optional[int]
    tag: str
    src: str
    dst: str
    size: float
    arrival: float
    completion: float
    fct: float
    optimal: float
    serialization: float
    queueing: float
    contention: float
    fault: float
    bottleneck_link: Optional[str] = None
    contenders: Tuple[Tuple[str, float], ...] = ()
    rate_changes: int = 0
    reroutes: int = 0
    stale_fallback: bool = False
    control_messages: int = 0

    @property
    def components(self) -> Dict[str, float]:
        return {
            "serialization": self.serialization,
            "queueing": self.queueing,
            "contention": self.contention,
            "fault": self.fault,
        }

    @property
    def residual(self) -> float:
        """``sum(components) - fct`` — float dust when the invariant holds."""
        return (
            self.serialization + self.queueing + self.contention + self.fault
        ) - self.fct


@dataclass
class CoflowBlame:
    """A coflow's CCT explained through its critical-path flow."""

    run: int
    placement: str
    network_policy: str
    coflow: int
    trace: Optional[int]
    tag: str
    arrival: float
    completion: float
    cct: float
    optimal: float
    critical_flow: int
    skew: float
    serialization: float
    queueing: float
    contention: float
    fault: float
    bottleneck_link: Optional[str] = None
    contenders: Tuple[Tuple[str, float], ...] = ()
    width: int = 0

    @property
    def components(self) -> Dict[str, float]:
        return {
            "skew": self.skew,
            "serialization": self.serialization,
            "queueing": self.queueing,
            "contention": self.contention,
            "fault": self.fault,
        }

    @property
    def residual(self) -> float:
        return (
            self.skew
            + self.serialization
            + self.queueing
            + self.contention
            + self.fault
        ) - self.cct


@dataclass
class RunAnalysis:
    """Everything :func:`analyze` derives from one run's causal stream."""

    run: int
    placement: str
    network_policy: str
    flows: Dict[int, FlowBlame] = field(default_factory=dict)
    coflows: Dict[int, CoflowBlame] = field(default_factory=dict)
    aborted: List[Dict[str, object]] = field(default_factory=list)
    faults: List[Dict[str, object]] = field(default_factory=list)
    windows: List[Dict[str, object]] = field(default_factory=list)
    tasks: Dict[int, Dict[str, object]] = field(default_factory=dict)


def _value_at(steps: List[Tuple[float, float]], t: float) -> float:
    """Step-function value in effect at time ``t``."""
    idx = bisect_right(steps, (t, float("inf"))) - 1
    if idx < 0:
        idx = 0
    return steps[idx][1]


def _min_over(steps: List[Tuple[float, float]], t0: float, t1: float) -> float:
    """Minimum step-function value over ``[t0, t1)``."""
    idx = bisect_right(steps, (t0, float("inf"))) - 1
    if idx < 0:
        idx = 0
    low = steps[idx][1]
    j = idx + 1
    while j < len(steps) and steps[j][0] < t1:
        if steps[j][1] < low:
            low = steps[j][1]
        j += 1
    return low


def _change_times(
    steps: List[Tuple[float, float]], t0: float, t1: float
) -> List[float]:
    """Step change times strictly inside ``(t0, t1)``."""
    idx = bisect_right(steps, (t0, float("inf")))
    out: List[float] = []
    while idx < len(steps) and steps[idx][0] < t1:
        out.append(steps[idx][0])
        idx += 1
    return out


class _FlowState:
    """Raw per-flow evidence accumulated while scanning one run."""

    __slots__ = (
        "flow", "trace", "tag", "src", "dst", "size", "arrival", "optimal",
        "rate_steps", "path_steps", "done", "abort", "rate_changes",
        "reroutes",
    )

    def __init__(self, event: Dict[str, object]) -> None:
        self.flow = event["flow"]
        self.trace = event.get("trace")
        self.tag = ""
        self.src = event["src"]
        self.dst = event["dst"]
        self.size = event["size"]
        self.arrival = event["t"]
        self.optimal = event["optimal"]
        self.rate_steps: List[Tuple[float, float]] = [(self.arrival, 0.0)]
        self.path_steps: List[Tuple[float, Tuple[str, ...]]] = [
            (self.arrival, tuple(event["path"]))
        ]
        self.done: Optional[Dict[str, object]] = None
        self.abort: Optional[Dict[str, object]] = None
        self.rate_changes = 0
        self.reroutes = 0

    @property
    def end(self) -> Optional[float]:
        if self.done is not None:
            return self.done["t"]
        if self.abort is not None:
            return self.abort["t"]
        return None

    def rate_at(self, t: float) -> float:
        return _value_at(self.rate_steps, t)

    def path_at(self, t: float) -> Tuple[str, ...]:
        idx = bisect_right(self.path_steps, (t, ("￿",))) - 1
        if idx < 0:
            idx = 0
        return self.path_steps[idx][1]

    def alive_at(self, t: float) -> bool:
        end = self.end
        return self.arrival <= t and (end is None or t < end)


def _push_step(steps: List[Tuple[float, object]], t: float, value) -> None:
    """Append a breakpoint, replacing a same-time predecessor."""
    if steps and steps[-1][0] == t:
        steps[-1] = (t, value)
    else:
        steps.append((t, value))


def _label(tag: str, flow_id: int) -> str:
    return f"{tag}#{flow_id}" if tag else f"flow#{flow_id}"


def _decompose_flow(
    state: _FlowState,
    cap_steps: Dict[str, List[Tuple[float, float]]],
    members: Dict[str, List[_FlowState]],
    run: int,
    placement: str,
    network_policy: str,
) -> FlowBlame:
    done = state.done
    fct = done["fct"]
    optimal = done["optimal"]
    completion = done["t"]
    r_opt = state.size / optimal if optimal > 0 else 0.0

    serialization = 0.0
    contention = 0.0
    fault = 0.0
    link_blame: Dict[str, float] = {}
    contender_seconds: Dict[str, float] = {}

    # Segment boundaries: every rate change, every reroute, and — within
    # a segment — every capacity change on the current path, so that
    # ``r_fault`` is exact per constant-capacity piece.
    boundaries = sorted(
        {t for t, _ in state.rate_steps}
        | {t for t, _ in state.path_steps}
        | {state.arrival, completion}
    )
    boundaries = [t for t in boundaries if state.arrival <= t <= completion]

    for t0, t1 in zip(boundaries, boundaries[1:]):
        if t1 <= t0:
            continue
        path = state.path_at(t0)
        # Serialization baseline: the pristine (run-start) bottleneck along
        # the current path.  The engine's ``optimal`` is frozen at submit and
        # bakes in any capacity fault active at that instant, which would
        # charge the fault's slowdown to serialization; measuring against the
        # pristine capacities keeps fault positive for flows submitted
        # mid-fault and zero once the link is restored.
        r_base = min(
            (cap_steps[link][0][1] for link in path if link in cap_steps),
            default=0.0,
        )
        if r_base <= 0.0:
            r_base = r_opt
        cuts = {t0, t1}
        for link in path:
            steps = cap_steps.get(link)
            if steps:
                cuts.update(_change_times(steps, t0, t1))
        pieces = sorted(cuts)
        rate = state.rate_at(t0)
        for p0, p1 in zip(pieces, pieces[1:]):
            dt = p1 - p0
            if dt <= 0:
                continue
            bits = rate * dt
            if bits <= 0.0 or r_base <= 0.0:
                # Preempted (zero-rate) pieces are pure contention; local
                # flows (optimal == 0) never reach here (fct == 0).
                contention += dt
                seg_contention = dt
                seg_fault = 0.0
            else:
                r_fault = min(
                    (
                        _min_over(cap_steps[link], p0, p1)
                        for link in path
                        if link in cap_steps
                    ),
                    default=r_base,
                )
                ser = bits / r_base
                if r_fault > 0.0:
                    at_fault_rate = bits / r_fault
                    seg_fault = at_fault_rate - ser
                    seg_contention = dt - at_fault_rate
                else:  # pragma: no cover - flows never cross dead links
                    seg_fault = 0.0
                    seg_contention = dt - ser
                serialization += ser
                fault += seg_fault
                contention += seg_contention
            if seg_contention > 1e-12:
                _attribute_contention(
                    state,
                    path,
                    p0,
                    seg_contention,
                    cap_steps,
                    members,
                    link_blame,
                    contender_seconds,
                )

    bottleneck = None
    if link_blame:
        bottleneck = max(link_blame.items(), key=lambda kv: (kv[1], kv[0]))[0]
    contenders = tuple(
        sorted(
            contender_seconds.items(), key=lambda kv: (-kv[1], kv[0])
        )[:5]
    )
    return FlowBlame(
        run=run,
        placement=placement,
        network_policy=network_policy,
        flow=state.flow,
        trace=state.trace,
        tag=state.tag,
        src=state.src,
        dst=state.dst,
        size=state.size,
        arrival=state.arrival,
        completion=completion,
        fct=fct,
        optimal=optimal,
        serialization=serialization,
        queueing=0.0,
        contention=contention,
        fault=fault,
        bottleneck_link=bottleneck,
        contenders=contenders,
        rate_changes=state.rate_changes,
        reroutes=state.reroutes,
    )


def _attribute_contention(
    state: _FlowState,
    path: Tuple[str, ...],
    t: float,
    seconds: float,
    cap_steps: Dict[str, List[Tuple[float, float]]],
    members: Dict[str, List[_FlowState]],
    link_blame: Dict[str, float],
    contender_seconds: Dict[str, float],
) -> None:
    """Charge a contended piece to the busiest path link's co-tenants."""
    best_link: Optional[str] = None
    best_util = -1.0
    best_others: List[Tuple[str, float]] = []
    for link in sorted(path):
        cap = _value_at(cap_steps[link], t) if link in cap_steps else 0.0
        others: List[Tuple[str, float]] = []
        used = 0.0
        for other in members.get(link, ()):  # includes ``state`` itself
            if not other.alive_at(t) or link not in other.path_at(t):
                continue
            rate = other.rate_at(t)
            used += rate
            if other.flow != state.flow and rate > 0.0:
                others.append((_label(other.tag, other.flow), rate))
        util = used / cap if cap > 0 else float("inf")
        if util > best_util:
            best_util = util
            best_link = link
            best_others = others
    if best_link is None:  # pragma: no cover - paths are never empty here
        return
    link_blame[best_link] = link_blame.get(best_link, 0.0) + seconds
    total = sum(rate for _label_, rate in best_others)
    if total > 0.0:
        for label, rate in best_others:
            contender_seconds[label] = (
                contender_seconds.get(label, 0.0) + seconds * rate / total
            )
    else:
        # Nobody else held the link: the scheduling policy itself paused
        # or throttled the flow (e.g. FCFS ordering, MADD pacing).
        contender_seconds["<policy>"] = (
            contender_seconds.get("<policy>", 0.0) + seconds
        )


def analyze(events: Sequence[Dict[str, object]]) -> List[RunAnalysis]:
    """Rebuild per-run blame decompositions from a causal stream."""
    analyses: List[RunAnalysis] = []
    run_events: List[List[Dict[str, object]]] = []
    for event in events:
        if event.get("ev") == "run_start":
            run_events.append([])
        if run_events:
            run_events[-1].append(event)
    for chunk in run_events:
        analyses.append(_analyze_run(chunk))
    return analyses


def _analyze_run(events: List[Dict[str, object]]) -> RunAnalysis:
    head = events[0]
    run = head.get("run", 0)
    placement = head.get("placement", "")
    network_policy = head.get("network_policy", "")
    cap_steps: Dict[str, List[Tuple[float, float]]] = {
        link: [(head["t"], cap)]
        for link, cap in head.get("capacities", {}).items()
    }
    states: Dict[int, _FlowState] = {}
    tasks: Dict[int, Dict[str, object]] = {}
    coflows: Dict[int, Dict[str, object]] = {}
    analysis = RunAnalysis(
        run=run, placement=placement, network_policy=network_policy
    )
    for event in events[1:]:
        ev = event["ev"]
        if ev == "flow":
            states[event["flow"]] = _FlowState(event)
        elif ev == "rate":
            state = states.get(event["flow"])
            if state is not None:
                _push_step(state.rate_steps, event["t"], event["rate"])
                state.rate_changes += 1
        elif ev == "reroute":
            state = states.get(event["flow"])
            if state is not None:
                _push_step(
                    state.path_steps, event["t"], tuple(event["path"])
                )
                state.reroutes += 1
        elif ev == "done":
            state = states.get(event["flow"])
            if state is not None:
                state.done = event
        elif ev == "abort":
            state = states.get(event["flow"])
            if state is not None:
                state.abort = event
        elif ev == "cap":
            steps = cap_steps.setdefault(
                event["link"], [(event["t"], event["capacity"])]
            )
            _push_step(steps, event["t"], event["capacity"])
        elif ev == "task":
            tasks[event["trace"]] = dict(event)
        elif ev == "task_end":
            task = tasks.get(event["trace"])
            if task is not None:
                task["messages"] = event.get("messages", 0)
                task["dropped"] = event.get("dropped", 0)
        elif ev == "decision":
            task = tasks.get(event.get("trace"))
            if task is not None:
                task["decision"] = dict(event)
        elif ev == "coflow":
            coflows[event["coflow"]] = dict(event)
        elif ev == "coflow_done":
            coflow = coflows.get(event["coflow"])
            if coflow is not None:
                coflow["done"] = event
        elif ev == "fault":
            analysis.faults.append(dict(event))
        elif ev == "window":
            analysis.windows.append(dict(event))

    # Tag flows from their tasks (flows carry the trace id; tasks the tag).
    for state in states.values():
        task = tasks.get(state.trace) if state.trace is not None else None
        if task is not None:
            state.tag = task.get("tag", "")

    members: Dict[str, List[_FlowState]] = {}
    for flow_id in sorted(states):
        state = states[flow_id]
        seen = set()
        for _t, path in state.path_steps:
            for link in path:
                if link not in seen:
                    seen.add(link)
                    members.setdefault(link, []).append(state)

    for flow_id in sorted(states):
        state = states[flow_id]
        if state.done is not None:
            blame = _decompose_flow(
                state, cap_steps, members, run, placement, network_policy
            )
            task = tasks.get(state.trace) if state.trace is not None else None
            if task is not None:
                decision = task.get("decision")
                blame.stale_fallback = bool(
                    decision.get("stale") if decision else False
                )
                blame.control_messages = int(task.get("messages", 0))
            analysis.flows[flow_id] = blame
        elif state.abort is not None:
            analysis.aborted.append(
                {
                    "flow": state.flow,
                    "tag": state.tag,
                    "t": state.abort["t"],
                    "remaining": state.abort["remaining"],
                }
            )

    for coflow_id in sorted(coflows):
        raw = coflows[coflow_id]
        done = raw.get("done")
        if done is None:
            continue
        flow_ids = [f for f in raw.get("flows", []) if f in analysis.flows]
        if not flow_ids:
            continue
        crit_id = max(
            flow_ids, key=lambda f: (analysis.flows[f].completion, f)
        )
        crit = analysis.flows[crit_id]
        arrival = raw["t"]
        analysis.coflows[coflow_id] = CoflowBlame(
            run=run,
            placement=placement,
            network_policy=network_policy,
            coflow=coflow_id,
            trace=raw.get("trace"),
            tag=raw.get("tag", ""),
            arrival=arrival,
            completion=crit.completion,
            cct=done["cct"],
            optimal=done["optimal"],
            critical_flow=crit_id,
            skew=crit.arrival - arrival,
            serialization=crit.serialization,
            queueing=crit.queueing,
            contention=crit.contention,
            fault=crit.fault,
            bottleneck_link=crit.bottleneck_link,
            contenders=crit.contenders,
            width=len(raw.get("flows", [])),
        )
    analysis.tasks = tasks
    return analysis


# ======================================================================
# Aggregation and rendering
# ======================================================================
def aggregate_blame(blames: Sequence[FlowBlame]) -> Dict[str, object]:
    """Blame-component *shares* of FCT aggregated across flows.

    Returns ``{component: Aggregate}`` (mean/stdev/p50/p95/p99 of
    ``component / fct`` over completed flows with positive FCT); empty
    components map to ``None``.
    """
    from repro.experiments.repetitions import aggregate

    shares: Dict[str, List[float]] = {c: [] for c in BLAME_COMPONENTS}
    for blame in blames:
        if blame.fct > 0:
            for component in BLAME_COMPONENTS:
                shares[component].append(
                    getattr(blame, component) / blame.fct
                )
    return {
        component: aggregate(values) if values else None
        for component, values in shares.items()
    }


def blame_shares_dict(blames: Sequence[FlowBlame]) -> Dict[str, object]:
    """JSON-safe form of :func:`aggregate_blame` for campaign payloads."""
    out: Dict[str, object] = {}
    for component, agg in aggregate_blame(blames).items():
        out[component] = agg.as_dict() if agg is not None else None
    return out


def _fmt_secs(value: float) -> str:
    return f"{value:.6g}s"


def _share(value: float, total: float) -> str:
    if total <= 0:
        return "-"
    return f"{100.0 * value / total:.1f}%"


def _flow_lines(blame: FlowBlame, rank: int) -> List[str]:
    lines = [
        f"#{rank} task={blame.tag or '<untagged>'} flow={blame.flow} "
        f"trace={blame.trace} run={blame.placement}/{blame.network_policy}",
        f"   {blame.src} -> {blame.dst}  size={blame.size:.6g}b  "
        f"fct={_fmt_secs(blame.fct)}  optimal={_fmt_secs(blame.optimal)}  "
        f"slowdown={blame.fct / blame.optimal:.2f}x"
        if blame.optimal > 0
        else f"   {blame.src} -> {blame.dst}  size={blame.size:.6g}b  "
             f"fct={_fmt_secs(blame.fct)} (local)",
    ]
    parts = "  ".join(
        f"{component}={_fmt_secs(getattr(blame, component))} "
        f"({_share(getattr(blame, component), blame.fct)})"
        for component in BLAME_COMPONENTS
    )
    lines.append(f"   blame: {parts}")
    if blame.bottleneck_link is not None:
        contenders = ", ".join(
            f"{label} ({_fmt_secs(seconds)})"
            for label, seconds in blame.contenders
        )
        lines.append(
            f"   bottleneck={blame.bottleneck_link}"
            + (f"  contenders: {contenders}" if contenders else "")
        )
    flags = []
    if blame.stale_fallback:
        flags.append("stale_fallback")
    if blame.reroutes:
        flags.append(f"reroutes={blame.reroutes}")
    lines.append(
        f"   rate_changes={blame.rate_changes} "
        f"control_messages={blame.control_messages}"
        + ("  " + " ".join(flags) if flags else "")
    )
    return lines


def _coflow_lines(blame: CoflowBlame, rank: int) -> List[str]:
    lines = [
        f"#{rank} coflow={blame.coflow} task={blame.tag or '<untagged>'} "
        f"width={blame.width} run={blame.placement}/{blame.network_policy}",
        f"   cct={_fmt_secs(blame.cct)}  optimal={_fmt_secs(blame.optimal)}  "
        f"critical_flow={blame.critical_flow}",
    ]
    parts = "  ".join(
        f"{name}={_fmt_secs(value)} ({_share(value, blame.cct)})"
        for name, value in blame.components.items()
    )
    lines.append(f"   blame: {parts}")
    if blame.bottleneck_link is not None:
        lines.append(f"   critical-path bottleneck={blame.bottleneck_link}")
    return lines


def render_explain(
    analyses: Sequence[RunAnalysis],
    *,
    task: Optional[str] = None,
    worst: Optional[int] = None,
    pct: Optional[float] = None,
) -> str:
    """Render the blame report the ``repro explain`` CLI prints."""
    flows = [b for a in analyses for b in a.flows.values()]
    coflows = [b for a in analyses for b in a.coflows.values()]
    aborted = [entry for a in analyses for entry in a.aborted]
    faults = [f for a in analyses for f in a.faults]

    if task is not None:
        flows = [b for b in flows if b.tag == task]
        coflows = [b for b in coflows if b.tag == task]
    if pct is not None and flows:
        threshold = percentile([b.fct for b in flows], pct)
        flows = [b for b in flows if b.fct >= threshold]
    flows.sort(key=lambda b: (-b.fct, b.run, b.flow))
    coflows.sort(key=lambda b: (-b.cct, b.run, b.coflow))
    if worst is None and task is None and pct is None:
        worst = 5
    if worst is not None:
        flows = flows[:worst]
        coflows = coflows[:worst]

    lines = ["causal blame report", "==================="]
    runs = ", ".join(
        f"{a.placement}/{a.network_policy}"
        f" ({len(a.flows)} flows, {len(a.coflows)} coflows)"
        for a in analyses
    )
    lines.append(f"runs: {runs}")
    if faults:
        lines.append(
            "faults applied: "
            + ", ".join(
                f"{f.get('kind')}@t={f.get('time', f.get('t'))}"
                for f in faults
            )
        )
    all_flows = [b for a in analyses for b in a.flows.values()]
    shares = aggregate_blame(all_flows)
    share_parts = []
    for component in BLAME_COMPONENTS:
        agg = shares.get(component)
        if agg is not None:
            share_parts.append(
                f"{component} p50={agg.p50:.3f} p95={agg.p95:.3f} "
                f"p99={agg.p99:.3f}"
            )
    if share_parts:
        lines.append("component shares: " + "; ".join(share_parts))

    if flows:
        lines += ["", "slowest flows"]
        for rank, blame in enumerate(flows, 1):
            lines += _flow_lines(blame, rank)
    if coflows:
        lines += ["", "slowest coflows (critical path)"]
        for rank, blame in enumerate(coflows, 1):
            lines += _coflow_lines(blame, rank)
    if aborted:
        lines += ["", f"aborted flows: {len(aborted)}"]
        for entry in aborted[:10]:
            lines.append(
                f"   flow={entry['flow']} tag={entry['tag']} "
                f"t={entry['t']:.6g} remaining={entry['remaining']:.6g}b"
            )
    if not flows and not coflows:
        lines += ["", "no completed flows matched the filter"]
    return "\n".join(lines)
