"""Coflow placement heuristics (§5.1.2 and the Fig. 7 baselines).

NEAT places a coflow's flows *sequentially in descending size order*, each
through the ordinary flow placement algorithm against the updated network
state: larger flows are likelier to be critical, so they get first pick of
lightly loaded destinations.  The Fig. 7 baselines are adapted the same way
the paper describes: minLoad places each flow (largest first) on the
least-loaded node; minDist keeps a coflow's flows in one rack near the
input data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import itertools

from repro.coflow.coflow import Coflow
from repro.coflow.tracking import CoflowTracker
from repro.errors import PlacementError
from repro.placement.base import PlacementPolicy, PlacementRequest
from repro.predictor.coflow_cct import CoflowCCTPredictor
from repro.predictor.fabric_state import coflow_link_state
from repro.topology.base import NodeId

Transfer = Tuple[NodeId, float]  # (data node, size in bits)


def place_coflow_sequential(
    policy: PlacementPolicy,
    tracker: CoflowTracker,
    transfers: Sequence[Transfer],
    candidates: Sequence[NodeId],
    *,
    tag: str = "",
    distinct_hosts: bool = False,
) -> Coflow:
    """NEAT's sequential heuristic: place largest flow first (§5.1.2).

    Each flow is submitted immediately after it is placed, so the next
    placement sees the updated network state.

    Args:
        policy: any placement policy (NEAT or a baseline).
        tracker: coflow lifecycle tracker (owns the fabric).
        transfers: the coflow's ``(data_node, size)`` pairs.
        candidates: eligible destination hosts.
        tag: label for the coflow and its flows.
        distinct_hosts: place each flow on a different host (e.g. one
            reducer per destination), as long as candidates remain.
    """
    if not transfers:
        raise PlacementError("coflow needs at least one transfer")
    coflow = tracker.new_coflow(tag=tag)
    remaining_candidates: List[NodeId] = list(candidates)
    ordered = sorted(transfers, key=lambda t: (-t[1], t[0]))
    coflow_total = sum(size for _node, size in transfers)
    # NEAT scores with the scheme's CCT model when the policy exposes it
    # (§6.1: "for CCT prediction we use the prediction models
    # corresponding to each evaluated coflow scheduling scheme").
    cct_aware = getattr(policy, "place_coflow_flow", None)
    if not getattr(policy, "supports_coflow_prediction", True):
        cct_aware = None  # NEAT built without a CCT predictor
    for data_node, size in ordered:
        if not remaining_candidates:
            remaining_candidates = list(candidates)
        if cct_aware is not None:
            host = cct_aware(
                size,
                coflow_total,
                data_node,
                tuple(remaining_candidates),
                tag=tag,
            )
        else:
            request = PlacementRequest(
                size=size,
                data_node=data_node,
                candidates=tuple(remaining_candidates),
                tag=tag,
            )
            host = policy.place(request)
            policy.notify_placed(request, host)
        tracker.submit_flow(coflow, data_node, host, size)
        if distinct_hosts:
            remaining_candidates.remove(host)
    tracker.seal(coflow)
    return coflow


def place_coflow_joint(
    tracker: CoflowTracker,
    transfers: Sequence[Transfer],
    candidates: Sequence[NodeId],
    predictor: CoflowCCTPredictor,
    *,
    tag: str = "",
    max_assignments: int = 50_000,
) -> Coflow:
    """Jointly optimal coflow placement by exhaustive search (§5.1.2).

    The paper notes that jointly placing all flows of a one-to-many /
    many-to-many coflow has exponential complexity and falls back to the
    sequential heuristic; for *small* coflows the search is affordable,
    which makes this the reference the heuristic is measured against
    (``benchmarks/bench_ablation_joint.py``).

    Scores an assignment (one destination per flow) by the bottleneck of
    the predictor's per-link objective over every edge link the coflow
    would use, against the current network state.

    Raises:
        PlacementError: if ``len(candidates) ** len(transfers)`` exceeds
            ``max_assignments`` (use the sequential heuristic instead).
    """
    if not transfers:
        raise PlacementError("coflow needs at least one transfer")
    if not candidates:
        raise PlacementError("joint placement needs candidates")
    num_assignments = len(candidates) ** len(transfers)
    if num_assignments > max_assignments:
        raise PlacementError(
            f"{num_assignments} assignments exceed max_assignments="
            f"{max_assignments}; use place_coflow_sequential"
        )
    fabric = tracker.fabric
    topo = fabric.topology
    total = sum(size for _node, size in transfers)

    # Snapshot the states of every potentially involved edge link once.
    links = {}
    for node, _size in transfers:
        links[topo.host_uplink(node).link_id] = None
    for host in candidates:
        links[topo.host_downlink(host).link_id] = None
    states = {
        link_id: coflow_link_state(fabric, link_id) for link_id in links
    }

    best_assignment = None
    best_score = float("inf")
    for assignment in itertools.product(candidates, repeat=len(transfers)):
        # Per-link bytes this assignment would add.
        loads: dict = {}
        for (node, size), host in zip(transfers, assignment):
            if node == host:
                continue  # local read: no link used
            up = topo.host_uplink(node).link_id
            down = topo.host_downlink(host).link_id
            loads[up] = loads.get(up, 0.0) + size
            loads[down] = loads.get(down, 0.0) + size
        if not loads:
            score = 0.0
        else:
            score = max(
                predictor.link_objective(total, on_link, states[link_id])
                for link_id, on_link in loads.items()
            )
        if score < best_score:
            best_score = score
            best_assignment = assignment

    coflow = tracker.new_coflow(tag=tag)
    for (node, size), host in zip(transfers, best_assignment):
        tracker.submit_flow(coflow, node, host, size)
    tracker.seal(coflow)
    return coflow


class RackLocalCoflowPlacer:
    """The paper's minDist adaptation for coflows (Fig. 7).

    The largest flow is placed closest to its input data; subsequent flows
    of the same coflow are then restricted to that rack when possible, so
    the coflow stays rack-local.
    """

    def __init__(self, base_policy: PlacementPolicy) -> None:
        self._base = base_policy

    def place_coflow(
        self,
        tracker: CoflowTracker,
        transfers: Sequence[Transfer],
        candidates: Sequence[NodeId],
        *,
        tag: str = "",
    ) -> Coflow:
        if not transfers:
            raise PlacementError("coflow needs at least one transfer")
        topo = tracker.fabric.topology
        coflow = tracker.new_coflow(tag=tag)
        ordered = sorted(transfers, key=lambda t: (-t[1], t[0]))
        anchor_rack: Optional[int] = None
        for data_node, size in ordered:
            pool: Sequence[NodeId] = candidates
            if anchor_rack is not None:
                in_rack = [
                    h for h in candidates if topo.node(h).rack == anchor_rack
                ]
                if in_rack:
                    pool = in_rack
            request = PlacementRequest(
                size=size,
                data_node=data_node,
                candidates=tuple(pool),
                tag=tag,
            )
            host = self._base.place(request)
            tracker.submit_flow(coflow, data_node, host, size)
            if anchor_rack is None:
                anchor_rack = topo.node(host).rack
        tracker.seal(coflow)
        return coflow
