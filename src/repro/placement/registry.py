"""Factory assembling placement policies by name for experiments."""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigError
from repro.network.fabric import NetworkFabric
from repro.placement.base import PlacementPolicy
from repro.placement.baselines import (
    MinDistPolicy,
    MinFCTPolicy,
    MinLoadPolicy,
    RandomPolicy,
)
from repro.placement.neat import build_neat
from repro.placement.pathaware import PathAwareNEATPolicy
from repro.predictor.registry import make_flow_predictor


def make_placement_policy(
    name: str,
    fabric: NetworkFabric,
    *,
    rng: Optional[random.Random] = None,
    predictor: str = "fair",
    coflow_predictor: Optional[str] = None,
    state_ttl: Optional[float] = None,
    push_updates: bool = False,
    telemetry=None,
) -> PlacementPolicy:
    """Instantiate a placement policy by name.

    Known names: ``neat``, ``neat-nofilter`` (daemon-based minFCT),
    ``neat-path`` (§7 full-path generalization), ``minfct`` (omniscient
    minFCT), ``minload``, ``mindist``, ``random``.

    ``telemetry`` threads a :class:`~repro.telemetry.Telemetry` bundle
    into the policy so placement decisions (and, for NEAT, bus traffic
    and predictor timings) are recorded.  ``state_ttl`` and
    ``push_updates`` configure NEAT's degraded-operation machinery (see
    :func:`~repro.placement.neat.build_neat`); baselines ignore both —
    they read the fabric directly and have no control plane to degrade.
    """
    key = name.lower()
    if key == "neat":
        return build_neat(
            fabric,
            predictor=predictor,
            coflow_predictor=coflow_predictor,
            rng=rng,
            state_ttl=state_ttl,
            push_updates=push_updates,
            telemetry=telemetry,
        )
    if key == "neat-nofilter":
        # NEAT's daemons and predictor but no preferred-host filter: the
        # distributed counterpart of the minFCT strawman (message-overhead
        # ablation).
        return build_neat(
            fabric,
            predictor=predictor,
            coflow_predictor=coflow_predictor,
            rng=rng,
            use_node_state=False,
            state_ttl=state_ttl,
            push_updates=push_updates,
            telemetry=telemetry,
        )
    if key == "neat-path":
        # §7 generalization: per-link arbitrators, full-path objective.
        return PathAwareNEATPolicy(fabric, make_flow_predictor(predictor), rng)
    if key == "minfct":
        return MinFCTPolicy(
            fabric, make_flow_predictor(predictor), rng, telemetry=telemetry
        )
    if key == "minload":
        return MinLoadPolicy(fabric, rng, telemetry=telemetry)
    if key == "mindist":
        return MinDistPolicy(fabric, rng, telemetry=telemetry)
    if key == "random":
        if rng is None:
            raise ConfigError("random placement needs an rng")
        return RandomPolicy(rng, fabric=fabric, telemetry=telemetry)
    raise ConfigError(
        f"unknown placement policy {name!r}; known: neat, neat-nofilter, "
        "neat-path, minfct, minload, mindist, random"
    )
