"""Placement policy interface.

A placement policy answers one question: *given a task that must read its
input data from a fixed source, which candidate host should run it?*
Choosing the host fixes the destination of the task's network flow(s),
which is how task placement and network scheduling interact (§3).

Policies receive a :class:`PlacementRequest` and return a host id.  The
baselines (minLoad/minDist/random) read the fabric directly — they model
the omniscient simulator versions the paper compares against; NEAT goes
through its distributed daemons (:mod:`repro.daemons`).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.topology.base import NodeId


@dataclass(frozen=True)
class PlacementRequest:
    """One task placement decision.

    Attributes:
        size: bits the task must read over the network (its flow size).
        data_node: host holding the input data (the flow's source).
        candidates: hosts eligible by CPU/memory (§5.1.1 step 0).  The
            data node itself may be included — placing there yields full
            data locality (a zero-cost local read).
        tag: free-form label propagated to the submitted flow.
    """

    size: float
    data_node: NodeId
    candidates: Tuple[NodeId, ...]
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise PlacementError(f"task size must be positive, got {self.size!r}")
        if not self.candidates:
            raise PlacementError("placement request needs at least one candidate")


class PlacementPolicy(ABC):
    """Strategy object choosing a host for each task."""

    #: Registry/report name, e.g. ``"neat"``.
    name: str = "abstract"

    @abstractmethod
    def place(self, request: PlacementRequest) -> NodeId:
        """Return the chosen host (must be one of ``request.candidates``)."""

    def notify_placed(self, request: PlacementRequest, host: NodeId) -> None:
        """Hook invoked after the task's flow has been submitted."""


def pick_min(
    candidates: Sequence[NodeId],
    scores: Sequence[float],
    rng: Optional[random.Random] = None,
) -> NodeId:
    """Return the candidate with the smallest score.

    Ties are broken uniformly at random when ``rng`` is given (so that
    load-oblivious policies like minDist do not pile onto the
    lexicographically first host), otherwise by host id for determinism.
    """
    if len(candidates) != len(scores) or not candidates:
        raise PlacementError("candidates and scores must align and be non-empty")
    best = min(scores)
    tied = [c for c, s in zip(candidates, scores) if s <= best]
    if rng is not None and len(tied) > 1:
        return tied[rng.randrange(len(tied))]
    return min(tied)
