"""Task placement policies: NEAT (Algorithm 1) and the paper's baselines."""

from repro.placement.base import PlacementPolicy, PlacementRequest, pick_min
from repro.placement.baselines import (
    MinDistPolicy,
    MinFCTPolicy,
    MinLoadPolicy,
    RandomPolicy,
    host_queued_bits,
)
from repro.placement.coflow_placement import (
    RackLocalCoflowPlacer,
    place_coflow_joint,
    place_coflow_sequential,
)
from repro.placement.neat import NEATPolicy, build_neat
from repro.placement.pathaware import LinkStateProvider, PathAwareNEATPolicy
from repro.placement.registry import make_placement_policy

__all__ = [
    "PlacementPolicy",
    "PlacementRequest",
    "pick_min",
    "MinLoadPolicy",
    "MinDistPolicy",
    "MinFCTPolicy",
    "RandomPolicy",
    "host_queued_bits",
    "NEATPolicy",
    "build_neat",
    "PathAwareNEATPolicy",
    "LinkStateProvider",
    "place_coflow_sequential",
    "place_coflow_joint",
    "RackLocalCoflowPlacer",
    "make_placement_policy",
]
