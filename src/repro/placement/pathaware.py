"""Path-aware NEAT (§7 "Generalization of Network Topologies").

The shipped NEAT predicts on edge links only (the single-switch
abstraction).  The paper sketches the generalization: PASE-style per-link
arbitrators maintain flow state for *every* link, and placement scores a
candidate by the completion time over the whole routed path.  This module
implements that design — the per-link state is read through a
:class:`LinkStateProvider` (the arbitrator role), and the score is
objective (2) taken over all path links — so the benefit of path-wide
state on oversubscribed fabrics can be quantified (see
``benchmarks/bench_ablation_pathaware.py``).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.network.fabric import NetworkFabric
from repro.placement.base import PlacementPolicy, PlacementRequest, pick_min
from repro.predictor.flow_fct import FlowFCTPredictor
from repro.predictor.state import LinkState, link_state_from_flows
from repro.topology.base import LinkId, NodeId


class LinkStateProvider:
    """The per-link arbitrator: answers "what flows cross link l?".

    This implementation reads the fabric's link index directly, which is
    exactly the information a PASE-style distributed arbitrator for that
    link would hold locally.
    """

    def __init__(self, fabric: NetworkFabric) -> None:
        self._fabric = fabric

    def link_state(self, link_id: LinkId) -> LinkState:
        link = self._fabric.topology.link(link_id)
        return link_state_from_flows(
            link_id,
            link.capacity,
            (f.remaining for f in self._fabric.flows_on_link(link_id)),
        )


class PathAwareNEATPolicy(PlacementPolicy):
    """NEAT scored over every link of the routed path.

    Keeps Algorithm 1's structure — node-state preferred-host filter, then
    minimum predicted completion — but the prediction is
    ``objective (2)`` over the full source->candidate path instead of the
    candidate's edge link alone, so core/aggregation contention is seen.
    """

    name = "neat-path"

    def __init__(
        self,
        fabric: NetworkFabric,
        predictor: FlowFCTPredictor,
        rng: Optional[random.Random] = None,
        *,
        use_node_state: bool = True,
    ) -> None:
        self._fabric = fabric
        self._predictor = predictor
        self._rng = rng
        self._use_node_state = use_node_state
        self._arbitrators = LinkStateProvider(fabric)

    # ------------------------------------------------------------------
    # Node state (same quantity the daemons report)
    # ------------------------------------------------------------------
    def _node_state(self, host: NodeId) -> float:
        flows = self._fabric.flows_at_host(host)
        if not flows:
            return float("inf")
        return min(f.remaining for f in flows)

    def _preferred(self, request: PlacementRequest):
        if not self._use_node_state:
            return list(request.candidates)
        preferred = [
            host
            for host in request.candidates
            if self._node_state(host) >= request.size
        ]
        return preferred if preferred else list(request.candidates)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _score(self, request: PlacementRequest, host: NodeId) -> float:
        if host == request.data_node:
            return 0.0
        path = self._fabric.router.path(request.data_node, host)
        states = [
            self._arbitrators.link_state(link_id) for link_id in path.links
        ]
        return self._predictor.objective(request.size, states)

    def place(self, request: PlacementRequest) -> NodeId:
        preferred = self._preferred(request)
        scores = [self._score(request, host) for host in preferred]
        return pick_min(preferred, scores, self._rng)
