"""The NEAT placement policy: Algorithm 1 over the distributed daemons.

:func:`build_neat` wires up the whole control plane of Figure 4 — one
network daemon per host, a message bus, and the global task placement
daemon — and returns a :class:`NEATPolicy` usable anywhere a
:class:`~repro.placement.base.PlacementPolicy` is expected.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional, Sequence

from repro.network.fabric import NetworkFabric
from repro.placement.base import PlacementPolicy, PlacementRequest
from repro.predictor.registry import make_coflow_predictor, make_flow_predictor
from repro.topology.base import NodeId

if TYPE_CHECKING:  # pragma: no cover - avoids a placement<->daemons cycle
    from repro.daemons.bus import MessageBus
    from repro.daemons.placement_daemon import TaskPlacementDaemon


class NEATPolicy(PlacementPolicy):
    """Network-scheduling-aware placement via the NEAT daemons."""

    name = "neat"

    def __init__(
        self,
        daemon: "TaskPlacementDaemon",
        bus: "MessageBus",
        *,
        supports_coflow_prediction: bool = False,
    ) -> None:
        self._daemon = daemon
        self._bus = bus
        #: True when the network daemons carry a CCT predictor, enabling
        #: place_reducer / place_coflow_flow.
        self.supports_coflow_prediction = supports_coflow_prediction

    @property
    def daemon(self) -> "TaskPlacementDaemon":
        """The global placement daemon (exposes decisions and cache)."""
        return self._daemon

    @property
    def bus(self) -> "MessageBus":
        """The control-plane bus (exposes message accounting)."""
        return self._bus

    def place(self, request: PlacementRequest) -> NodeId:
        return self._daemon.place_flow(request)

    def place_reducer(self, sources, candidates, *, tag: str = "") -> NodeId:
        """Many-to-one coflow placement (§5.1.2)."""
        return self._daemon.place_reducer(sources, candidates, tag=tag)

    def place_coflow_flow(
        self,
        flow_size: float,
        coflow_total: float,
        data_node,
        candidates,
        *,
        tag: str = "",
    ) -> NodeId:
        """CCT-aware placement of one flow of a coflow (§5.1.2)."""
        return self._daemon.place_coflow_flow(
            flow_size, coflow_total, data_node, candidates, tag=tag
        )


def build_neat(
    fabric: NetworkFabric,
    *,
    predictor: str = "fair",
    coflow_predictor: Optional[str] = None,
    rng: Optional[random.Random] = None,
    use_node_state: bool = True,
    locality_hops: Optional[int] = None,
    include_source_link: bool = False,
    bin_boundaries: Optional[Sequence[float]] = None,
    control_rtt: float = 0.0,
    state_ttl: Optional[float] = None,
    push_updates: bool = False,
    telemetry=None,
) -> NEATPolicy:
    """Instantiate NEAT's full control plane on ``fabric``.

    Args:
        fabric: the simulated network.
        predictor: FCT predictor name.  Per Proposition 4.1 the Fair
            predictor is the right default for any flow-level policy.
        coflow_predictor: CCT predictor name; enables coflow placement.
        rng: tie-break randomness for the placement daemon.
        use_node_state: disable to obtain the minFCT strawman (Fig. 9).
        locality_hops: optional locality pre-filter (§5.2).
        include_source_link: also fold the data node's uplink into the
            score (off by default; see TaskPlacementDaemon).
        bin_boundaries: enable §5.2 compressed flow state with these bins.
        control_rtt: control-plane RTT used for latency accounting.
        state_ttl: node-state snapshot TTL; when every known candidate's
            state is older, the placement daemon falls back to
            least-loaded placement (degraded operation, see
            TaskPlacementDaemon).
        push_updates: when True, network daemons push a NodeStateUpdate to
            the controller whenever a flow at their host completes — the
            paper's push-style dissemination.  Off by default so the
            baseline (pull-only) control plane is unchanged.
        telemetry: optional :class:`~repro.telemetry.Telemetry` threaded
            into the bus (message tracing), daemons (predictor timing),
            and the placement daemon (decision log).
    """
    from repro.daemons.bus import MessageBus
    from repro.daemons.network_daemon import NetworkDaemon
    from repro.daemons.placement_daemon import TaskPlacementDaemon

    engine = fabric.engine
    bus = MessageBus(engine, rtt=control_rtt, telemetry=telemetry)
    flow_pred = make_flow_predictor(predictor)
    coflow_pred = (
        make_coflow_predictor(coflow_predictor)
        if coflow_predictor is not None
        else None
    )
    daemons = {}
    for host in fabric.topology.hosts:
        daemon = NetworkDaemon(
            host,
            fabric,
            flow_pred,
            coflow_predictor=coflow_pred,
            bin_boundaries=bin_boundaries,
            telemetry=telemetry,
        )
        bus.register(host, daemon.handle)
        daemons[host] = daemon
    placement = TaskPlacementDaemon(
        fabric.topology,
        bus,
        rng=rng,
        use_node_state=use_node_state,
        locality_hops=locality_hops,
        include_source_link=include_source_link,
        state_ttl=state_ttl,
        telemetry=telemetry,
    )
    if push_updates:
        bus.register_controller(placement.handle_node_state_update)

        def _push_on_completion(flow, record) -> None:
            # A completion frees capacity at both endpoints; their daemons
            # refresh the controller (dedup handles local flows).
            for host in dict.fromkeys((flow.src, flow.dst)):
                daemon = daemons.get(host)
                if daemon is not None:
                    daemon.push_state(bus)

        fabric.add_completion_listener(_push_on_completion)
    return NEATPolicy(
        placement, bus, supports_coflow_prediction=coflow_pred is not None
    )
