"""Baseline placement policies the paper compares against (§6.1).

* :class:`MinLoadPolicy` — "always selects a node with the minimum load,
  measured by the total size of flows scheduled on that node" / "the
  utilization ratio of its link to ToR".  Both load measures are offered.
* :class:`MinDistPolicy` — "always selects a node closest to the input
  data" (delay-scheduling/Corral-style locality).
* :class:`MinFCTPolicy` — NEAT's predictor *without* the node-state
  (preferred hosts) filter; the strawman of Figure 9.
* :class:`RandomPolicy` — uniform random control.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.network.fabric import NetworkFabric
from repro.placement.base import PlacementPolicy, PlacementRequest, pick_min
from repro.predictor.flow_fct import FlowFCTPredictor
from repro.predictor.state import link_state_from_flows
from repro.topology.base import NodeId


def host_queued_bits(fabric: NetworkFabric, host: NodeId) -> float:
    """Total residual bits of flows sourced at or destined to ``host``."""
    return sum(f.remaining for f in fabric.flows_at_host(host))


class _RecordsDecisions:
    """Mixin: mirror baseline decisions into the telemetry decision log.

    Baselines have no preferred-host filter, so ``preferred`` equals the
    candidate set, and their scores are whatever they minimise (queued
    bits, hops, predicted FCT, ...) as declared by ``score_kind``.
    """

    _SCORE_KIND = "score"

    def _init_telemetry(
        self, telemetry, fabric: Optional[NetworkFabric]
    ) -> None:
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._decision_log = telemetry.decisions
        self._engine = fabric.engine if fabric is not None else None

    def _log_decision(
        self,
        request: PlacementRequest,
        scores: Sequence[float],
        chosen: NodeId,
        *,
        predicted_time: Optional[float] = None,
    ) -> None:
        if not self._decision_log.active:
            return
        self._decision_log.record(
            time=self._engine.now if self._engine is not None else 0.0,
            kind="flow",
            tag=request.tag,
            size=request.size,
            data_node=request.data_node,
            candidates=request.candidates,
            preferred=request.candidates,
            used_fallback=False,
            scores=tuple(zip(request.candidates, scores)),
            score_kind=self._SCORE_KIND,
            chosen=chosen,
            predicted_time=predicted_time,
        )


class MinLoadPolicy(_RecordsDecisions, PlacementPolicy):
    """Place on the candidate with the least network load.

    Args:
        fabric: the network to inspect.
        rng: tie-break randomness (optional; host-id order if omitted).
        measure: ``"bits"`` (queued bits at the host, the default) or
            ``"utilization"`` (allocated fraction of its edge links).
    """

    name = "minload"
    _SCORE_KIND = "queued_bits"

    def __init__(
        self,
        fabric: NetworkFabric,
        rng: Optional[random.Random] = None,
        *,
        measure: str = "bits",
        telemetry=None,
    ) -> None:
        if measure not in ("bits", "utilization"):
            raise ValueError(f"unknown load measure {measure!r}")
        self._fabric = fabric
        self._rng = rng
        self._measure = measure
        self._SCORE_KIND = measure if measure != "bits" else "queued_bits"
        self._init_telemetry(telemetry, fabric)

    def _load(self, host: NodeId) -> float:
        if self._measure == "bits":
            return host_queued_bits(self._fabric, host)
        topo = self._fabric.topology
        up = topo.host_uplink(host).link_id
        down = topo.host_downlink(host).link_id
        return max(
            self._fabric.link_rate_utilization(up),
            self._fabric.link_rate_utilization(down),
        )

    def place(self, request: PlacementRequest) -> NodeId:
        scores = [self._load(host) for host in request.candidates]
        host = pick_min(request.candidates, scores, self._rng)
        self._log_decision(request, scores, host)
        return host


class MinDistPolicy(_RecordsDecisions, PlacementPolicy):
    """Place as close to the input data as possible (locality first)."""

    name = "mindist"
    _SCORE_KIND = "hops"

    def __init__(
        self,
        fabric: NetworkFabric,
        rng: Optional[random.Random] = None,
        *,
        telemetry=None,
    ) -> None:
        self._fabric = fabric
        self._rng = rng
        self._init_telemetry(telemetry, fabric)

    def place(self, request: PlacementRequest) -> NodeId:
        topo = self._fabric.topology
        scores = [
            float(topo.hop_distance(request.data_node, host))
            for host in request.candidates
        ]
        host = pick_min(request.candidates, scores, self._rng)
        self._log_decision(request, scores, host)
        return host


class MinFCTPolicy(_RecordsDecisions, PlacementPolicy):
    """Greedy minimum-predicted-FCT with *no* node-state filter (Figure 9).

    Uses the same predictor as NEAT on the same edge links, but considers
    every candidate, so it happily co-locates short flows with each other
    and drops long flows onto hosts busy with short ones — the behaviours
    the preferred-hosts rule exists to prevent.
    """

    name = "minfct"
    _SCORE_KIND = "predicted_time"

    def __init__(
        self,
        fabric: NetworkFabric,
        predictor: FlowFCTPredictor,
        rng: Optional[random.Random] = None,
        *,
        telemetry=None,
    ) -> None:
        self._fabric = fabric
        self._predictor = predictor
        self._rng = rng
        self._init_telemetry(telemetry, fabric)

    def _predicted_fct(self, request: PlacementRequest, host: NodeId) -> float:
        if host == request.data_node:
            return 0.0  # full locality: no network transfer
        fabric = self._fabric
        link = fabric.topology.host_downlink(host)
        state = link_state_from_flows(
            link.link_id,
            link.capacity,
            (f.remaining for f in fabric.flows_on_link(link.link_id)),
        )
        return self._predictor.fct(request.size, state)

    def place(self, request: PlacementRequest) -> NodeId:
        scores = [
            self._predicted_fct(request, host) for host in request.candidates
        ]
        host = pick_min(request.candidates, scores, self._rng)
        # minFCT scores *are* predicted FCTs, so its decisions join
        # realized completion times and produce prediction errors too.
        self._log_decision(
            request, scores, host, predicted_time=min(scores)
        )
        return host


class RandomPolicy(_RecordsDecisions, PlacementPolicy):
    """Uniform random placement (control)."""

    name = "random"
    _SCORE_KIND = "random"

    def __init__(
        self,
        rng: random.Random,
        *,
        fabric: Optional[NetworkFabric] = None,
        telemetry=None,
    ) -> None:
        self._rng = rng
        self._init_telemetry(telemetry, fabric)

    def place(self, request: PlacementRequest) -> NodeId:
        host = request.candidates[self._rng.randrange(len(request.candidates))]
        self._log_decision(request, [], host)
        return host
