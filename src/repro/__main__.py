"""Command-line entry point: reproduce any figure from the shell.

Examples::

    python -m repro list
    python -m repro fig1
    python -m repro fig5 --workload websearch --arrivals 600
    python -m repro fig6 --network las
    python -m repro fig7 --network scf --arrivals 200
    python -m repro fig11
    python -m repro fig5 --trace /tmp/t.jsonl --metrics-out /tmp/m.json
    python -m repro fig5 --profile --metrics-out /tmp/m.json
    python -m repro fig7 --timeline /tmp/timeline.json
    python -m repro fig5 --causal /tmp/run/ --faults plan.json
    python -m repro explain /tmp/run/ --worst 3
    python -m repro trace export /tmp/run/ -o /tmp/run/perfetto.json
    python -m repro all --jobs 4
    python -m repro run --seeds 1,2,3 --networks fair,las --loads 0.5,0.7 --jobs 4
    python -m repro run --jobs 4 --status /tmp/campaign/   # live health file
    python -m repro status /tmp/campaign/                  # render + stall check
    python -m repro report /tmp/m.json --prometheus
    python -m repro report /tmp/m.json --json
    python -m repro bench-compare baseline.json current.json --max-regress 20%
    python -m repro serve examples/service_diurnal.json --status /tmp/svc/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace

from repro.experiments.comparative import figure3
from repro.experiments.coflow_macro import figure7
from repro.experiments.config import MacroConfig, testbed_config
from repro.experiments.flow_macro import run_flow_macro
from repro.experiments.micro import figure8, figure9, figure10
from repro.experiments.motivating import render_figure1
from repro.experiments.testbed import figure11

FIGURES = {
    "fig1": "motivating example table (exact)",
    "fig3": "minDist vs minLoad comparative study",
    "fig5": "flow placement under Fair (gap per size bin)",
    "fig6": "flow placement under LAS or SRPT",
    "fig7": "coflow placement under Varys or SCF",
    "fig8": "Fair vs SRPT predictor under SRPT",
    "fig9": "preferred hosts vs minFCT",
    "fig10": "FCT prediction error",
    "fig11": "10-node testbed (NEAT vs minLoad)",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from the NEAT paper (CoNEXT 2016).",
        epilog="additional subcommands (each has its own --help): "
               "'status DIR' renders a campaign health file with stall "
               "detection; 'report METRICS.json [--prometheus|--json]' "
               "renders a saved metrics snapshot; 'bench-compare BASE.json "
               "CUR.json' gates on perf regressions between BENCH "
               "artifacts; 'explain DIR' prints the causal blame breakdown "
               "of a --causal trace; 'trace export DIR' converts a causal "
               "trace to Chrome/Perfetto JSON; 'serve SCENARIO.json' runs "
               "an open-loop streaming placement session; "
               "'campaign-worker DIR' drains cells from a shared campaign "
               "queue (see 'run --distributed').",
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES) + ["list", "all", "run"],
        help="which figure to reproduce ('list' enumerates, 'all' runs a "
             "fast one-line-per-figure summary, 'run' executes a "
             "seed x network x load campaign sweep)",
    )
    parser.add_argument("--workload", default=None,
                        help="websearch | datamining | hadoop")
    parser.add_argument("--network", default=None,
                        help="network policy override (fair/las/srpt/fcfs, "
                             "varys/scf for fig7, srpt/fair for fig3)")
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--racks-per-pod", type=int, default=2)
    parser.add_argument("--hosts-per-rack", type=int, default=10)
    parser.add_argument("--load", type=float, default=0.7)
    parser.add_argument("--arrivals", type=int, default=800)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--oversubscription", type=float, default=1.0)
    parser.add_argument(
        "--alloc-backend", choices=("python", "numpy"), default=None,
        help="rate-allocator compute backend: 'numpy' batches the "
             "water-filling over (flows x links) arrays, bit-identical "
             "to 'python' but faster at scale (default: the "
             "REPRO_ALLOC_BACKEND env var, else python; numpy requires "
             "the [perf] extra and falls back to python when absent)",
    )
    obs = parser.add_argument_group(
        "observability",
        "any of these arms the telemetry layer and prints its report",
    )
    obs.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a structured JSONL event trace (flow lifecycle, rate "
             "recomputes, bus messages, placement decisions + outcomes); "
             "a .gz suffix writes a deterministic gzip stream",
    )
    obs.add_argument(
        "--trace-rotate-bytes", type=int, default=None, metavar="BYTES",
        help="rotate the --trace file every BYTES of uncompressed JSONL "
             "(PATH.1..PATH.N backups; default: one unbounded file)",
    )
    obs.add_argument(
        "--trace-backups", type=int, default=4, metavar="N",
        help="rotated trace segments kept beyond the active one "
             "(default: %(default)s)",
    )
    obs.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write counters/gauges/histograms/timers and the "
             "placement-decision error summary as JSON",
    )
    obs.add_argument(
        "--timeline", metavar="PATH", default=None,
        help="sample per-link utilisation over time and write it as JSON",
    )
    obs.add_argument(
        "--timeline-interval", type=float, default=0.1, metavar="SECONDS",
        help="timeline sampling interval in simulated seconds "
             "(default: %(default)s)",
    )
    obs.add_argument(
        "--causal", metavar="PATH", default=None,
        help="record a request-scoped causal trace (task -> decision -> "
             "flow lifecycle -> completion) and write it as JSONL; a "
             "directory gets causal.jsonl inside; inspect with "
             "'python -m repro explain PATH'",
    )
    obs.add_argument(
        "--profile", action="store_true",
        help="attach the hierarchical span profiler and print the flame "
             "view in the report (never perturbs simulation results)",
    )
    obs.add_argument(
        "--wall-clock", action="store_true",
        help="stamp trace records with wall time (breaks byte-identical "
             "trace determinism)",
    )
    camp = parser.add_argument_group(
        "campaign execution",
        "parallelism and result caching for 'all' and 'run' (parallel and "
        "serial execution produce byte-identical results)",
    )
    camp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for campaign cells (default: %(default)s; "
             "1 runs serially in-process)",
    )
    camp.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="content-addressed result cache directory; already-computed "
             "cells are served from it (default: %(default)s)",
    )
    camp.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell, and do not write the cache",
    )
    camp.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry any cell exceeding this wall-clock budget "
             "(needs --jobs > 1)",
    )
    camp.add_argument(
        "--cell-retries", type=int, default=1, metavar="N",
        help="extra attempts for a crashed/timed-out cell before it is "
             "quarantined (default: %(default)s)",
    )
    camp.add_argument(
        "--status", metavar="PATH", default=None, dest="status_path",
        help="append live per-cell health records (JSONL) here — a file, "
             "or a directory that gets status.jsonl; watch with "
             "'python -m repro status PATH'",
    )
    camp.add_argument(
        "--stream", action="store_true",
        help="streaming aggregation: fold each cell's result into a "
             "fixed-memory campaign aggregate as it lands instead of "
             "holding every payload (byte-identical to the batch "
             "aggregate; use for thousand-cell grids)",
    )
    dist = parser.add_argument_group(
        "distributed campaigns ('run' only)",
        "cells become claimable lease files in a shared queue directory; "
        "add workers anywhere with 'python -m repro campaign-worker DIR'",
    )
    dist.add_argument(
        "--distributed", metavar="DIR", default=None,
        help="seed DIR as a work queue and supervise it instead of "
             "running in-process; results stream into a fixed-memory "
             "aggregate, byte-identical to a serial run",
    )
    dist.add_argument(
        "--resume", metavar="DIR", default=None,
        help="resume the campaign seeded in DIR: finished cells fold "
             "straight from the queue's cache, the rest execute, and "
             "the final aggregate is byte-identical to an uninterrupted "
             "run (grid flags are ignored; the manifest is authoritative)",
    )
    dist.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="local worker processes for --distributed/--resume "
             "(default: %(default)s; 0 coordinates external "
             "campaign-worker processes only)",
    )
    dist.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="seconds of lease silence before a cell counts as abandoned "
             "and may be stolen by another worker (default: 30)",
    )
    dist.add_argument(
        "--aggregate-out", metavar="PATH", default=None,
        help="write the campaign aggregate payload as canonical JSON "
             "(works in every mode; identical bytes across serial, "
             "parallel, distributed, and resumed runs)",
    )
    sweep = parser.add_argument_group(
        "campaign sweep ('run' only)",
        "grid axes; placements are compared within each cell on a shared "
        "trace so comparisons stay paired",
    )
    sweep.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="explicit seed axis (comma-separated ints)",
    )
    sweep.add_argument(
        "--repetitions", type=int, default=3, metavar="N",
        help="derive this many seeds from --seed when --seeds is not "
             "given (default: %(default)s)",
    )
    sweep.add_argument(
        "--networks", default=None, metavar="P1,P2,...",
        help="network policy axis (default: --network, else fair)",
    )
    sweep.add_argument(
        "--loads", default=None, metavar="L1,L2,...",
        help="load axis (default: --load)",
    )
    sweep.add_argument(
        "--placements", default="neat,minload,mindist", metavar="P1,P2,...",
        help="placement policies compared in every cell "
             "(default: %(default)s)",
    )
    sweep.add_argument(
        "--coflows", action="store_true",
        help="sweep coflow traces (networks then name coflow schedulers, "
             "e.g. varys/scf)",
    )
    chaos = parser.add_argument_group(
        "fault injection ('run', 'fig5', 'fig6')",
        "seed-deterministic chaos: validate plans with "
        "'python -m repro faults validate PLAN.json'",
    )
    chaos.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="inject this fault plan (link/host/daemon chaos) into every "
             "cell of the sweep, or into each placement's replay for "
             "fig5/fig6",
    )
    chaos.add_argument(
        "--state-ttl", type=float, default=None, metavar="SECONDS",
        help="NEAT node-state TTL: when every known candidate's snapshot "
             "is older, placement falls back to least-loaded",
    )
    chaos.add_argument(
        "--push-node-state", action="store_true",
        help="enable NEAT's push-style node-state dissemination "
             "(daemons refresh the controller on flow completions)",
    )
    return parser


def telemetry_from_args(args: argparse.Namespace):
    """Build a :class:`~repro.telemetry.Telemetry` when any observability
    flag was given; return None otherwise (zero overhead)."""
    if not (
        args.trace
        or args.metrics_out
        or args.timeline
        or args.profile
        or args.causal
    ):
        return None
    from repro.telemetry import create_telemetry

    return create_telemetry(
        trace_path=args.trace,
        timeline_interval=(
            args.timeline_interval if args.timeline else None
        ),
        profile=args.profile,
        wall_clock=args.wall_clock,
        causal=bool(args.causal),
        trace_rotate_bytes=args.trace_rotate_bytes,
        trace_backups=args.trace_backups,
    )


def resolve_causal_path(target: str, *, for_write: bool = False) -> str:
    """A ``--causal`` / ``explain`` target: directories get causal.jsonl.

    On write, a trailing separator (or an existing directory) means "put
    causal.jsonl inside", creating the directory if needed.
    """
    looks_like_dir = target.endswith(os.sep) or os.path.isdir(target)
    if not looks_like_dir:
        return target
    if for_write:
        os.makedirs(target, exist_ok=True)
    return os.path.join(target, "causal.jsonl")


def emit_telemetry_outputs(tele, args: argparse.Namespace) -> None:
    """Close the trace and write the report / metrics / timeline files."""
    from repro.telemetry import render_report

    tele.close()
    print()
    print(render_report(tele))
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.causal:
        path = resolve_causal_path(args.causal, for_write=True)
        count = tele.causal.save(path)
        print(f"causal trace written to {path} ({count} events)")
    if args.metrics_out:
        extra = {"placement_decisions": tele.decisions.error_summary()}
        if tele.profiler.enabled:
            extra["profile"] = tele.profiler.as_dict()
        tele.registry.write_json(args.metrics_out, extra=extra)
        print(f"metrics written to {args.metrics_out}")
    if args.timeline:
        payload = {
            "interval": args.timeline_interval,
            "timelines": [
                {
                    "label": label,
                    "samples": [
                        {
                            "time": s.time,
                            "active_flows": s.active_flows,
                            "total_queued_bits": s.total_queued_bits,
                            "links": {
                                str(link): {
                                    "utilization": util,
                                    "queued_bits": queued,
                                }
                                for link, (util, queued) in s.links.items()
                            },
                        }
                        for s in samples
                    ],
                }
                for label, samples in tele.timelines
            ],
        }
        with open(args.timeline, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"timeline written to {args.timeline}")


def config_from_args(args: argparse.Namespace, **overrides) -> MacroConfig:
    base = MacroConfig(
        pods=args.pods,
        racks_per_pod=args.racks_per_pod,
        hosts_per_rack=args.hosts_per_rack,
        workload=args.workload or overrides.pop("workload", "websearch"),
        load=args.load,
        num_arrivals=args.arrivals,
        seed=args.seed,
        oversubscription=args.oversubscription,
        alloc_backend=args.alloc_backend,
    )
    return replace(base, **overrides) if overrides else base


def _progress(line: str) -> None:
    """Per-cell campaign progress (stderr, so stdout stays parseable)."""
    print(line, file=sys.stderr, flush=True)


def cache_from_args(args: argparse.Namespace):
    """The CLI's result cache, or None under ``--no-cache``."""
    if args.no_cache:
        return None
    from repro.campaign import ResultCache

    return ResultCache(args.cache_dir)


def status_from_args(args: argparse.Namespace):
    """Resolved ``--status`` path (directories get status.jsonl)."""
    if args.status_path is None:
        return None
    from repro.campaign import resolve_status_path

    return resolve_status_path(args.status_path)


def _csv(text, convert=str):
    return [convert(part) for part in text.split(",") if part.strip()]


def run_all_summary(args: argparse.Namespace) -> int:
    """One line per figure at a reduced scale (a few minutes total).

    Runs as a ten-cell campaign: ``--jobs`` parallelises the figures and
    the content-addressed cache makes re-runs (near-)instant.
    """
    from repro.campaign import build_all_campaign, run_campaign

    cfg = config_from_args(args, workload="hadoop")
    campaign = build_all_campaign(
        cfg, arrivals=args.arrivals, seed=args.seed
    )
    cache = cache_from_args(args)
    report = run_campaign(
        campaign,
        jobs=args.jobs,
        cache=cache,
        timeout=args.cell_timeout,
        retries=args.cell_retries,
        progress=_progress,
        status_path=status_from_args(args),
    )
    for outcome in report.outcomes:
        if outcome.payload is not None:
            print(outcome.payload["line"])
    print(f"cache: {report.cache_stats}")
    failures = report.failure_report()
    if failures:
        print(failures, file=sys.stderr)
        return 1
    return 0


def _emit_campaign_outputs(report, args: argparse.Namespace) -> int:
    """Render a campaign report (batch or streaming) and write outputs."""
    from repro.campaign import (
        canonical_json,
        render_aggregate,
        render_campaign_report,
    )

    if report.aggregate is not None:
        print(render_aggregate(report.aggregate))
        print(f"cache: {report.cache_stats}")
    else:
        print(render_campaign_report(report))
    if args.aggregate_out:
        with open(args.aggregate_out, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(report.aggregate_payload()))
            fh.write("\n")
        print(f"aggregate written to {args.aggregate_out}")
    return 1 if report.quarantined else 0


def run_campaign_cli(args: argparse.Namespace) -> int:
    """``repro run``: a declarative seed x network x load sweep."""
    from repro.campaign import flow_grid, run_campaign

    if args.distributed and args.resume:
        print(
            "error: --distributed seeds a fresh queue and --resume reopens "
            "one; give exactly one",
            file=sys.stderr,
        )
        return 2
    if args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2

    if args.resume:
        from repro.campaign import run_distributed_campaign
        from repro.errors import ConfigError

        try:
            report = run_distributed_campaign(
                args.resume,
                workers=args.workers,
                retries=args.cell_retries,
                resume=True,
                progress=_progress,
            )
        except (ConfigError, RuntimeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _emit_campaign_outputs(report, args)

    base = config_from_args(args)
    if args.state_ttl is not None or args.push_node_state:
        base = replace(
            base,
            state_ttl=args.state_ttl,
            push_node_state=args.push_node_state,
        )
    fault_axis = None
    if args.faults:
        from repro.errors import FaultError
        from repro.faults import FaultPlan

        try:
            fault_axis = [FaultPlan.load(args.faults)]
        except FaultError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    seeds = _csv(args.seeds, int) if args.seeds else None
    networks = (
        _csv(args.networks)
        if args.networks
        else [args.network or ("varys" if args.coflows else "fair")]
    )
    campaign = flow_grid(
        name="cli-sweep",
        base_config=base,
        seeds=seeds,
        repetitions=None if seeds else args.repetitions,
        network_policies=networks,
        loads=_csv(args.loads, float) if args.loads else None,
        placements=tuple(_csv(args.placements)),
        coflows=args.coflows,
        faults=fault_axis,
    )
    if args.distributed:
        from repro.campaign import DEFAULT_LEASE_TTL, run_distributed_campaign
        from repro.errors import ConfigError

        try:
            report = run_distributed_campaign(
                args.distributed,
                campaign,
                workers=args.workers,
                retries=args.cell_retries,
                lease_ttl=(
                    args.lease_ttl
                    if args.lease_ttl is not None
                    else DEFAULT_LEASE_TTL
                ),
                progress=_progress,
            )
        except (ConfigError, RuntimeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _emit_campaign_outputs(report, args)

    report = run_campaign(
        campaign,
        jobs=args.jobs,
        cache=cache_from_args(args),
        timeout=args.cell_timeout,
        retries=args.cell_retries,
        progress=_progress,
        status_path=status_from_args(args),
        streaming=args.stream,
    )
    return _emit_campaign_outputs(report, args)


def run_status_cli(argv) -> int:
    """``repro status``: render a campaign's live health file.

    Exit code 1 flags stalled cells (non-terminal and silent beyond the
    threshold) so the command can gate watchdog scripts.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro status",
        description="Render a campaign status file with stall detection.",
    )
    parser.add_argument(
        "target",
        help="status file, or a directory containing status.jsonl "
             "(what 'repro run --status DIR' writes)",
    )
    from repro.campaign import DEFAULT_STALL_THRESHOLD

    parser.add_argument(
        "--stall-threshold", "--stall-after", type=float, metavar="SECONDS",
        default=DEFAULT_STALL_THRESHOLD, dest="stall_threshold",
        help="flag a non-terminal cell silent for longer than this "
             "(default: %(default)s; --stall-after matches the serve "
             "flag of the same name)",
    )
    args = parser.parse_args(argv)
    from repro.campaign import (
        read_status,
        render_status,
        resolve_status_path,
        summarize_status,
    )

    path = resolve_status_path(args.target)
    try:
        records = read_status(path)
    except OSError as exc:
        parser.error(f"cannot read status file: {exc}")
    summary = summarize_status(
        records, stall_threshold=args.stall_threshold
    )
    print(render_status(summary))
    return 1 if summary["stalled"] else 0


def run_report_cli(argv) -> int:
    """``repro report``: render a saved --metrics-out JSON snapshot."""
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Render a saved metrics snapshot (--metrics-out "
                    "file), human-readable or Prometheus text format.",
    )
    parser.add_argument("metrics", help="a --metrics-out JSON file")
    style = parser.add_mutually_exclusive_group()
    style.add_argument(
        "--prometheus", action="store_true",
        help="emit Prometheus text exposition format instead of the "
             "aligned report",
    )
    style.add_argument(
        "--json", action="store_true",
        help="emit the normalized snapshot as machine-readable JSON "
             "(counters/gauges/histograms/timers keyed by name)",
    )
    parser.add_argument(
        "--prefix", default="repro_", metavar="PREFIX",
        help="metric name prefix for --prometheus (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.metrics, "r", encoding="utf-8") as fp:
            snapshot = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read metrics file: {exc}")
    if args.prometheus:
        from repro.telemetry.prometheus import render_prometheus

        sys.stdout.write(render_prometheus(snapshot, prefix=args.prefix))
    elif args.json:
        from repro.telemetry.report import snapshot_as_dict

        json.dump(snapshot_as_dict(snapshot), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        from repro.telemetry.report import render_snapshot

        print(render_snapshot(snapshot))
    return 0


def run_explain_cli(argv) -> int:
    """``repro explain``: blame breakdown of a saved causal trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Decompose each completed flow's FCT (and coflow's "
                    "CCT) from a --causal trace into serialization, "
                    "queueing, contention, and fault components, and "
                    "print the per-task blame breakdown.",
    )
    parser.add_argument(
        "trace",
        help="a --causal JSONL file, or a directory containing "
             "causal.jsonl",
    )
    who = parser.add_mutually_exclusive_group()
    who.add_argument(
        "--task", metavar="TAG", default=None,
        help="explain only flows/coflows whose task tag equals TAG",
    )
    who.add_argument(
        "--worst", type=int, metavar="N", default=None,
        help="show the N slowest flows and coflows (default: 5)",
    )
    who.add_argument(
        "--percentile", type=float, metavar="P", default=None,
        help="show only flows at or above the P-th FCT percentile "
             "(e.g. 99)",
    )
    args = parser.parse_args(argv)
    if args.worst is not None and args.worst < 1:
        parser.error("--worst must be >= 1")
    if args.percentile is not None and not 0.0 <= args.percentile <= 100.0:
        parser.error("--percentile must be in [0, 100]")
    from repro.telemetry.causal import analyze, load_causal, render_explain

    path = resolve_causal_path(args.trace)
    try:
        events = load_causal(path)
    except OSError as exc:
        parser.error(f"cannot read causal trace: {exc}")
    except ValueError as exc:
        parser.error(str(exc))
    analyses = analyze(events)
    if not analyses:
        print("no completed runs in causal trace", file=sys.stderr)
        return 1
    print(
        render_explain(
            analyses,
            task=args.task,
            worst=args.worst,
            pct=args.percentile,
        )
    )
    return 0


def run_trace_cli(argv) -> int:
    """``repro trace``: convert a causal trace to viewer formats."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Work with saved --causal traces. 'export' converts "
                    "one to Chrome/Perfetto trace-event JSON (one track "
                    "per host/link, flow slices with rate-change "
                    "sub-slices, fault windows as overlay tracks) for "
                    "ui.perfetto.dev or chrome://tracing.",
    )
    parser.add_argument("action", choices=["export"])
    parser.add_argument(
        "trace",
        help="a --causal JSONL file, or a directory containing "
             "causal.jsonl",
    )
    parser.add_argument(
        "--format", choices=["perfetto"], default="perfetto",
        help="output format (default: %(default)s)",
    )
    parser.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="output file (default: <trace>.perfetto.json next to the "
             "input)",
    )
    args = parser.parse_args(argv)
    from repro.telemetry.causal import load_causal
    from repro.telemetry.perfetto import save_perfetto

    path = resolve_causal_path(args.trace)
    try:
        events = load_causal(path)
    except OSError as exc:
        parser.error(f"cannot read causal trace: {exc}")
    except ValueError as exc:
        parser.error(str(exc))
    out = args.output
    if out is None:
        stem = path[:-len(".jsonl")] if path.endswith(".jsonl") else path
        out = stem + ".perfetto.json"
    try:
        count = save_perfetto(events, out)
    except OSError as exc:
        parser.error(f"cannot write {out}: {exc}")
    print(f"perfetto trace written to {out} ({count} events)")
    return 0


def run_bench_compare_cli(argv) -> int:
    """``repro bench-compare``: per-cell perf diff of two BENCH artifacts."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench-compare",
        description="Diff two BENCH artifacts and fail on perf "
                    "regressions beyond the threshold.",
    )
    parser.add_argument("baseline", help="reference BENCH artifact (JSON)")
    parser.add_argument("current", help="freshly measured BENCH artifact")
    from repro.benchgate import parse_max_regress

    parser.add_argument(
        "--max-regress", type=parse_max_regress, default=0.2,
        metavar="FRACTION",
        help="allowed regression, e.g. '20%%' or 0.2 (default: 20%%)",
    )
    args = parser.parse_args(argv)
    from repro.benchgate import (
        compare_artifacts,
        load_artifact,
        render_comparison,
    )

    try:
        baseline = load_artifact(args.baseline)
        current = load_artifact(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        parser.error(f"cannot load artifact: {exc}")
    comparison = compare_artifacts(
        baseline, current, max_regress=args.max_regress
    )
    print(render_comparison(comparison, max_regress=args.max_regress))
    return 0 if comparison.ok else 1


def run_serve_cli(argv) -> int:
    """``repro serve``: one open-loop serving session from a scenario."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run NEAT as a streaming placement service: an "
                    "open-loop arrival stream (Poisson/diurnal/burst) is "
                    "served through the placement daemons in adaptive "
                    "micro-batches with admission control, inside the "
                    "deterministic simulator.  Same (seed, scenario) "
                    "twice gives byte-identical decision logs and final "
                    "report JSON.",
    )
    parser.add_argument("scenario", help="scenario JSON file (see "
                        "examples/service_diurnal.json)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's seed",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="override the scenario's session length (simulated seconds)",
    )
    parser.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="inject this fault plan into the session",
    )
    parser.add_argument(
        "--status", metavar="PATH", default=None, dest="status_path",
        help="append live heartbeat records (JSONL) here — a file, or a "
             "directory that gets status.jsonl; watch with "
             "'python -m repro status PATH'",
    )
    parser.add_argument(
        "--status-interval", type=float, default=1.0, metavar="SECONDS",
        help="simulated seconds between heartbeats (default: %(default)s; "
             "part of the deterministic inputs)",
    )
    parser.add_argument(
        "--prometheus-out", metavar="PATH", default=None,
        help="refresh this file with the live metrics snapshot in "
             "Prometheus text format at every heartbeat",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the final counters/gauges/timers snapshot as JSON "
             "(render with 'python -m repro report')",
    )
    parser.add_argument(
        "--report-out", metavar="PATH", default=None,
        help="write the deterministic final report as JSON "
             "(byte-identical for same seed+scenario)",
    )
    parser.add_argument(
        "--decisions-out", metavar="PATH", default=None,
        help="write the placement decision log as deterministic JSONL",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the deterministic report JSON to stdout instead of "
             "the text summary",
    )
    live = parser.add_argument_group(
        "live observability",
        "windowed rollups, burn-rate SLO alerts, and the flight "
        "recorder — observers only: arming them never changes the "
        "deterministic decision log or report",
    )
    live.add_argument(
        "--slo", metavar="SPEC", default=None,
        help="evaluate these SLOs at every heartbeat: a JSON spec file "
             "(see examples/service_slo.json) or the literal 'default' "
             "for the stock service objectives",
    )
    live.add_argument(
        "--recorder", metavar="DIR", default=None,
        help="arm the flight recorder: keep the recent causal-event "
             "ring in memory and dump a replayable post-mortem bundle "
             "into DIR on SLO breach, stall, or crash",
    )
    live.add_argument(
        "--rollups-out", metavar="PATH", default=None,
        help="write the windowed rollup store as JSON when the session "
             "ends (check offline with 'repro slo check')",
    )
    live.add_argument(
        "--stall-after", type=float, default=None, metavar="SECONDS",
        help="flag a stall (status record + recorder dump) when no new "
             "decision lands for this many simulated seconds while "
             "requests queue",
    )
    args = parser.parse_args(argv)
    if args.status_interval <= 0:
        parser.error("--status-interval must be positive")
    if args.stall_after is not None and args.stall_after <= 0:
        parser.error("--stall-after must be positive")
    from dataclasses import replace as _replace

    from repro.errors import ConfigError, FaultError, WorkloadError
    from repro.service import PlacementServer, ServiceScenario
    from repro.service.server import decisions_as_jsonl, render_service_report

    try:
        scenario = ServiceScenario.from_json_file(args.scenario)
        if args.seed is not None:
            scenario = _replace(scenario, seed=args.seed)
        if args.duration is not None:
            scenario = _replace(scenario, duration=args.duration)
    except (ConfigError, WorkloadError) as exc:
        parser.error(str(exc))
    faults = None
    if args.faults:
        from repro.faults import FaultPlan

        try:
            faults = FaultPlan.load(args.faults)
        except FaultError as exc:
            parser.error(str(exc))
    slo_specs = None
    if args.slo:
        from repro.telemetry.slo import load_slo_specs

        try:
            slo_specs = load_slo_specs(args.slo)
        except ConfigError as exc:
            parser.error(str(exc))
    tele = None
    live_layer = bool(args.slo or args.recorder or args.rollups_out)
    if args.metrics_out or args.prometheus_out or live_layer:
        from repro.telemetry import create_telemetry

        # The recorder rides the causal stream (its ring feeds
        # `repro explain`-compatible bundles).
        tele = create_telemetry(causal=bool(args.recorder))
    recorder = None
    if args.recorder:
        from repro.telemetry import FlightRecorder

        recorder = FlightRecorder(args.recorder, registry=tele.registry)
    status = None
    if args.status_path:
        from repro.campaign import resolve_status_path
        from repro.campaign.status import StatusWriter

        status = StatusWriter(resolve_status_path(args.status_path))
    server = PlacementServer(
        scenario,
        telemetry=tele,
        faults=faults,
        status=status,
        status_interval=args.status_interval,
        prometheus_out=args.prometheus_out,
        slo_specs=slo_specs,
        recorder=recorder,
        rollups_out=args.rollups_out,
        stall_after=args.stall_after,
    )
    try:
        report = server.run()
    except (ConfigError, WorkloadError, FaultError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_service_report(report))
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as fp:
            json.dump(report.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"report written to {args.report_out}",
              file=sys.stderr)
    if args.decisions_out:
        daemon = server.last_daemon
        with open(args.decisions_out, "w", encoding="utf-8") as fp:
            fp.write(decisions_as_jsonl(daemon) if daemon else "")
        print(f"decision log written to {args.decisions_out}",
              file=sys.stderr)
    if args.metrics_out and tele is not None:
        tele.close()
        tele.registry.write_json(args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    slo_engine = server.last_slo_engine
    if slo_engine is not None:
        for alert in slo_engine.alerts:
            burns = ""
            if alert.burn_fast is not None and alert.burn_slow is not None:
                burns = (
                    f" (burn fast={alert.burn_fast:.2f}"
                    f" slow={alert.burn_slow:.2f})"
                )
            print(
                f"slo {alert.state}: {alert.slo} at t={alert.t:g}{burns}",
                file=sys.stderr,
            )
    if recorder is not None:
        for path in recorder.dumps:
            print(f"post-mortem bundle: {path}", file=sys.stderr)
    if args.rollups_out:
        print(f"rollups written to {args.rollups_out}", file=sys.stderr)
    return 0


def run_faults_cli(argv) -> int:
    """``repro faults``: validate (and describe) a fault plan file."""
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Work with fault-injection plans (JSON). 'validate' "
                    "parses the plan, optionally checks its link/host "
                    "references against a Clos topology, and prints a "
                    "per-event summary.",
    )
    parser.add_argument("action", choices=["validate"])
    parser.add_argument("plan", help="fault plan JSON file")
    parser.add_argument(
        "--pods", type=int, default=None,
        help="with --racks-per-pod/--hosts-per-rack: also check link and "
             "host references against this Clos topology",
    )
    parser.add_argument("--racks-per-pod", type=int, default=2)
    parser.add_argument("--hosts-per-rack", type=int, default=10)
    parser.add_argument("--oversubscription", type=float, default=1.0)
    args = parser.parse_args(argv)
    from repro.errors import FaultError
    from repro.faults import FaultPlan

    try:
        plan = FaultPlan.load(args.plan)
        if args.pods is not None:
            from repro.topology.fabrics import three_tier_clos

            topology = three_tier_clos(
                pods=args.pods,
                racks_per_pod=args.racks_per_pod,
                hosts_per_rack=args.hosts_per_rack,
                oversubscription=args.oversubscription,
            )
            plan.validate(topology)
    except FaultError as exc:
        print(f"invalid fault plan: {exc}", file=sys.stderr)
        return 1
    print(plan.describe())
    print("plan OK")
    return 0


def run_top_cli(argv) -> int:
    """``repro top``: live dashboard over a serve/campaign status stream.

    Redraws at a wall-clock interval until the stream settles (every
    cell finished) or the user interrupts; ``--once`` renders a single
    frame and exits with 1 when a cell is stalled (CI-friendly).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Watch a live status stream (what 'repro serve "
                    "--status PATH' or a campaign supervisor appends "
                    "to): per-cell decision rates, SLO burn-rate table, "
                    "and recent alert/stall events.",
    )
    parser.add_argument(
        "target",
        help="status file, or a directory containing status.jsonl",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="wall seconds between redraws (default: %(default)s)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (exit code 1 flags stalls)",
    )
    from repro.campaign import DEFAULT_STALL_THRESHOLD

    parser.add_argument(
        "--stall-after", type=float, metavar="SECONDS",
        default=DEFAULT_STALL_THRESHOLD,
        help="flag a non-settled cell silent for longer than this "
             "(default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be positive")
    import time as _time

    from repro.campaign import read_status, resolve_status_path
    from repro.telemetry.top import render_top, stream_settled

    path = resolve_status_path(args.target)

    def frame():
        try:
            records = read_status(path)
        except OSError as exc:
            parser.error(f"cannot read status file: {exc}")
        return records, render_top(
            records, stall_threshold=args.stall_after
        )

    if args.once:
        records, text = frame()
        print(text)
        return 1 if "STALLED" in text else 0
    try:
        while True:
            records, text = frame()
            # Clear screen + home, then the frame (plain ANSI, no deps).
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            if stream_settled(records):
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def run_slo_cli(argv) -> int:
    """``repro slo``: offline SLO evaluation against saved rollups.

    ``repro slo check SPEC ROLLUPS`` exits 0 when every objective holds,
    1 when any burns beyond threshold in both windows, 2 on bad inputs —
    so CI can gate on a serve session's rollup file.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro slo",
        description="Evaluate declarative SLO specs against a saved "
                    "rollup store ('repro serve --rollups-out').",
    )
    parser.add_argument("action", choices=["check"])
    parser.add_argument(
        "spec",
        help="SLO spec JSON (see examples/service_slo.json) or the "
             "literal 'default' for the stock service objectives",
    )
    parser.add_argument("rollups", help="a --rollups-out JSON file")
    parser.add_argument(
        "--at", type=float, default=None, metavar="SIM_SECONDS",
        help="evaluate at this simulated time (default: the store's "
             "last sample)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit per-SLO burn rates as machine-readable JSON",
    )
    args = parser.parse_args(argv)
    from repro.errors import ConfigError
    from repro.telemetry.slo import load_slo_specs
    from repro.telemetry.timeseries import TimeseriesStore

    try:
        specs = load_slo_specs(args.spec)
        with open(args.rollups, "r", encoding="utf-8") as fp:
            store = TimeseriesStore.from_dict(json.load(fp))
    except (ConfigError, OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    now = args.at if args.at is not None else store.last_sample
    if now is None:
        print("error: rollup store has no samples", file=sys.stderr)
        return 2
    results = []
    breached = False
    for spec in specs:
        fast = spec.burn_rate(store, window=spec.fast_window, now=now)
        slow = spec.burn_rate(store, window=spec.slow_window, now=now)
        firing = (
            fast is not None
            and slow is not None
            and fast >= spec.burn_threshold
            and slow >= spec.burn_threshold
        )
        breached = breached or firing
        results.append(
            {
                "slo": spec.name,
                "kind": spec.kind,
                "metric": spec.metric,
                "burn_fast": fast,
                "burn_slow": slow,
                "burn_threshold": spec.burn_threshold,
                "firing": firing,
            }
        )
    if args.json:
        json.dump(
            {"at": now, "breached": breached, "slos": results},
            sys.stdout, indent=2, sort_keys=True,
        )
        sys.stdout.write("\n")
    else:
        width = max(len(r["slo"]) for r in results)

        def fmt(value):
            return f"{value:.2f}" if value is not None else "-"

        print(f"slo check at t={now:g} over {args.rollups}")
        print(
            f"  {'slo':<{width}}  {'burn_fast':>9}  {'burn_slow':>9}  state"
        )
        for r in results:
            state = "FIRING" if r["firing"] else "ok"
            print(
                f"  {r['slo']:<{width}}  {fmt(r['burn_fast']):>9}  "
                f"{fmt(r['burn_slow']):>9}  {state}"
            )
        print("breached" if breached else "all objectives hold")
    return 1 if breached else 0


#: Subcommands with their own parsers, dispatched before the figure CLI.
def run_campaign_worker_cli(argv) -> int:
    """``repro campaign-worker``: drain cells from a shared queue.

    Point any number of these (on any machine sharing the filesystem)
    at a directory seeded by ``repro run --distributed DIR``; each
    atomically claims cells via exclusive-create lease files, executes
    them, and commits results through the queue's content-addressed
    cache.  Exit code 1 flags quarantined cells, 2 a bad queue.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign-worker",
        description="Work-stealing campaign worker over a shared queue "
                    "directory (seeded by 'repro run --distributed DIR'). "
                    "Claims are exclusive-create lease files; leases "
                    "silent beyond the queue's TTL are stolen, so a "
                    "crashed worker's cell is re-claimed automatically.",
    )
    parser.add_argument(
        "queue",
        help="campaign queue directory (must contain manifest.json)",
    )
    parser.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="identity recorded in leases and done markers "
             "(default: host:pid)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts beyond the first before a cell is quarantined, "
             "counting claims lost to crashed workers "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="claim-poll interval while waiting (default: %(default)s)",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="keep polling until the whole queue completes instead of "
             "exiting at the first empty claim (for workers started "
             "alongside or before the supervisor)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="with --wait, give up after this long without claiming "
             "anything (guards orphaned workers)",
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="stop after claiming this many cells",
    )
    args = parser.parse_args(argv)
    from repro.campaign import run_worker
    from repro.errors import ConfigError

    try:
        summary = run_worker(
            args.queue,
            worker_id=args.worker_id,
            retries=args.retries,
            poll=args.poll,
            wait=args.wait,
            idle_timeout=args.idle_timeout,
            max_cells=args.max_cells,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"worker {summary.worker}: claimed={summary.claimed} "
        f"ok={summary.ok} cached={summary.cached} failed={summary.failed}"
    )
    for error in summary.errors:
        print(f"  {error}", file=sys.stderr)
    return 1 if summary.failed else 0


_SUBCOMMANDS = {
    "status": run_status_cli,
    "campaign-worker": run_campaign_worker_cli,
    "report": run_report_cli,
    "bench-compare": run_bench_compare_cli,
    "faults": run_faults_cli,
    "explain": run_explain_cli,
    "trace": run_trace_cli,
    "serve": run_serve_cli,
    "top": run_top_cli,
    "slo": run_slo_cli,
}


def _load_fault_plan(args: argparse.Namespace):
    """The ``--faults`` plan for a figure run (None when not given)."""
    if not args.faults:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.load(args.faults)


def run_figure(args: argparse.Namespace, tele=None) -> int:
    """Dispatch one figure (telemetry threaded when armed)."""
    if args.figure == "fig1":
        print(render_figure1())
        return 0

    if args.figure == "fig3":
        cfg = config_from_args(args, workload=args.workload or "datamining")
        if cfg.oversubscription == 1.0:
            cfg = replace(cfg, oversubscription=4.0)
        outcome = figure3(args.network or "fair", cfg, telemetry=tele)
        print(outcome.table())
        print(f"\noverall minDist/minLoad ratio: {outcome.overall_ratio():.2f}")
        return 0

    if args.figure == "fig5":
        cfg = config_from_args(args, workload=args.workload or "hadoop")
        outcome = run_flow_macro(
            network_policy="fair", config=cfg, telemetry=tele,
            faults=_load_fault_plan(args),
        )
    elif args.figure == "fig6":
        cfg = config_from_args(args, workload=args.workload or "hadoop")
        outcome = run_flow_macro(
            network_policy=args.network or "las", config=cfg, telemetry=tele,
            faults=_load_fault_plan(args),
        )
    elif args.figure == "fig7":
        cfg = config_from_args(args, workload=args.workload or "hadoop")
        cfg = replace(cfg, coflows=True)
        result = figure7(args.network or "varys", cfg, telemetry=tele)
        print(result.table())
        ccts = result.average_ccts()
        print("\nmean CCTs: " + ", ".join(f"{k}={v:.3f}s" for k, v in ccts.items()))
        return 0
    elif args.figure == "fig8":
        cfg = config_from_args(args, workload=args.workload or "hadoop")
        comparison = figure8(cfg, telemetry=tele)
        fair, srpt = comparison.gaps()
        print(f"NEAT + Fair predictor : mean gap = {fair:.3f}")
        print(f"NEAT + SRPT predictor : mean gap = {srpt:.3f}")
        print(f"relative difference   = {comparison.relative_difference():.3f}")
        return 0
    elif args.figure == "fig9":
        cfg = config_from_args(args, workload=args.workload or "hadoop")
        result = figure9(
            cfg, network_policy=args.network or "fair", telemetry=tele
        )
        for name, gap in result.average_gaps().items():
            print(f"{name:8s} mean gap = {gap:.3f}")
        return 0
    elif args.figure == "fig10":
        cfg = config_from_args(args, workload=args.workload or "hadoop")
        short, long = figure10(
            cfg, network_policy=args.network or "srpt", telemetry=tele
        )
        for summary in (short, long):
            print(
                f"{summary.label:5s} flows (n={summary.count}): "
                f"mean |err| = {summary.mean_abs_error:.3f}, "
                f"p95 |err| = {summary.p95_abs_error:.3f}"
            )
        return 0
    elif args.figure == "fig11":
        cfg = testbed_config(num_arrivals=args.arrivals, seed=args.seed)
        result = figure11(cfg, telemetry=tele)
        for net in ("fair", "las"):
            print(
                f"{net.upper():5s} NEAT improvement over minLoad: "
                f"{result.improvement_percent(net):.1f}%"
            )
        return 0
    else:  # pragma: no cover - argparse restricts choices
        return 2

    # fig5/fig6 shared rendering
    print(outcome.table())
    gaps = outcome.average_gaps()
    print("\nmean gaps: " + ", ".join(f"{k}={v:.2f}" for k, v in gaps.items()))
    print(
        f"NEAT improvement: {outcome.improvement_over('minload'):.2f}x vs "
        f"minLoad, {outcome.improvement_over('mindist'):.2f}x vs minDist"
    )
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.figure == "list":
        for name in sorted(FIGURES):
            print(f"{name:6s} {FIGURES[name]}")
        return 0

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.trace_rotate_bytes is not None and args.trace_rotate_bytes < 1:
        parser.error("--trace-rotate-bytes must be >= 1")
    if args.trace_backups < 1:
        parser.error("--trace-backups must be >= 1")

    if args.figure == "all":
        return run_all_summary(args)

    if args.figure == "run":
        return run_campaign_cli(args)

    if args.timeline and args.timeline_interval <= 0:
        parser.error("--timeline-interval must be positive")
    try:
        tele = telemetry_from_args(args)
    except OSError as exc:
        parser.error(f"cannot open --trace file: {exc}")
    from repro.errors import FaultError

    try:
        rc = run_figure(args, tele)
    except FaultError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tele is not None:
            emit_telemetry_outputs(tele, args)
    return rc


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout piped into e.g. `head`, which closed early; exit quietly
        # like other well-behaved CLI tools instead of dumping a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
