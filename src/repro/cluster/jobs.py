"""Job models: tasks, MapReduce jobs, and DAG jobs (§5.1.3-5.1.4).

NEAT views a MapReduce job as a concatenation of two (co)flow placements:
a many-to-many coflow reading input into the Map tasks, and a many-to-one
(or many-to-many) shuffle coflow into the Reduce task(s).  DAG jobs are a
sequence of such stages with dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.node import Resources
from repro.errors import WorkloadError
from repro.topology.base import NodeId


@dataclass(frozen=True)
class TaskSpec:
    """A single compute task and the data it must read.

    Attributes:
        name: task label, e.g. ``"job3/map/2"``.
        inputs: ``(data_node, size_bits)`` pairs the task reads.
        demand: CPU/memory needed to be a candidate host.
        compute_duration: seconds of processing after the stage's data
            transfer completes (0 = transfer-only, the paper's focus).
    """

    name: str
    inputs: Tuple[Tuple[NodeId, float], ...]
    demand: Resources = Resources(cpu=1, memory=1.0)
    compute_duration: float = 0.0

    def __post_init__(self) -> None:
        if not self.inputs:
            raise WorkloadError(f"task {self.name!r} has no inputs")
        if any(size <= 0 for _node, size in self.inputs):
            raise WorkloadError(f"task {self.name!r} has non-positive input")
        if self.compute_duration < 0:
            raise WorkloadError(
                f"task {self.name!r} has negative compute duration"
            )

    @property
    def total_input_bits(self) -> float:
        return sum(size for _node, size in self.inputs)


@dataclass(frozen=True)
class StageSpec:
    """One job stage: a set of tasks placed together as a coflow.

    ``many_to_one`` marks aggregation stages (single Reduce task), which
    NEAT can place optimally rather than with the sequential heuristic.

    ``depends_on`` lists the stage names that must finish before this
    stage starts.  ``None`` (default) means "the previous stage in the
    job" — the implicit linear chain of MapReduce; an explicit tuple
    (possibly empty) turns the job into a general DAG (§5.1.4).
    """

    name: str
    tasks: Tuple[TaskSpec, ...]
    many_to_one: bool = False
    depends_on: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.tasks:
            raise WorkloadError(f"stage {self.name!r} has no tasks")
        if self.many_to_one and len(self.tasks) != 1:
            raise WorkloadError(
                f"many-to-one stage {self.name!r} must have exactly one task"
            )

    @property
    def max_compute_duration(self) -> float:
        return max(task.compute_duration for task in self.tasks)


@dataclass(frozen=True)
class JobSpec:
    """A multi-stage job.

    Stages with ``depends_on=None`` form an implicit linear chain (stage
    ``i+1`` starts when stage ``i`` finishes — the MapReduce shape);
    explicit ``depends_on`` tuples describe an arbitrary DAG (§5.1.4),
    where a stage starts once all of its dependencies have finished and
    independent stages run concurrently.
    """

    name: str
    stages: Tuple[StageSpec, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise WorkloadError(f"job {self.name!r} has no stages")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise WorkloadError(f"job {self.name!r} has duplicate stage names")
        known = set(names)
        for stage in self.stages:
            for dep in stage.depends_on or ():
                if dep not in known:
                    raise WorkloadError(
                        f"stage {stage.name!r} depends on unknown stage "
                        f"{dep!r}"
                    )
                if dep == stage.name:
                    raise WorkloadError(
                        f"stage {stage.name!r} depends on itself"
                    )

    def effective_dependencies(self) -> Dict[str, Tuple[str, ...]]:
        """Resolve the implicit linear chain into explicit dependencies."""
        resolved: Dict[str, Tuple[str, ...]] = {}
        previous: Optional[str] = None
        for stage in self.stages:
            if stage.depends_on is not None:
                resolved[stage.name] = stage.depends_on
            else:
                resolved[stage.name] = (previous,) if previous else ()
            previous = stage.name
        return resolved


def mapreduce_job(
    name: str,
    input_blocks: Sequence[Tuple[NodeId, float]],
    *,
    num_mappers: int,
    shuffle_fraction: float = 1.0,
    num_reducers: int = 1,
    demand: Resources = Resources(cpu=1, memory=1.0),
) -> JobSpec:
    """Build a canonical two-stage MapReduce job.

    Input blocks are assigned to mappers round-robin; each mapper reads its
    blocks (the many-to-many input coflow).  The shuffle stage moves
    ``shuffle_fraction`` of the input bytes from the mapper hosts to the
    reducer(s); since mapper hosts are only known after placement, the
    shuffle stage's data nodes are filled in by the scheduler at runtime —
    here we record the *logical* stage with per-mapper output sizes.

    Note: the returned spec uses task placeholders (``"@task:<name>"``) as
    shuffle data nodes; :class:`~repro.cluster.scheduler.JobScheduler`
    resolves them to the actual mapper hosts.
    """
    if num_mappers < 1 or num_reducers < 1:
        raise WorkloadError("need at least one mapper and one reducer")
    if not input_blocks:
        raise WorkloadError("mapreduce job needs input blocks")
    if not 0 < shuffle_fraction <= 10:
        raise WorkloadError("shuffle_fraction must be in (0, 10]")

    per_mapper: List[List[Tuple[NodeId, float]]] = [[] for _ in range(num_mappers)]
    for index, block in enumerate(input_blocks):
        per_mapper[index % num_mappers].append(block)
    mappers = tuple(
        TaskSpec(
            name=f"{name}/map/{i}",
            inputs=tuple(blocks) if blocks else ((input_blocks[0][0], 1.0),),
            demand=demand,
        )
        for i, blocks in enumerate(per_mapper)
    )
    map_stage = StageSpec(name=f"{name}/map", tasks=mappers)

    mapper_output = [
        sum(size for _n, size in blocks) * shuffle_fraction
        for blocks in per_mapper
    ]
    reducers = []
    for r in range(num_reducers):
        # Each reducer pulls an equal share of every mapper's output.
        inputs = tuple(
            (f"@task:{name}/map/{i}", output / num_reducers)
            for i, output in enumerate(mapper_output)
            if output > 0
        )
        if not inputs:
            raise WorkloadError(f"job {name!r} shuffles zero bytes")
        reducers.append(
            TaskSpec(name=f"{name}/reduce/{r}", inputs=inputs, demand=demand)
        )
    reduce_stage = StageSpec(
        name=f"{name}/shuffle",
        tasks=tuple(reducers),
        many_to_one=(num_reducers == 1),
    )
    return JobSpec(name=name, stages=(map_stage, reduce_stage))


def dag_job(
    name: str,
    stage_specs: Sequence[StageSpec],
) -> JobSpec:
    """Build a DAG-style job from explicit stages (a linear chain)."""
    return JobSpec(name=name, stages=tuple(stage_specs))


@dataclass
class JobResult:
    """Completion record for a job run by the scheduler."""

    name: str
    submit_time: float
    finish_time: float
    stage_finish_times: Dict[str, float] = field(default_factory=dict)
    task_hosts: Dict[str, NodeId] = field(default_factory=dict)

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.submit_time
