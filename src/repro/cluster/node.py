"""Compute-side node model.

NEAT "only uses node properties (e.g., CPU, memory) to determine whether a
node is a candidate host" (§1) — placement itself is network-driven.  This
module provides that candidacy check: per-host CPU/memory capacity,
tracked allocations, and a cluster-wide view that yields the eligible
candidate set for a task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import PlacementError
from repro.topology.base import NodeId, Topology


@dataclass(frozen=True)
class Resources:
    """A CPU/memory quantity (cores, bytes — units are opaque)."""

    cpu: float = 0.0
    memory: float = 0.0

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(self.cpu + other.cpu, self.memory + other.memory)

    def __sub__(self, other: "Resources") -> "Resources":
        return Resources(self.cpu - other.cpu, self.memory - other.memory)

    def fits_within(self, capacity: "Resources") -> bool:
        return self.cpu <= capacity.cpu + 1e-9 and (
            self.memory <= capacity.memory + 1e-9
        )


class ClusterNode:
    """A host's compute capacity and current allocations."""

    def __init__(self, node_id: NodeId, capacity: Resources) -> None:
        self.node_id = node_id
        self.capacity = capacity
        self._used = Resources()

    @property
    def used(self) -> Resources:
        return self._used

    @property
    def available(self) -> Resources:
        return self.capacity - self._used

    def can_fit(self, demand: Resources) -> bool:
        return demand.fits_within(self.available)

    def allocate(self, demand: Resources) -> None:
        if not self.can_fit(demand):
            raise PlacementError(
                f"node {self.node_id!r} cannot fit demand {demand!r} "
                f"(available {self.available!r})"
            )
        self._used = self._used + demand

    def release(self, demand: Resources) -> None:
        released = self._used - demand
        if released.cpu < -1e-9 or released.memory < -1e-9:
            raise PlacementError(
                f"node {self.node_id!r} releasing more than allocated"
            )
        self._used = Resources(max(released.cpu, 0.0), max(released.memory, 0.0))


class Cluster:
    """All hosts of a topology with their compute capacities."""

    def __init__(
        self,
        topology: Topology,
        *,
        default_capacity: Resources = Resources(cpu=16, memory=64.0),
    ) -> None:
        self._topology = topology
        self._nodes: Dict[NodeId, ClusterNode] = {
            host: ClusterNode(host, default_capacity)
            for host in topology.hosts
        }

    @property
    def topology(self) -> Topology:
        return self._topology

    def node(self, node_id: NodeId) -> ClusterNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise PlacementError(f"unknown cluster node {node_id!r}") from None

    def hosts(self) -> Tuple[NodeId, ...]:
        return tuple(self._nodes)

    def candidates(self, demand: Resources) -> Tuple[NodeId, ...]:
        """Hosts with enough free CPU/memory to run the task (§5.1.1)."""
        return tuple(
            node_id
            for node_id, node in self._nodes.items()
            if node.can_fit(demand)
        )
