"""Cluster-side model: node resources, tasks, jobs, and the job scheduler."""

from repro.cluster.jobs import (
    JobResult,
    JobSpec,
    StageSpec,
    TaskSpec,
    dag_job,
    mapreduce_job,
)
from repro.cluster.node import Cluster, ClusterNode, Resources
from repro.cluster.scheduler import JobScheduler

__all__ = [
    "Resources",
    "ClusterNode",
    "Cluster",
    "TaskSpec",
    "StageSpec",
    "JobSpec",
    "JobResult",
    "mapreduce_job",
    "dag_job",
    "JobScheduler",
]
