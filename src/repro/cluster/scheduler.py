"""Job scheduler: drives multi-stage (DAG) jobs through placement and the
network.

For each stage, every task is *placed* (a destination host chosen by the
configured placement policy), its input flows are submitted as one coflow,
and the stage's data transfer finishes when the coflow completes; tasks
then compute for their ``compute_duration`` (stage barrier) and dependent
stages start.  Stages with no dependency ordering run concurrently
(§5.1.4's DAG model).  Shuffle stages reference upstream outputs through
``"@task:<name>"`` placeholders that resolve to the hosts chosen for those
tasks.

Tasks of a stage are placed in descending order of input size — NEAT's
sequential coflow heuristic (§5.1.2) — and multi-input tasks go through
``place_reducer`` when the policy supports it (NEAT does).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.jobs import JobResult, JobSpec, StageSpec, TaskSpec
from repro.cluster.node import Cluster
from repro.coflow.coflow import Coflow, CoflowRecord
from repro.coflow.tracking import CoflowTracker
from repro.errors import PlacementError, WorkloadError
from repro.placement.base import PlacementPolicy, PlacementRequest
from repro.topology.base import NodeId

TASK_PLACEHOLDER_PREFIX = "@task:"


class _RunningJob:
    """Book-keeping for a job in flight."""

    def __init__(self, job: JobSpec, result: JobResult) -> None:
        self.job = job
        self.result = result
        self.dependencies = job.effective_dependencies()
        self.stage_by_name = {stage.name: stage for stage in job.stages}
        self.started: Set[str] = set()
        self.completed: Set[str] = set()

    def eligible_stages(self) -> List[StageSpec]:
        """Stages whose dependencies are all complete and not yet started."""
        out = []
        for stage in self.job.stages:
            if stage.name in self.started:
                continue
            if all(dep in self.completed for dep in self.dependencies[stage.name]):
                out.append(stage)
        return out

    @property
    def finished(self) -> bool:
        return len(self.completed) == len(self.job.stages)


class JobScheduler:
    """Places and runs jobs over a cluster + coflow tracker."""

    def __init__(
        self,
        cluster: Cluster,
        tracker: CoflowTracker,
        policy: PlacementPolicy,
        *,
        rng: Optional[random.Random] = None,
        exclude_data_nodes: bool = False,
    ) -> None:
        """Args:
            cluster: compute capacities (candidate filtering).
            tracker: coflow tracker bound to the network fabric.
            policy: placement policy for every task.
            rng: reserved for policies needing randomness.
            exclude_data_nodes: when True, a task may not run where its
                data lives (forces network transfers; used by experiments
                that want no trivial locality wins).
        """
        self._cluster = cluster
        self._tracker = tracker
        self._policy = policy
        self._rng = rng
        self._exclude_data_nodes = exclude_data_nodes
        self._results: List[JobResult] = []
        self._active: Dict[int, _RunningJob] = {}
        #: coflow id -> (running job, stage) for in-flight transfers.
        self._transfers: Dict[int, Tuple[_RunningJob, StageSpec]] = {}
        tracker.add_completion_listener(self._on_coflow_done)

    @property
    def results(self) -> Sequence[JobResult]:
        """Completed jobs, in completion order."""
        return tuple(self._results)

    @property
    def active_jobs(self) -> int:
        return len(self._active)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_job(self, job: JobSpec) -> None:
        """Start the job's dependency-free stages now."""
        running = _RunningJob(
            job=job,
            result=JobResult(
                name=job.name,
                submit_time=self._tracker.fabric.engine.now,
                finish_time=float("nan"),
            ),
        )
        self._active[id(running)] = running
        self._start_eligible(running)

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------
    def _resolve_inputs(
        self, running: _RunningJob, task: TaskSpec
    ) -> List[Tuple[NodeId, float]]:
        resolved = []
        for node, size in task.inputs:
            if node.startswith(TASK_PLACEHOLDER_PREFIX):
                source_task = node[len(TASK_PLACEHOLDER_PREFIX):]
                try:
                    node = running.result.task_hosts[source_task]
                except KeyError:
                    raise WorkloadError(
                        f"{task.name!r} references unplaced task "
                        f"{source_task!r}"
                    ) from None
            resolved.append((node, size))
        return resolved

    def _candidates_for(
        self, task: TaskSpec, data_nodes: Sequence[NodeId]
    ) -> Tuple[NodeId, ...]:
        candidates = self._cluster.candidates(task.demand)
        if self._exclude_data_nodes:
            banned = set(data_nodes)
            filtered = tuple(c for c in candidates if c not in banned)
            if filtered:
                candidates = filtered
        if not candidates:
            raise PlacementError(
                f"no candidate host can fit task {task.name!r}"
            )
        return candidates

    def _place_task(
        self,
        running: _RunningJob,
        task: TaskSpec,
        coflow: Coflow,
    ) -> NodeId:
        inputs = self._resolve_inputs(running, task)
        candidates = self._candidates_for(task, [n for n, _s in inputs])
        if (
            len(inputs) > 1
            and hasattr(self._policy, "place_reducer")
            and getattr(self._policy, "supports_coflow_prediction", True)
        ):
            host = self._policy.place_reducer(inputs, candidates)
        else:
            # Approximate multi-input tasks by their dominant input.
            data_node, _ = max(inputs, key=lambda pair: pair[1])
            request = PlacementRequest(
                size=sum(size for _n, size in inputs),
                data_node=data_node,
                candidates=candidates,
                tag=task.name,
            )
            host = self._policy.place(request)
            self._policy.notify_placed(request, host)
        self._cluster.node(host).allocate(task.demand)
        running.result.task_hosts[task.name] = host
        for data_node, size in inputs:
            self._tracker.submit_flow(coflow, data_node, host, size)
        return host

    def _start_eligible(self, running: _RunningJob) -> None:
        for stage in running.eligible_stages():
            self._start_stage(running, stage)

    def _start_stage(self, running: _RunningJob, stage: StageSpec) -> None:
        running.started.add(stage.name)
        coflow = self._tracker.new_coflow(tag=stage.name)
        # Register before sealing: an all-local coflow completes
        # synchronously inside seal(), and _on_coflow_done needs the map.
        self._transfers[coflow.coflow_id] = (running, stage)
        ordered = sorted(
            stage.tasks, key=lambda t: (-t.total_input_bits, t.name)
        )
        for task in ordered:
            self._place_task(running, task, coflow)
        self._tracker.seal(coflow)

    # ------------------------------------------------------------------
    # Stage/job completion
    # ------------------------------------------------------------------
    def _on_coflow_done(self, coflow: Coflow, record: CoflowRecord) -> None:
        entry = self._transfers.pop(coflow.coflow_id, None)
        if entry is None:
            return  # not one of ours (foreign coflow on the same tracker)
        running, stage = entry
        compute = stage.max_compute_duration
        engine = self._tracker.fabric.engine
        if compute > 0:
            engine.schedule(
                compute,
                lambda: self._finish_stage(running, stage),
                label=f"compute:{stage.name}",
            )
        else:
            self._finish_stage(running, stage)

    def _finish_stage(self, running: _RunningJob, stage: StageSpec) -> None:
        now = self._tracker.fabric.engine.now
        running.result.stage_finish_times[stage.name] = now
        running.completed.add(stage.name)
        for task in stage.tasks:
            host = running.result.task_hosts[task.name]
            self._cluster.node(host).release(task.demand)
        if running.finished:
            running.result.finish_time = now
            self._results.append(running.result)
            del self._active[id(running)]
        else:
            self._start_eligible(running)
