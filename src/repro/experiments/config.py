"""Shared experiment configuration (§6.1) and Table 1.

:class:`MacroConfig` centralises the knobs every macro experiment shares —
topology size, workload, load level, arrival count, seed — with defaults
matching the paper's setup scaled to laptop runtimes.  ``full_scale()``
returns the paper's exact 160-host configuration.

``TABLE1_PARAMETERS`` records the transport parameter settings of Table 1
and how each maps onto the fluid model (which has no packets or queues —
the mapping is what the fluid abstraction *keeps* from each transport).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.topology.base import Topology
from repro.topology.fabrics import single_rack, three_tier_clos
from repro.units import gbps
from repro.workloads.distributions import EmpiricalDistribution, make_distribution
from repro.workloads.traces import (
    Trace,
    generate_coflow_trace,
    generate_flow_trace,
)

#: Table 1 of the paper, with the fluid-model reading of each knob.
TABLE1_PARAMETERS: Dict[str, Dict[str, str]] = {
    "DCTCP": {
        "qSize": "250 pkts",
        "markingThresh": "65",
        "fluid-model role": (
            "ECN-based fair sharing -> max-min fair rate allocation"
        ),
    },
    "L2DCT": {
        "minRTO": "10 msec",
        "qSize": "250 pkts",
        "fluid-model role": (
            "deadline-free LAS weighting -> least-attained-service priority"
        ),
    },
    "PASE": {
        "minRTO (flows in top queue)": "10 msec",
        "minRTO (flows in other queues)": "200 msec",
        "numQue": "8",
        "fluid-model role": (
            "arbitration approximating SRPT -> strict shortest-remaining"
            "-first priority"
        ),
    },
}

#: Workload-specific default size scaling.  Hadoop's raw sizes reach
#: 200 GB; at 1 Gbps that is hours of simulated time, so macro experiments
#: shrink sizes by 1000x by default (shape preserved; see DESIGN.md).
DEFAULT_SCALE: Dict[str, float] = {
    "websearch": 1.0,
    "datamining": 0.1,
    "hadoop": 1e-3,
}


@dataclass(frozen=True)
class MacroConfig:
    """One macro experiment's setup.

    Attributes:
        pods / racks_per_pod / hosts_per_rack: Clos dimensions.
        workload: ``"websearch"``, ``"datamining"``, or ``"hadoop"``.
        scale: workload size multiplier (None -> per-workload default).
        load: target average edge utilisation (0..1).
        num_arrivals: arrivals in the generated trace.
        seed: master seed (trace and tie-breaks derive from it).
        max_candidates: candidate hosts sampled per task (None = all).
        oversubscription: fabric (non-edge) capacity divisor; >1 makes
            locality matter (used by the Figure 3 comparative study).
        coflows: generate a coflow trace instead of a flow trace.
        coflow_width: (min, max) flows per coflow.
        state_ttl: NEAT node-state snapshot TTL in seconds; enables the
            stale-state (least-loaded) placement fallback under fault
            plans.  None disables age tracking.
        push_node_state: enable NEAT's push-style node-state
            dissemination (daemons refresh the controller on completion).
        alloc_backend: rate-allocator compute backend (``"python"`` or
            ``"numpy"``); ``None`` defers to ``REPRO_ALLOC_BACKEND``.
            Both backends are bit-identical, but the choice is part of
            the declared run config (and therefore the campaign cache
            key) so cached payloads always record how they were made.
    """

    pods: int = 2
    racks_per_pod: int = 2
    hosts_per_rack: int = 10
    workload: str = "websearch"
    scale: Optional[float] = None
    load: float = 0.7
    num_arrivals: int = 800
    seed: int = 42
    max_candidates: Optional[int] = None
    oversubscription: float = 1.0
    coflows: bool = False
    coflow_width: Tuple[int, int] = (2, 6)
    state_ttl: Optional[float] = None
    push_node_state: bool = False
    alloc_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 < self.load < 1:
            raise ConfigError(f"load must be in (0,1), got {self.load!r}")
        if self.num_arrivals < 1:
            raise ConfigError("num_arrivals must be >= 1")
        if self.alloc_backend is not None:
            from repro.network.kernels import BACKENDS

            if self.alloc_backend not in BACKENDS:
                known = ", ".join(BACKENDS)
                raise ConfigError(
                    f"alloc_backend must be one of {known}, "
                    f"got {self.alloc_backend!r}"
                )

    @property
    def num_hosts(self) -> int:
        return self.pods * self.racks_per_pod * self.hosts_per_rack

    def effective_scale(self) -> float:
        if self.scale is not None:
            return self.scale
        return DEFAULT_SCALE.get(self.workload, 1.0)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def build_topology(self) -> Topology:
        """The multi-rooted Clos of §6.1 at this config's dimensions."""
        return three_tier_clos(
            pods=self.pods,
            racks_per_pod=self.racks_per_pod,
            hosts_per_rack=self.hosts_per_rack,
            oversubscription=self.oversubscription,
        )

    def build_distribution(self) -> EmpiricalDistribution:
        return make_distribution(self.workload, scale=self.effective_scale())

    def build_trace(self, topology: Optional[Topology] = None) -> Trace:
        topo = topology if topology is not None else self.build_topology()
        dist = self.build_distribution()
        if self.coflows:
            return generate_coflow_trace(
                hosts=topo.hosts,
                distribution=dist,
                load=self.load,
                edge_capacity=gbps(1),
                num_arrivals=self.num_arrivals,
                seed=self.seed,
                min_width=self.coflow_width[0],
                max_width=self.coflow_width[1],
            )
        return generate_flow_trace(
            hosts=topo.hosts,
            distribution=dist,
            load=self.load,
            edge_capacity=gbps(1),
            num_arrivals=self.num_arrivals,
            seed=self.seed,
        )

    def scaled_down(self, factor: int = 2) -> "MacroConfig":
        """A cheaper copy for CI: fewer hosts and arrivals."""
        return replace(
            self,
            pods=max(1, self.pods // factor),
            num_arrivals=max(50, self.num_arrivals // factor),
        )


def full_scale_config(**overrides) -> MacroConfig:
    """The paper's exact 160-host simulation setup (§6.1)."""
    defaults = dict(
        pods=4,
        racks_per_pod=4,
        hosts_per_rack=10,
        num_arrivals=2000,
    )
    defaults.update(overrides)
    return MacroConfig(**defaults)


def testbed_config(**overrides) -> MacroConfig:
    """The 10-node single-rack testbed of §6.4 (all-to-all Hadoop, 50%)."""
    defaults = dict(
        pods=1,
        racks_per_pod=1,
        hosts_per_rack=10,
        workload="hadoop",
        load=0.5,
        num_arrivals=400,
    )
    defaults.update(overrides)
    return MacroConfig(**defaults)


def build_testbed_topology() -> Topology:
    """The actual single-rack topology used by the testbed experiments."""
    return single_rack(10)
