"""Experiment runner: replay a trace through one placement/network combo.

Every macro experiment in the paper is "generate one trace, replay it under
each (placement policy, network policy) pair, compare completion times".
:func:`replay_flow_trace` and :func:`replay_coflow_trace` are those replay
loops; :func:`compare_policies` sweeps a set of placement policies over a
shared trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.coflow.tracking import CoflowTracker
from repro.coflow.policies.registry import make_coflow_allocator
from repro.errors import ConfigError, RoutingError
from repro.faults import FaultPlan, arm_faults
from repro.network.fabric import NetworkFabric
from repro.network.policies.registry import make_allocator
from repro.placement.base import PlacementRequest
from repro.placement.coflow_placement import (
    RackLocalCoflowPlacer,
    place_coflow_sequential,
)
from repro.placement.registry import make_placement_policy
from repro.sim.engine import Engine
from repro.topology.base import NodeId, Topology
from repro.workloads.noise import SizeEstimator
from repro.workloads.traces import CoflowArrival, TaskArrival, Trace

if TYPE_CHECKING:  # pragma: no cover - avoids an experiments<->telemetry cycle
    from repro.telemetry import Telemetry


def _begin_run(
    telemetry: Optional["Telemetry"],
    fabric: NetworkFabric,
    *,
    placement: str,
    network_policy: str,
    tracker: Optional[CoflowTracker] = None,
):
    """Bind a run's context into the telemetry bundle.

    Returns ``(telemetry, placement_timer, sampler)`` where ``telemetry``
    is never None (the null bundle when disabled), ``placement_timer`` is
    a wall-clock timer for the placement subsystem (or None), and
    ``sampler`` is a :class:`TimelineSampler` when timeline collection was
    requested.
    """
    if telemetry is None:
        from repro.telemetry import NULL_TELEMETRY

        telemetry = NULL_TELEMETRY
    if telemetry.decisions.active:
        telemetry.decisions.set_context(
            placement=placement, network_policy=network_policy
        )
        if tracker is not None:
            telemetry.decisions.bind_coflows(tracker)
        else:
            telemetry.decisions.bind(fabric)
    if telemetry.trace.active:
        telemetry.trace.emit(
            "run_start",
            fabric.engine.now,
            {"placement": placement, "network_policy": network_policy},
        )
    if telemetry.causal.active:
        telemetry.causal.begin_run(
            fabric.engine.now,
            placement=placement,
            network_policy=network_policy,
            capacities={
                link.link_id: fabric.link_capacity(link.link_id)
                for link in fabric.topology.links()
            },
        )
    timer = (
        telemetry.registry.timer("placement")
        if telemetry.registry.enabled
        else None
    )
    sampler = None
    if telemetry.timeline_interval is not None:
        from repro.metrics.timeline import TimelineSampler

        topo = fabric.topology
        sampler = TimelineSampler(
            fabric,
            interval=telemetry.timeline_interval,
            watch_links=[topo.host_downlink(h).link_id for h in topo.hosts],
        )
    return telemetry, timer, sampler


def _end_run(
    telemetry: "Telemetry",
    fabric: NetworkFabric,
    sampler,
    *,
    placement: str,
    network_policy: str,
    records_len: int,
) -> None:
    if sampler is not None:
        telemetry.timelines.append(
            (f"{placement}/{network_policy}", sampler.samples)
        )
    if telemetry.trace.active:
        telemetry.trace.emit(
            "run_end",
            fabric.engine.now,
            {
                "placement": placement,
                "network_policy": network_policy,
                "records": records_len,
                "events_processed": fabric.engine.events_processed,
            },
        )
    if telemetry.causal.active:
        telemetry.causal.end_run(fabric.engine.now, records=records_len)


@dataclass
class RunResult:
    """Everything a replay produces."""

    placement: str
    network_policy: str
    records: Tuple
    #: tag -> predicted completion time at placement (NEAT/minFCT only).
    predictions: Dict[str, float] = field(default_factory=dict)
    #: control-plane messages sent (NEAT only; 0 for baselines).
    control_messages: int = 0
    events_processed: int = 0
    sim_duration: float = 0.0
    #: degraded-operation tallies — all zero on fault-free runs.
    flows_aborted: int = 0
    flows_rerouted: int = 0
    tasks_dropped: int = 0
    stale_fallbacks: int = 0


def _candidate_pool(
    hosts: Sequence[NodeId],
    data_node: NodeId,
    *,
    exclude_data_node: bool,
    max_candidates: Optional[int],
    rng: random.Random,
) -> Tuple[NodeId, ...]:
    pool = [h for h in hosts if not (exclude_data_node and h == data_node)]
    if max_candidates is not None and len(pool) > max_candidates:
        pool = rng.sample(pool, max_candidates)
        pool.sort()
    return tuple(pool)


def replay_flow_trace(
    trace: Trace,
    topology: Topology,
    *,
    network_policy: str,
    placement: str,
    predictor: str = "fair",
    seed: int = 1,
    exclude_data_node: bool = True,
    max_candidates: Optional[int] = None,
    horizon: Optional[float] = None,
    size_estimator: Optional[SizeEstimator] = None,
    telemetry: Optional["Telemetry"] = None,
    incremental: Optional[bool] = None,
    shadow_verify: bool = False,
    alloc_backend: Optional[str] = None,
    faults: Optional[FaultPlan] = None,
    state_ttl: Optional[float] = None,
    push_updates: bool = False,
) -> RunResult:
    """Replay a flow trace: place every task, run the network to empty.

    Args:
        trace: arrivals produced by :func:`~repro.workloads.generate_flow_trace`.
        topology: the fabric to simulate on (reused read-only across runs).
        network_policy: flow scheduling policy name (fair/fcfs/las/srpt or
            dctcp/l2dct/pase).
        placement: placement policy name (neat/minfct/minload/mindist/random).
        predictor: FCT predictor for NEAT/minFCT (Proposition 4.1 says
            "fair" is the right default regardless of ``network_policy``).
        seed: randomness for candidate sampling and tie-breaks (shared by
            every policy so comparisons stay paired).
        exclude_data_node: disallow running the task where its data lives
            (keeps every task a real network transfer, as in the paper's
            placement experiments).
        max_candidates: subsample this many candidate hosts per task
            (models slot availability; also bounds daemon queries).
        horizon: stop the simulation at this time instead of draining.
        size_estimator: when given, the *placement* layer sees
            ``estimator.estimate(size)`` while the network transfers the
            true size — the §7 flow-size-uncertainty model.
        telemetry: optional :class:`~repro.telemetry.Telemetry` bundle:
            metrics, trace events, and the placement-decision log are all
            recorded against this run.
        incremental: scope rate recomputes to the dirty sharing component
            (default: whatever the allocator declares safe); ``False``
            forces the full-recompute reference path.
        shadow_verify: run the full allocator side-by-side with every
            scoped recompute and raise on any rate divergence.
        alloc_backend: rate-allocator compute backend, ``"python"`` or
            ``"numpy"`` (default: ``REPRO_ALLOC_BACKEND`` env var, else
            python).  Bit-identical either way; numpy is faster on large
            sharing components and falls back to python when absent.
        faults: optional :class:`~repro.faults.FaultPlan` to inject.  An
            empty (or absent) plan leaves the run byte-identical to a
            fault-free one.
        state_ttl: NEAT node-state TTL enabling the stale-state fallback
            (see :func:`~repro.placement.neat.build_neat`).
        push_updates: enable NEAT's push-style state dissemination.
    """
    engine = Engine(telemetry=telemetry)
    fabric = NetworkFabric(
        engine,
        topology,
        make_allocator(network_policy, backend=alloc_backend),
        telemetry=telemetry,
        incremental=incremental,
        shadow_verify=shadow_verify,
    )
    place_rng = random.Random(seed)
    pool_rng = random.Random(seed + 7)
    policy = make_placement_policy(
        placement, fabric, rng=place_rng, predictor=predictor,
        state_ttl=state_ttl, push_updates=push_updates,
        telemetry=telemetry,
    )
    injector = arm_faults(faults, fabric, policy, telemetry)
    tele, place_timer, sampler = _begin_run(
        telemetry, fabric, placement=placement, network_policy=network_policy
    )
    prof = tele.profiler if tele.profiler.enabled else None
    causal = tele.causal if tele.causal.active else None
    hosts = topology.hosts
    predictions: Dict[str, float] = {}

    def make_arrival_callback(arrival: TaskArrival):
        def place_task() -> None:
            candidates = _candidate_pool(
                hosts,
                arrival.data_node,
                exclude_data_node=exclude_data_node,
                max_candidates=max_candidates,
                rng=pool_rng,
            )
            if injector is not None:
                # The cluster manager knows which hosts are dead (the
                # paper's heartbeat layer); tasks whose data node is gone
                # or whose every candidate is gone cannot be placed.
                if not fabric.host_is_up(arrival.data_node):
                    injector.note_task_dropped(arrival.tag)
                    return
                candidates = tuple(
                    h for h in candidates if fabric.host_is_up(h)
                )
                if not candidates:
                    injector.note_task_dropped(arrival.tag)
                    return
            seen_size = (
                size_estimator.estimate(arrival.size)
                if size_estimator is not None
                else arrival.size
            )
            request = PlacementRequest(
                size=seen_size,
                data_node=arrival.data_node,
                candidates=candidates,
                tag=arrival.tag,
            )
            if prof is not None:
                with prof.span("placement.place"):
                    if place_timer is not None:
                        with place_timer.time():
                            host = policy.place(request)
                    else:
                        host = policy.place(request)
            elif place_timer is not None:
                with place_timer.time():
                    host = policy.place(request)
            else:
                host = policy.place(request)
            policy.notify_placed(request, host)
            if injector is not None:
                try:
                    fabric.submit(
                        arrival.data_node, host, arrival.size, tag=arrival.tag
                    )
                except RoutingError:
                    # A link failure partitioned data node from host
                    # between placement and submission.
                    injector.note_task_dropped(arrival.tag)
                    return
            else:
                fabric.submit(
                    arrival.data_node, host, arrival.size, tag=arrival.tag
                )
            daemon = getattr(policy, "daemon", None)
            if daemon is not None and daemon.decisions:
                predictions[arrival.tag] = daemon.decisions[-1].predicted_time

        if causal is None:
            return place_task

        def on_arrival() -> None:
            # Every task arrival opens a trace context: the placement
            # decision, its control messages, and the spawned flow all
            # attribute to this trace id.
            causal.begin_task(
                engine.now,
                tag=arrival.tag,
                kind="flow",
                size=arrival.size,
                data_node=arrival.data_node,
            )
            try:
                place_task()
            finally:
                causal.end_task(engine.now)

        return on_arrival

    for arrival in trace.arrivals:
        if not isinstance(arrival, TaskArrival):
            raise ConfigError("replay_flow_trace needs a flow trace")
        engine.schedule_at(arrival.time, make_arrival_callback(arrival))
    engine.run(until=horizon)
    _end_run(
        tele,
        fabric,
        sampler,
        placement=placement,
        network_policy=network_policy,
        records_len=len(fabric.records),
    )

    bus = getattr(policy, "bus", None)
    daemon = getattr(policy, "daemon", None)
    return RunResult(
        placement=placement,
        network_policy=network_policy,
        records=fabric.records,
        predictions=predictions,
        control_messages=bus.messages_sent if bus is not None else 0,
        events_processed=engine.events_processed,
        sim_duration=engine.now,
        flows_aborted=fabric.flows_aborted,
        flows_rerouted=fabric.flows_rerouted,
        tasks_dropped=injector.tasks_dropped if injector is not None else 0,
        stale_fallbacks=daemon.stale_fallbacks if daemon is not None else 0,
    )


def replay_coflow_trace(
    trace: Trace,
    topology: Topology,
    *,
    network_policy: str,
    placement: str,
    predictor: str = "fair",
    coflow_predictor: Optional[str] = None,
    seed: int = 1,
    exclude_data_node: bool = True,
    max_candidates: Optional[int] = None,
    horizon: Optional[float] = None,
    telemetry: Optional["Telemetry"] = None,
    alloc_backend: Optional[str] = None,
    faults: Optional[FaultPlan] = None,
    state_ttl: Optional[float] = None,
    push_updates: bool = False,
) -> RunResult:
    """Replay a coflow trace under a coflow scheduling policy.

    ``alloc_backend`` is accepted for signature parity with
    :func:`replay_flow_trace` (``compare_policies`` forwards one kwargs
    set to both) but is ignored: coflow allocators (MADD) have no
    vectorized backend.

    Placement follows §5.1.2: each coflow's flows are placed sequentially
    in descending size order through the configured placement policy.

    Under a fault plan, a coflow whose placement or submission hits a dead
    host is dropped as a whole (any already-submitted constituent flows
    drain but the coflow never completes — a failed job, counted in
    ``tasks_dropped``).
    """
    engine = Engine(telemetry=telemetry)
    fabric = NetworkFabric(
        engine,
        topology,
        make_coflow_allocator(network_policy),
        telemetry=telemetry,
    )
    tracker = CoflowTracker(fabric, telemetry=telemetry)
    place_rng = random.Random(seed)
    pool_rng = random.Random(seed + 7)
    if coflow_predictor is None:
        coflow_predictor = network_policy
    policy = make_placement_policy(
        placement,
        fabric,
        rng=place_rng,
        predictor=predictor,
        coflow_predictor=coflow_predictor if placement == "neat" else None,
        state_ttl=state_ttl,
        push_updates=push_updates,
        telemetry=telemetry,
    )
    injector = arm_faults(faults, fabric, policy, telemetry)
    tele, place_timer, sampler = _begin_run(
        telemetry,
        fabric,
        placement=placement,
        network_policy=network_policy,
        tracker=tracker,
    )
    prof = tele.profiler if tele.profiler.enabled else None
    causal = tele.causal if tele.causal.active else None
    # The paper's minDist coflow adaptation keeps a coflow's flows in one
    # rack near the input data (Fig. 7 description).
    rack_local = (
        RackLocalCoflowPlacer(policy) if placement == "mindist" else None
    )
    hosts = topology.hosts

    def make_arrival_callback(arrival: CoflowArrival):
        def place_task() -> None:
            sources = {node for node, _size in arrival.transfers}
            pool = [
                h for h in hosts if not (exclude_data_node and h in sources)
            ]
            if max_candidates is not None and len(pool) > max_candidates:
                pool = sorted(pool_rng.sample(pool, max_candidates))
            if injector is not None:
                if any(not fabric.host_is_up(node) for node in sources):
                    injector.note_task_dropped(arrival.tag)
                    return
                pool = [h for h in pool if fabric.host_is_up(h)]
                if not pool:
                    injector.note_task_dropped(arrival.tag)
                    return
            if rack_local is not None:
                placer = lambda: rack_local.place_coflow(  # noqa: E731
                    tracker, arrival.transfers, pool, tag=arrival.tag
                )
            else:
                placer = lambda: place_coflow_sequential(  # noqa: E731
                    policy,
                    tracker,
                    arrival.transfers,
                    pool,
                    tag=arrival.tag,
                )
            if injector is not None:
                inner = placer

                def placer() -> None:
                    try:
                        inner()
                    except RoutingError:
                        injector.note_task_dropped(arrival.tag)

            if prof is not None:
                with prof.span("placement.place"):
                    if place_timer is not None:
                        with place_timer.time():
                            placer()
                    else:
                        placer()
            elif place_timer is not None:
                with place_timer.time():
                    placer()
            else:
                placer()

        if causal is None:
            return place_task

        def on_arrival() -> None:
            causal.begin_task(
                engine.now,
                tag=arrival.tag,
                kind="coflow",
                size=sum(size for _node, size in arrival.transfers),
                data_node=max(arrival.transfers, key=lambda ts: ts[1])[0],
            )
            try:
                place_task()
            finally:
                causal.end_task(engine.now)

        return on_arrival

    for arrival in trace.arrivals:
        if not isinstance(arrival, CoflowArrival):
            raise ConfigError("replay_coflow_trace needs a coflow trace")
        engine.schedule_at(arrival.time, make_arrival_callback(arrival))
    engine.run(until=horizon)
    _end_run(
        tele,
        fabric,
        sampler,
        placement=placement,
        network_policy=network_policy,
        records_len=len(tracker.records),
    )

    bus = getattr(policy, "bus", None)
    daemon = getattr(policy, "daemon", None)
    return RunResult(
        placement=placement,
        network_policy=network_policy,
        records=tracker.records,
        control_messages=bus.messages_sent if bus is not None else 0,
        events_processed=engine.events_processed,
        sim_duration=engine.now,
        flows_aborted=fabric.flows_aborted,
        flows_rerouted=fabric.flows_rerouted,
        tasks_dropped=injector.tasks_dropped if injector is not None else 0,
        stale_fallbacks=daemon.stale_fallbacks if daemon is not None else 0,
    )


def compare_policies(
    trace: Trace,
    topology: Topology,
    *,
    network_policy: str,
    placements: Sequence[str],
    coflows: bool = False,
    **kwargs,
) -> Dict[str, RunResult]:
    """Replay one trace under several placement policies (paired design)."""
    replay = replay_coflow_trace if coflows else replay_flow_trace
    results: Dict[str, RunResult] = {}
    for placement in placements:
        results[placement] = replay(
            trace,
            topology,
            network_policy=network_policy,
            placement=placement,
            **kwargs,
        )
    return results
