"""Microbenchmarks of §6.3: Figures 8, 9, and 10.

* Figure 8 — placing with the Fair predictor vs the SRPT predictor when
  the network actually runs SRPT: Proposition 4.1 says the two should rank
  candidates identically, so performance should match.
* Figure 9 — the value of preferred hosts: minFCT (prediction without the
  node-state filter) degrades performance, even below minDist.
* Figure 10 — prediction accuracy: ``(actual - predicted)/predicted`` per
  flow, binned into short vs long flows; error grows with flow size
  because long flows see more future arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import MacroConfig
from repro.experiments.runner import RunResult, compare_policies, replay_flow_trace
from repro.metrics.stats import average_gap, mean, percentile


# ----------------------------------------------------------------------
# Figure 8: Fair predictor vs SRPT predictor under an SRPT network
# ----------------------------------------------------------------------
@dataclass
class PredictorComparison:
    fair_predictor: RunResult
    srpt_predictor: RunResult

    def gaps(self) -> Tuple[float, float]:
        return (
            average_gap(self.fair_predictor.records),
            average_gap(self.srpt_predictor.records),
        )

    def relative_difference(self) -> float:
        """|gap_fair - gap_srpt| / max(...) — should be small (Prop 4.1)."""
        fair, srpt = self.gaps()
        denom = max(fair, srpt, 1e-12)
        return abs(fair - srpt) / denom


def figure8(
    config: MacroConfig = None, *, telemetry=None
) -> PredictorComparison:
    """NEAT under SRPT scheduling, predicting with Fair vs SRPT models."""
    cfg = config if config is not None else MacroConfig(workload="hadoop")
    topology = cfg.build_topology()
    trace = cfg.build_trace(topology)
    runs = {}
    for predictor in ("fair", "srpt"):
        runs[predictor] = replay_flow_trace(
            trace,
            topology,
            network_policy="srpt",
            placement="neat",
            predictor=predictor,
            seed=cfg.seed,
            max_candidates=cfg.max_candidates,
            telemetry=telemetry,
        )
    return PredictorComparison(
        fair_predictor=runs["fair"], srpt_predictor=runs["srpt"]
    )


# ----------------------------------------------------------------------
# Figure 9: benefits of preferred-hosts (node state) placement
# ----------------------------------------------------------------------
@dataclass
class PreferredHostsOutcome:
    results: Dict[str, RunResult]

    def average_gaps(self) -> Dict[str, float]:
        return {
            name: average_gap(r.records) for name, r in self.results.items()
        }

    def minfct_degradation(self) -> float:
        """gap(minFCT)/gap(NEAT) - 1: how much dropping node state hurts."""
        gaps = self.average_gaps()
        if gaps["neat"] <= 0:
            return float("inf")
        return gaps["minfct"] / gaps["neat"] - 1.0


def figure9(
    config: MacroConfig = None,
    *,
    network_policy: str = "srpt",
    telemetry=None,
) -> PreferredHostsOutcome:
    """NEAT vs minFCT vs minDist under SRPT (the paper's §6.3 setup)."""
    cfg = config if config is not None else MacroConfig(workload="hadoop")
    topology = cfg.build_topology()
    trace = cfg.build_trace(topology)
    results = compare_policies(
        trace,
        topology,
        network_policy=network_policy,
        placements=["neat", "minfct", "mindist"],
        seed=cfg.seed,
        max_candidates=cfg.max_candidates,
        telemetry=telemetry,
    )
    return PreferredHostsOutcome(results=results)


# ----------------------------------------------------------------------
# Figure 10: FCT prediction accuracy
# ----------------------------------------------------------------------
@dataclass
class PredictionErrorSummary:
    """Relative prediction error statistics for one size class."""

    label: str
    count: int
    mean_abs_error: float
    median_error: float
    p95_abs_error: float


def prediction_errors(
    run: RunResult,
) -> List[Tuple[float, float]]:
    """Per-flow ``(size, (actual - predicted)/predicted)`` pairs.

    Skips flows with non-positive predictions (fully local placements).
    """
    by_tag = {r.tag: r for r in run.records}
    pairs: List[Tuple[float, float]] = []
    for tag, predicted in run.predictions.items():
        record = by_tag.get(tag)
        if record is None or predicted <= 0:
            continue
        pairs.append((record.size, (record.fct - predicted) / predicted))
    return pairs


def figure10(
    config: MacroConfig = None,
    *,
    network_policy: str = "srpt",
    split_size: float = None,
    telemetry=None,
) -> Tuple[PredictionErrorSummary, PredictionErrorSummary]:
    """Prediction error for short flows vs long flows.

    Returns ``(short_summary, long_summary)``; the split defaults to the
    trace's median flow size.
    """
    cfg = config if config is not None else MacroConfig(workload="hadoop")
    topology = cfg.build_topology()
    trace = cfg.build_trace(topology)
    run = replay_flow_trace(
        trace,
        topology,
        network_policy=network_policy,
        placement="neat",
        seed=cfg.seed,
        max_candidates=cfg.max_candidates,
        telemetry=telemetry,
    )
    pairs = prediction_errors(run)
    if not pairs:
        raise ValueError("no prediction samples collected")
    if split_size is None:
        sizes = sorted(size for size, _err in pairs)
        split_size = sizes[len(sizes) // 2]

    def summarize(label: str, members: Sequence[Tuple[float, float]]):
        errors = [err for _size, err in members]
        abs_errors = [abs(err) for err in errors]
        if not errors:
            return PredictionErrorSummary(label, 0, 0.0, 0.0, 0.0)
        return PredictionErrorSummary(
            label=label,
            count=len(errors),
            mean_abs_error=mean(abs_errors),
            median_error=percentile(errors, 50),
            p95_abs_error=percentile(abs_errors, 95),
        )

    short = summarize(
        "short", [(s, e) for s, e in pairs if s <= split_size]
    )
    long = summarize("long", [(s, e) for s, e in pairs if s > split_size])
    return short, long
