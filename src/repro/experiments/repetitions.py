"""Multi-seed repetition helpers: mean and spread across trace seeds.

One trace is one sample from the workload distribution; claims like
"NEAT is 2x better" deserve error bars.  :func:`repeat_flow_macro` reruns
a macro experiment over several seeds and aggregates the headline metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.experiments.config import MacroConfig
from repro.experiments.flow_macro import MacroOutcome, run_flow_macro


@dataclass(frozen=True)
class Aggregate:
    """Mean and sample standard deviation over repetitions."""

    mean: float
    stdev: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.stdev:.3f} (n={self.count})"


def aggregate(values: Sequence[float]) -> Aggregate:
    """Mean ± sample stdev of a list of per-seed values."""
    if not values:
        raise ConfigError("cannot aggregate zero repetitions")
    mean = sum(values) / len(values)
    if len(values) == 1:
        return Aggregate(mean=mean, stdev=0.0, count=1)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return Aggregate(mean=mean, stdev=math.sqrt(var), count=len(values))


@dataclass
class RepeatedMacro:
    """Aggregated outcome of repeated macro runs."""

    network_policy: str
    per_seed: List[MacroOutcome]

    def gap_aggregates(self) -> Dict[str, Aggregate]:
        """Per placement policy: mean ± stdev of the mean gap."""
        names = self.per_seed[0].average_gaps().keys()
        return {
            name: aggregate(
                [outcome.average_gaps()[name] for outcome in self.per_seed]
            )
            for name in names
        }

    def improvement_aggregate(self, baseline: str) -> Aggregate:
        """NEAT's improvement factor over ``baseline``, across seeds."""
        return aggregate(
            [outcome.improvement_over(baseline) for outcome in self.per_seed]
        )

    def neat_always_wins(self, *, tolerance: float = 1.0) -> bool:
        """True if NEAT's mean gap beats every baseline in every seed
        (up to a multiplicative tolerance)."""
        for outcome in self.per_seed:
            gaps = outcome.average_gaps()
            for name, gap in gaps.items():
                if name != "neat" and gaps["neat"] > gap * tolerance:
                    return False
        return True


def repeat_flow_macro(
    *,
    network_policy: str,
    config: MacroConfig,
    seeds: Sequence[int],
    placements: Sequence[str] = ("neat", "minload", "mindist"),
    predictor: str = "fair",
) -> RepeatedMacro:
    """Run one macro experiment once per seed and aggregate."""
    if not seeds:
        raise ConfigError("need at least one seed")
    outcomes = []
    for seed in seeds:
        cfg = replace(config, seed=seed)
        outcomes.append(
            run_flow_macro(
                network_policy=network_policy,
                config=cfg,
                placements=placements,
                predictor=predictor,
            )
        )
    return RepeatedMacro(network_policy=network_policy, per_seed=outcomes)
