"""Multi-seed repetition helpers: spread and tails across trace seeds.

One trace is one sample from the workload distribution; claims like
"NEAT is 2x better" deserve error bars — and the related
cluster-scheduling literature reports *tail* latency, so
:class:`Aggregate` carries p50/p95/p99 alongside mean ± stdev.

Since the campaign layer exists, :func:`repeat_flow_macro` is a thin
declarative front-end over it: each seed is one
:class:`~repro.campaign.spec.RunSpec` cell, executed through
:func:`~repro.campaign.executor.run_campaign` — serially in-process by
default, on a supervised worker pool with ``jobs > 1``, and against the
content-addressed cache when ``cache`` is given.  Per-seed results come
back as :class:`~repro.campaign.aggregate.MacroSummary` adapters, which
expose the same ``average_gaps`` / ``improvement_over`` surface as
:class:`~repro.experiments.flow_macro.MacroOutcome`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.experiments.config import MacroConfig
from repro.metrics.stats import percentile


@dataclass(frozen=True)
class Aggregate:
    """Mean, spread, and tail percentiles over repetitions."""

    mean: float
    stdev: float
    count: int
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.stdev:.3f} (n={self.count})"

    def detailed(self) -> str:
        """One-line summary including the tail percentiles."""
        return (
            f"{self.mean:.3f} ± {self.stdev:.3f} "
            f"[p50={self.p50:.3f} p95={self.p95:.3f} p99={self.p99:.3f}] "
            f"(n={self.count})"
        )

    def as_dict(self) -> Dict[str, float]:
        """JSON-safe form (campaign payloads, BENCH artifacts)."""
        return {
            "mean": self.mean,
            "stdev": self.stdev,
            "count": self.count,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def aggregate(values: Sequence[float]) -> Aggregate:
    """Mean ± sample stdev plus p50/p95/p99 of per-seed values."""
    if not values:
        raise ConfigError("cannot aggregate zero repetitions")
    values = list(values)
    mean = sum(values) / len(values)
    if len(values) == 1:
        stdev = 0.0
    else:
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        stdev = math.sqrt(var)
    return Aggregate(
        mean=mean,
        stdev=stdev,
        count=len(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
    )


@dataclass
class RepeatedMacro:
    """Aggregated outcome of repeated macro runs.

    ``per_seed`` entries expose the :class:`MacroOutcome` aggregate
    surface (``average_gaps`` / ``afcts`` / ``improvement_over``);
    campaign-backed runs store
    :class:`~repro.campaign.aggregate.MacroSummary` adapters there.
    """

    network_policy: str
    per_seed: List

    def gap_aggregates(self) -> Dict[str, Aggregate]:
        """Per placement policy: mean/stdev/percentiles of the mean gap."""
        names = self.per_seed[0].average_gaps().keys()
        return {
            name: aggregate(
                [outcome.average_gaps()[name] for outcome in self.per_seed]
            )
            for name in names
        }

    def improvement_aggregate(self, baseline: str) -> Aggregate:
        """NEAT's improvement factor over ``baseline``, across seeds."""
        return aggregate(
            [outcome.improvement_over(baseline) for outcome in self.per_seed]
        )

    def neat_always_wins(self, *, tolerance: float = 1.0) -> bool:
        """True if NEAT's mean gap beats every baseline in every seed
        (up to a multiplicative tolerance)."""
        for outcome in self.per_seed:
            gaps = outcome.average_gaps()
            for name, gap in gaps.items():
                if name != "neat" and gaps["neat"] > gap * tolerance:
                    return False
        return True

    def report(self) -> str:
        """The repeated-macro report, tails included."""
        lines = [
            f"repeated macro under {self.network_policy} "
            f"({len(self.per_seed)} seeds), gap-from-optimal per placement:"
        ]
        for name, agg in sorted(self.gap_aggregates().items()):
            lines.append(f"  {name:8s} {agg.detailed()}")
        return "\n".join(lines)


def repeat_flow_macro(
    *,
    network_policy: str,
    config: MacroConfig,
    seeds: Sequence[int],
    placements: Sequence[str] = ("neat", "minload", "mindist"),
    predictor: str = "fair",
    jobs: int = 1,
    cache=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
) -> RepeatedMacro:
    """Run one macro experiment once per seed and aggregate.

    Routed through the campaign orchestrator: ``jobs`` parallelises
    across seeds, ``cache`` (a
    :class:`~repro.campaign.cache.ResultCache`) skips already-computed
    seeds, and ``timeout``/``retries`` bound each run.  A seed whose
    cell is quarantined raises rather than silently shrinking the
    sample.
    """
    if not seeds:
        raise ConfigError("need at least one seed")
    from repro.campaign.aggregate import MacroSummary
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import flow_grid

    campaign = flow_grid(
        name=f"repeat-{network_policy}",
        base_config=config,
        seeds=list(seeds),
        network_policies=(network_policy,),
        placements=tuple(placements),
        predictor=predictor,
    )
    report = run_campaign(
        campaign,
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        retries=retries,
        progress=progress,
    )
    if report.quarantined:
        raise ConfigError(
            "repetition campaign lost seeds:\n" + report.failure_report()
        )
    return RepeatedMacro(
        network_policy=network_policy,
        per_seed=[MacroSummary(o.payload) for o in report.outcomes],
    )
