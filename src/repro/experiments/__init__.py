"""Experiment harness reproducing every table and figure of the paper.

One module per figure:

* :mod:`repro.experiments.motivating`   — Figure 1 (exact).
* :mod:`repro.experiments.comparative`  — Figure 3 (minDist vs minLoad).
* :mod:`repro.experiments.config`       — Table 1 + shared MacroConfig.
* :mod:`repro.experiments.flow_macro`   — Figures 5-6.
* :mod:`repro.experiments.coflow_macro` — Figure 7.
* :mod:`repro.experiments.micro`        — Figures 8-10.
* :mod:`repro.experiments.testbed`      — Figure 11.
"""

from repro.experiments.comparative import ComparativeOutcome, figure3
from repro.experiments.coflow_macro import CoflowOutcome, figure7
from repro.experiments.config import (
    TABLE1_PARAMETERS,
    MacroConfig,
    build_testbed_topology,
    full_scale_config,
    testbed_config,
)
from repro.experiments.flow_macro import (
    MacroOutcome,
    figure5,
    figure6,
    run_flow_macro,
)
from repro.experiments.micro import (
    PredictorComparison,
    PredictionErrorSummary,
    PreferredHostsOutcome,
    figure8,
    figure9,
    figure10,
    prediction_errors,
)
from repro.experiments.motivating import (
    EXPECTED_FIGURE1,
    Figure1Row,
    example_topology,
    figure1_table,
    render_figure1,
)
from repro.experiments.repetitions import (
    Aggregate,
    RepeatedMacro,
    aggregate,
    repeat_flow_macro,
)
from repro.experiments.runner import (
    RunResult,
    compare_policies,
    replay_coflow_trace,
    replay_flow_trace,
)
from repro.experiments.testbed import TestbedOutcome, figure11

__all__ = [
    "RunResult",
    "replay_flow_trace",
    "replay_coflow_trace",
    "compare_policies",
    "Aggregate",
    "RepeatedMacro",
    "aggregate",
    "repeat_flow_macro",
    "MacroConfig",
    "full_scale_config",
    "testbed_config",
    "build_testbed_topology",
    "TABLE1_PARAMETERS",
    "figure1_table",
    "render_figure1",
    "EXPECTED_FIGURE1",
    "Figure1Row",
    "example_topology",
    "figure3",
    "ComparativeOutcome",
    "figure5",
    "figure6",
    "run_flow_macro",
    "MacroOutcome",
    "figure7",
    "CoflowOutcome",
    "figure8",
    "figure9",
    "figure10",
    "prediction_errors",
    "PredictorComparison",
    "PreferredHostsOutcome",
    "PredictionErrorSummary",
    "TestbedOutcome",
]
