"""Figures 5 and 6: flow placement macrobenchmarks.

Figure 5 — NEAT vs minLoad vs minDist under Fair (DCTCP) for (a) Hadoop
and (b) web-search workloads, reported as gap-from-optimal per flow-size
bin.  Figure 6 — the same under (a) L2DCT (LAS) and (b) PASE (SRPT) for
Hadoop.  The headline claims: up to ~3.7x better than the baselines under
Fair, ~3x under LAS, and ~30% under SRPT.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

from repro.experiments.config import MacroConfig
from repro.experiments.runner import RunResult, compare_policies
from repro.metrics.report import gap_by_bin_table
from repro.metrics.stats import afct, average_gap

DEFAULT_PLACEMENTS: Tuple[str, ...] = ("neat", "minload", "mindist")


@dataclass
class MacroOutcome:
    """Results of one macro experiment (one network policy, one workload)."""

    network_policy: str
    workload: str
    results: Dict[str, RunResult]

    def average_gaps(self) -> Dict[str, float]:
        return {
            name: average_gap(r.records) for name, r in self.results.items()
        }

    def afcts(self) -> Dict[str, float]:
        return {name: afct(r.records) for name, r in self.results.items()}

    def improvement_over(self, baseline: str, *, metric: str = "gap") -> float:
        """NEAT's improvement factor over ``baseline``.

        ``metric="gap"`` uses mean gap-from-optimal (the figures' y-axis);
        ``metric="afct"`` uses average FCT (the abstract's headline).
        """
        values = self.average_gaps() if metric == "gap" else self.afcts()
        neat = values["neat"]
        if neat <= 0:
            return float("inf")
        return values[baseline] / neat

    def table(self, *, num_bins: int = 8) -> str:
        per_policy = {
            name: r.records for name, r in self.results.items()
        }
        return gap_by_bin_table(per_policy, num_bins=num_bins)

    def summary_dict(self) -> Dict[str, object]:
        """JSON-safe summary (for archiving / external plotting)."""
        return {
            "network_policy": self.network_policy,
            "workload": self.workload,
            "average_gaps": self.average_gaps(),
            "afcts": self.afcts(),
            "improvement_vs_minload": self.improvement_over("minload")
            if {"neat", "minload"} <= self.results.keys()
            else None,
            "improvement_vs_mindist": self.improvement_over("mindist")
            if {"neat", "mindist"} <= self.results.keys()
            else None,
            "num_records": {
                name: len(r.records) for name, r in self.results.items()
            },
        }


def run_flow_macro(
    *,
    network_policy: str,
    config: MacroConfig,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    predictor: str = "fair",
    telemetry=None,
    faults=None,
) -> MacroOutcome:
    """Run one (network policy, workload) cell of Figures 5/6.

    ``faults`` (a :class:`~repro.faults.FaultPlan`) is injected into each
    placement's replay — the paired design holds because every placement
    sees the identical plan.
    """
    topology = config.build_topology()
    trace = config.build_trace(topology)
    results = compare_policies(
        trace,
        topology,
        network_policy=network_policy,
        placements=list(placements),
        predictor=predictor,
        seed=config.seed,
        max_candidates=config.max_candidates,
        alloc_backend=config.alloc_backend,
        telemetry=telemetry,
        faults=faults,
    )
    return MacroOutcome(
        network_policy=network_policy,
        workload=config.workload,
        results=results,
    )


def figure5(
    workload: str = "hadoop", config: MacroConfig = None, *, telemetry=None
) -> MacroOutcome:
    """Figure 5: placement comparison under Fair (DCTCP)."""
    cfg = config if config is not None else MacroConfig(workload=workload)
    if cfg.workload != workload:
        cfg = replace(cfg, workload=workload)
    return run_flow_macro(
        network_policy="fair", config=cfg, telemetry=telemetry
    )


def figure6(
    network_policy: str = "las", config: MacroConfig = None, *, telemetry=None
) -> MacroOutcome:
    """Figure 6: Hadoop workload under LAS (a) or SRPT (b)."""
    cfg = config if config is not None else MacroConfig(workload="hadoop")
    return run_flow_macro(
        network_policy=network_policy, config=cfg, telemetry=telemetry
    )
