"""Figure 3: the comparative study motivating NEAT (§2.2).

minDist and minLoad swap winners depending on the network scheduling
policy: under SRPT, minDist (which minimises total network load = size x
hops) wins; under Fair, minLoad wins for long flows (it keeps long flows
away from nodes busy with other long flows) while short flows may suffer.

The experiment replays one data-mining trace under both placements and
both network policies and reports the per-size-bin ratio
``FCT(minDist) / FCT(minLoad)`` — y < 1 means minDist wins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.experiments.config import MacroConfig
from repro.experiments.runner import RunResult, compare_policies
from repro.metrics.report import ratio_by_bin_table
from repro.metrics.stats import afct, summarize_by_size


@dataclass
class ComparativeOutcome:
    """Fig. 3 results for one network policy."""

    network_policy: str
    mindist: RunResult
    minload: RunResult

    def overall_ratio(self) -> float:
        """mean-FCT(minDist) / mean-FCT(minLoad); <1 means minDist wins."""
        return afct(self.mindist.records) / afct(self.minload.records)

    def per_bin_ratios(self, *, num_bins: int = 6) -> List[Tuple[str, float]]:
        pooled = list(self.mindist.records) + list(self.minload.records)
        common = summarize_by_size(pooled, num_bins=num_bins)
        bounds = [s.lower for s in common] + [common[-1].upper]
        dist_bins = {
            s.lower: s for s in summarize_by_size(self.mindist.records, bounds)
        }
        load_bins = {
            s.lower: s for s in summarize_by_size(self.minload.records, bounds)
        }
        ratios: List[Tuple[str, float]] = []
        for summary in common:
            a = dist_bins.get(summary.lower)
            b = load_bins.get(summary.lower)
            if a is None or b is None or b.mean_fct <= 0:
                continue
            ratios.append((summary.label, a.mean_fct / b.mean_fct))
        return ratios

    def table(self) -> str:
        return ratio_by_bin_table(
            self.mindist.records,
            self.minload.records,
            labels=("minDist", "minLoad"),
        )


def figure3(
    network_policy: str,
    config: MacroConfig = None,
    *,
    telemetry=None,
) -> ComparativeOutcome:
    """Run Figure 3(a) (``network_policy="srpt"``) or 3(b) (``"fair"``).

    The paper uses the data-mining workload of [16] on the 160-host Clos.
    """
    cfg = config if config is not None else MacroConfig(workload="datamining")
    if cfg.workload != "datamining":
        cfg = replace(cfg, workload="datamining")
    topology = cfg.build_topology()
    trace = cfg.build_trace(topology)
    results = compare_policies(
        trace,
        topology,
        network_policy=network_policy,
        placements=["mindist", "minload"],
        seed=cfg.seed,
        max_candidates=cfg.max_candidates,
        telemetry=telemetry,
    )
    return ComparativeOutcome(
        network_policy=network_policy,
        mindist=results["mindist"],
        minload=results["minload"],
    )
