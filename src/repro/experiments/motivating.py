"""Figure 1: the motivating example, reproduced by simulation.

Three nodes hang off one switch.  At time zero, one 4 Gb flow runs on path
2->3 and two 10 Gb flows run on path 2->1 (all 1 Gbps receiver links; node
2's uplink is not the bottleneck in the example).  A new task R must read
5 Gb from node 2 and can run on node 1 or node 3.  The paper's table gives,
for each network scheduling policy, R's completion time at each placement
and the resulting increase in *total* completion time over all flows.

:func:`figure1_table` recomputes every cell with the fluid simulator; the
expected values (exact) are in :data:`EXPECTED_FIGURE1`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.fabric import NetworkFabric
from repro.network.policies.registry import make_allocator
from repro.sim.engine import Engine
from repro.topology.base import TopoNode, Topology
from repro.units import gbps


@dataclass(frozen=True)
class Figure1Row:
    """One cell pair of the Figure 1 table."""

    network_policy: str
    placement: str
    completion_time: float
    total_increase: float


#: The exact values printed in Figure 1 of the paper.
EXPECTED_FIGURE1: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("fcfs", "node1"): (25.0, 25.0),
    ("fcfs", "node3"): (9.0, 9.0),
    ("fair", "node1"): (15.0, 25.0),
    ("fair", "node3"): (9.0, 13.0),
    ("srpt", "node1"): (5.0, 15.0),
    ("srpt", "node3"): (9.0, 9.0),
}


def example_topology() -> Topology:
    """The 3-node scenario; node 2's uplink is fat so that, as in the
    paper's accounting, only the receiver links contend."""
    topo = Topology("figure1")
    topo.add_node(TopoNode("switch", "switch"))
    for host in ("node1", "node2", "node3"):
        topo.add_node(TopoNode(host, "host", rack=0))
    topo.add_duplex_link("node1", "switch", gbps(1), is_edge=True)
    topo.add_duplex_link("node3", "switch", gbps(1), is_edge=True)
    topo.add_link("node2", "switch", gbps(100), is_edge=True)
    topo.add_link("switch", "node2", gbps(1), is_edge=True)
    return topo


def _run_scenario(policy: str, placement: str) -> Tuple[float, float]:
    """Returns (R's FCT, increase in total completion time) for one cell."""

    def run(with_r: bool) -> Tuple[float, List[float]]:
        engine = Engine()
        fabric = NetworkFabric(
            engine, example_topology(), make_allocator(policy)
        )
        existing = [
            fabric.submit("node2", "node3", 4e9),
            fabric.submit("node2", "node1", 10e9),
            fabric.submit("node2", "node1", 10e9),
        ]
        r_fct = 0.0
        if with_r:
            # R arrives just after the existing flows started.
            engine.run(until=1e-9)
            r = fabric.submit("node2", placement, 5e9)
            engine.run()
            r_fct = r.fct()
        else:
            engine.run()
        return r_fct, [f.fct() for f in existing]

    _, baseline = run(with_r=False)
    r_fct, with_r_fcts = run(with_r=True)
    increase = r_fct + sum(b - a for a, b in zip(baseline, with_r_fcts))
    return r_fct, increase


def figure1_table() -> List[Figure1Row]:
    """Recompute all six cells of Figure 1."""
    rows: List[Figure1Row] = []
    for policy in ("fcfs", "fair", "srpt"):
        for placement in ("node1", "node3"):
            fct, increase = _run_scenario(policy, placement)
            rows.append(
                Figure1Row(
                    network_policy=policy,
                    placement=placement,
                    completion_time=fct,
                    total_increase=increase,
                )
            )
    return rows


def render_figure1() -> str:
    """The Figure 1 table as text, paper value alongside the measured one."""
    from repro.metrics.report import format_table

    rows = []
    for row in figure1_table():
        expected = EXPECTED_FIGURE1[(row.network_policy, row.placement)]
        rows.append(
            [
                row.network_policy.upper(),
                row.placement,
                f"{row.completion_time:.1f}",
                f"{expected[0]:.1f}",
                f"{row.total_increase:.1f}",
                f"{expected[1]:.1f}",
            ]
        )
    return format_table(
        [
            "network policy",
            "placement of R",
            "FCT(R) measured",
            "FCT(R) paper",
            "total increase measured",
            "total increase paper",
        ],
        rows,
    )
