"""Figure 11: the 10-node testbed experiment (§6.4), simulated.

The paper's testbed is a single rack of 10 DELL servers behind one
gigabit switch, running all-to-all Hadoop traffic at 50% average load,
comparing NEAT with minLoad under Fair (DCTCP) and LAS (L2DCT); minDist is
meaningless in a single rack (all node pairs are equidistant).  The small
scale limits the achievable gain to ~30% (Fair) and ~27% (LAS) because
long flows saturate every host, leaving little placement freedom.

We reproduce the setup on the simulated single-rack topology; the paper
itself reports that its ns2 simulation of the same settings matches its
hardware numbers, which is the substitution this module relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.config import MacroConfig, build_testbed_topology, testbed_config
from repro.experiments.runner import RunResult, compare_policies
from repro.metrics.stats import afct, average_gap


@dataclass
class TestbedOutcome:
    """Fig. 11 results: per network policy, NEAT vs minLoad."""

    results: Dict[str, Dict[str, RunResult]]  # policy -> placement -> run

    def improvement_percent(self, network_policy: str) -> float:
        """(AFCT_minload - AFCT_neat)/AFCT_minload * 100."""
        runs = self.results[network_policy]
        base = afct(runs["minload"].records)
        neat = afct(runs["neat"].records)
        if base <= 0:
            return 0.0
        return (base - neat) / base * 100.0

    def average_gaps(self, network_policy: str) -> Dict[str, float]:
        return {
            name: average_gap(r.records)
            for name, r in self.results[network_policy].items()
        }


def figure11(
    config: MacroConfig = None, *, telemetry=None
) -> TestbedOutcome:
    """NEAT vs minLoad on the single-rack testbed under Fair and LAS."""
    cfg = config if config is not None else testbed_config()
    topology = build_testbed_topology()
    trace = cfg.build_trace(topology)
    results: Dict[str, Dict[str, RunResult]] = {}
    for network_policy in ("fair", "las"):
        results[network_policy] = compare_policies(
            trace,
            topology,
            network_policy=network_policy,
            placements=["neat", "minload"],
            seed=cfg.seed,
            telemetry=telemetry,
        )
    return TestbedOutcome(results=results)
