"""Figure 7: coflow placement under Varys and SCF.

NEAT places each coflow's flows sequentially (largest first, §5.1.2)
through its CCT-aware predictor; the baselines are the paper's coflow
adaptations — minLoad places each flow (largest first) on the
least-loaded node, minDist keeps the coflow rack-local near its data.
Claim: NEAT improves CCT by up to ~25% under both coflow schedulers, and
Varys (SEBF) outperforms SCF as the underlying scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

from repro.experiments.config import MacroConfig
from repro.experiments.runner import RunResult, compare_policies
from repro.metrics.report import gap_by_bin_table
from repro.metrics.stats import afct, average_gap

DEFAULT_PLACEMENTS: Tuple[str, ...] = ("neat", "minload", "mindist")


@dataclass
class CoflowOutcome:
    """Figure 7 results for one coflow scheduling policy."""

    network_policy: str
    results: Dict[str, RunResult]

    def average_gaps(self) -> Dict[str, float]:
        return {
            name: average_gap(r.records) for name, r in self.results.items()
        }

    def average_ccts(self) -> Dict[str, float]:
        return {name: afct(r.records) for name, r in self.results.items()}

    def improvement_over(self, baseline: str) -> float:
        """CCT(baseline) / CCT(NEAT) as an improvement factor."""
        ccts = self.average_ccts()
        if ccts["neat"] <= 0:
            return float("inf")
        return ccts[baseline] / ccts["neat"]

    def table(self, *, num_bins: int = 6) -> str:
        return gap_by_bin_table(
            {name: r.records for name, r in self.results.items()},
            num_bins=num_bins,
        )


def figure7(
    network_policy: str = "varys",
    config: MacroConfig = None,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    telemetry=None,
) -> CoflowOutcome:
    """Run Figure 7(a) (``"varys"``) or 7(b) (``"scf"``) on Hadoop coflows."""
    cfg = config if config is not None else MacroConfig(
        workload="hadoop", coflows=True, num_arrivals=300
    )
    if not cfg.coflows:
        cfg = replace(cfg, coflows=True)
    topology = cfg.build_topology()
    trace = cfg.build_trace(topology)
    results = compare_policies(
        trace,
        topology,
        network_policy=network_policy,
        placements=list(placements),
        coflows=True,
        seed=cfg.seed,
        max_candidates=cfg.max_candidates,
        telemetry=telemetry,
    )
    return CoflowOutcome(network_policy=network_policy, results=results)
