"""Filesystem work-queue for distributed campaign execution.

A campaign becomes a *queue directory* that any number of worker
processes — on this machine or any machine sharing the filesystem —
drain cooperatively:

``manifest.json``
    The campaign itself: every cell's lossless JSON spec
    (:meth:`~repro.campaign.spec.RunSpec.to_json_dict`) plus its
    content-address (:func:`~repro.campaign.hashing.spec_key`).  Seeding
    is idempotent: re-seeding an existing queue verifies the manifest
    matches and changes nothing.
``leases/NNNNN.json``
    One lease per in-flight cell.  A claim is an **exclusive create**
    (``O_CREAT | O_EXCL``) — the filesystem arbitrates, exactly one
    claimant wins.  Workers renew their lease (mtime touch) while the
    cell runs; a lease whose mtime is older than the TTL belongs to a
    crashed worker and may be *stolen*: unlink, then exclusive-create
    again, so racing stealers still resolve to one winner.
``done/NNNNN.json``
    Atomic terminal marker per cell: status (``ok``/``cached``/
    ``failed``), the cell's cache key, attempts, worker id.  The marker
    is written *after* the payload lands in the cache, so a visible
    marker always has a readable result behind it; the first terminal
    marker wins, so a racing double-commit cannot rewrite an outcome.
``cache/``
    The standard content-addressed
    :class:`~repro.campaign.cache.ResultCache`.  Because commits are
    idempotent (same key, byte-identical blob), a stolen cell that its
    "crashed" owner later finishes anyway is harmless — both writes
    store the same bytes.
``status.jsonl``
    The live health stream (``repro status`` / ``repro top`` work on a
    queue directory unchanged).

Crash-resume falls out of the layout: progress *is* the set of done
markers plus the cache, so a supervisor restart
(``repro run --resume DIR``) reconstructs exactly where the campaign
stood and finishes it, byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import repro
from repro.campaign.cache import ResultCache
from repro.campaign.executor import _CellRunner, execute_cell
from repro.campaign.hashing import canonical_json, spec_key
from repro.campaign.spec import Campaign, RunSpec, spec_from_json_dict
from repro.campaign.status import STATUS_FILENAME, StatusWriter
from repro.errors import ConfigError

__all__ = [
    "WorkQueue",
    "Claim",
    "WorkerSummary",
    "run_worker",
    "DEFAULT_LEASE_TTL",
    "MANIFEST_FILENAME",
]

MANIFEST_FILENAME = "manifest.json"
_LEASE_DIRNAME = "leases"
_DONE_DIRNAME = "done"
_CACHE_DIRNAME = "cache"

#: Seconds of lease silence after which a cell counts as abandoned.
DEFAULT_LEASE_TTL = 30.0


@dataclass(frozen=True)
class Claim:
    """One successfully claimed cell: run it, then commit."""

    index: int
    spec: RunSpec
    key: str
    attempt: int  # 1 for a fresh claim, previous + 1 for a steal


def _atomic_write_json(path: Path, payload: Dict[str, object]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(payload))
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


class WorkQueue:
    """One campaign's shared work directory (see module docstring).

    Construct via :meth:`seed` (supervisor) or :meth:`open` (worker or
    resuming supervisor), never directly.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        campaign: Campaign,
        keys: List[str],
        lease_ttl: float,
    ) -> None:
        self.directory = Path(directory)
        self.campaign = campaign
        self.keys = keys
        self.lease_ttl = float(lease_ttl)
        self.cache = ResultCache(self.directory / _CACHE_DIRNAME)
        self.status_path = self.directory / STATUS_FILENAME

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def seed(
        cls,
        directory: Union[str, Path],
        campaign: Campaign,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> "WorkQueue":
        """Create (or idempotently re-open) a queue for ``campaign``.

        A manifest that already exists must describe the *same* cells
        (matching content keys); anything else is a configuration error
        — two different campaigns must never share a queue directory.
        """
        if lease_ttl <= 0:
            raise ConfigError(f"lease_ttl must be positive, got {lease_ttl!r}")
        directory = Path(directory)
        keys = [spec_key(spec) for spec in campaign.cells]
        manifest_path = directory / MANIFEST_FILENAME
        if manifest_path.exists():
            existing = cls.open(directory)
            if existing.keys != keys:
                raise ConfigError(
                    f"queue {directory} already holds a different campaign "
                    f"({existing.campaign.name!r}); refusing to re-seed"
                )
            return existing
        for sub in (_LEASE_DIRNAME, _DONE_DIRNAME, _CACHE_DIRNAME):
            (directory / sub).mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            manifest_path,
            {
                "campaign": campaign.name,
                "version": repro.__version__,
                "lease_ttl": lease_ttl,
                "cells": [spec.to_json_dict() for spec in campaign.cells],
                "keys": keys,
            },
        )
        return cls(directory, campaign, keys, lease_ttl)

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "WorkQueue":
        """Open an existing queue (workers and resuming supervisors)."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_FILENAME
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise ConfigError(
                f"{directory} is not a campaign queue (no {MANIFEST_FILENAME})"
            ) from None
        except (json.JSONDecodeError, OSError) as exc:
            raise ConfigError(f"unreadable queue manifest: {exc}") from exc
        version = manifest.get("version")
        if version != repro.__version__:
            raise ConfigError(
                f"queue {directory} was seeded by repro {version}; this is "
                f"{repro.__version__} — results would not be comparable"
            )
        cells = tuple(
            spec_from_json_dict(raw) for raw in manifest.get("cells", [])
        )
        campaign = Campaign(
            name=manifest.get("campaign", "queue"), cells=cells
        )
        keys = list(manifest.get("keys", []))
        if len(keys) != len(cells):
            raise ConfigError("queue manifest keys do not match its cells")
        for index, spec in enumerate(cells):
            if spec_key(spec) != keys[index]:
                raise ConfigError(
                    f"queue manifest cell {index} does not hash to its "
                    "recorded key — manifest is corrupt or hand-edited"
                )
        for sub in (_LEASE_DIRNAME, _DONE_DIRNAME, _CACHE_DIRNAME):
            (directory / sub).mkdir(parents=True, exist_ok=True)
        return cls(
            directory,
            campaign,
            keys,
            float(manifest.get("lease_ttl", DEFAULT_LEASE_TTL)),
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _lease_path(self, index: int) -> Path:
        return self.directory / _LEASE_DIRNAME / f"{index:05d}.json"

    def _done_path(self, index: int) -> Path:
        return self.directory / _DONE_DIRNAME / f"{index:05d}.json"

    # ------------------------------------------------------------------
    # Claiming
    # ------------------------------------------------------------------
    def _try_exclusive_lease(
        self, index: int, worker: str, attempt: int
    ) -> bool:
        """Exclusive-create the lease file; False when someone else won."""
        path = self._lease_path(index)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(
                canonical_json(
                    {"worker": worker, "attempt": attempt, "cell": index}
                )
            )
            fh.write("\n")
        return True

    def _stale_attempt(self, index: int) -> int:
        """Attempt count recorded in an (expired) lease, 1 if unreadable."""
        try:
            with open(self._lease_path(index), "r", encoding="utf-8") as fh:
                return int(json.load(fh).get("attempt", 1))
        except (OSError, ValueError):
            return 1

    def claim(
        self, worker: str, *, now: Optional[float] = None
    ) -> Optional[Claim]:
        """Claim the lowest-index cell that is neither done nor leased.

        A lease older than the TTL is stolen: the stale lease is
        unlinked and re-created exclusively, so concurrent stealers (or
        a stealer racing the original claimant's unlink) still resolve
        to exactly one winner.  Returns None when every remaining cell
        is done or validly leased.
        """
        if now is None:
            now = time.time()
        for index in range(len(self.campaign.cells)):
            if self._done_path(index).exists():
                continue
            if self._try_exclusive_lease(index, worker, 1):
                return Claim(
                    index, self.campaign.cells[index], self.keys[index], 1
                )
            # Lease exists: steal only if its holder has gone silent.
            try:
                age = now - self._lease_path(index).stat().st_mtime
            except OSError:
                age = None  # lease vanished: commit or release raced us
            if age is not None and age > self.lease_ttl:
                attempt = self._stale_attempt(index) + 1
                try:
                    os.unlink(self._lease_path(index))
                except OSError:
                    pass  # another stealer got there first
                if self._try_exclusive_lease(index, worker, attempt):
                    if self._done_path(index).exists():
                        # The "crashed" owner committed between our
                        # staleness check and the steal; undo.
                        self.release(index)
                        continue
                    return Claim(
                        index,
                        self.campaign.cells[index],
                        self.keys[index],
                        attempt,
                    )
        return None

    def renew(self, index: int) -> None:
        """Refresh a held lease's mtime (heartbeat while a cell runs)."""
        try:
            os.utime(self._lease_path(index))
        except OSError:
            pass  # stolen out from under us; commit idempotency covers it

    def release(self, index: int) -> None:
        """Drop a lease without committing (cell becomes claimable)."""
        try:
            os.unlink(self._lease_path(index))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Committing and reading results
    # ------------------------------------------------------------------
    def commit(
        self,
        claim: Claim,
        status: str,
        payload: Optional[Dict[str, object]] = None,
        *,
        worker: str = "",
        error: Optional[str] = None,
    ) -> None:
        """Commit a cell's terminal result and drop its lease.

        The payload goes into the content-addressed cache *first*, the
        done marker second — a marker's existence therefore implies its
        result is readable.  The first terminal marker wins: a second
        commit for an already-done cell (a benign re-claim of a cell
        that finished between the done check and the lease grab, or a
        stolen cell whose original owner finished anyway) only drops
        the lease — it must never rewrite the recorded outcome, so a
        late loser cannot downgrade an ``ok`` cell to ``failed``.
        """
        if status not in ("ok", "cached", "failed"):
            raise ConfigError(f"cannot commit status {status!r}")
        if self._done_path(claim.index).exists():
            self.release(claim.index)
            return
        if status == "ok":
            if payload is None:
                raise ConfigError("an ok commit needs a payload")
            self.cache.store(claim.key, payload)
        marker: Dict[str, object] = {
            "cell": claim.index,
            "status": status,
            "key": claim.key,
            "attempts": claim.attempt,
            "worker": worker,
        }
        if error is not None:
            marker["error"] = error
        _atomic_write_json(self._done_path(claim.index), marker)
        self.release(claim.index)

    def done_marker(self, index: int) -> Optional[Dict[str, object]]:
        """The cell's terminal marker, or None while it is unfinished."""
        try:
            with open(self._done_path(index), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError) as exc:
            raise ConfigError(
                f"corrupt done marker for cell {index}: {exc}"
            ) from exc

    def result_for(self, index: int) -> Optional[Dict[str, object]]:
        """A finished cell's payload from the cache (None for failed)."""
        marker = self.done_marker(index)
        if marker is None:
            raise ConfigError(f"cell {index} has not finished")
        if marker["status"] == "failed":
            return None
        payload = self.cache.lookup(self.keys[index])
        if payload is None:
            raise ConfigError(
                f"cell {index} is marked done but its result is missing "
                "from the queue cache"
            )
        return payload

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def progress(self) -> Dict[str, int]:
        """Queue-wide counts: total / done / failed / leased / pending."""
        total = len(self.campaign.cells)
        done = failed = leased = 0
        for index in range(total):
            marker = self.done_marker(index)
            if marker is not None:
                done += 1
                if marker["status"] == "failed":
                    failed += 1
            elif self._lease_path(index).exists():
                leased += 1
        return {
            "total": total,
            "done": done,
            "failed": failed,
            "leased": leased,
            "pending": total - done - leased,
        }

    def is_complete(self) -> bool:
        """True once every cell has a terminal marker."""
        return all(
            self._done_path(i).exists()
            for i in range(len(self.campaign.cells))
        )


# ----------------------------------------------------------------------
# The worker loop (`repro campaign-worker DIR`)
# ----------------------------------------------------------------------
@dataclass
class WorkerSummary:
    """What one worker pass did (returned by :func:`run_worker`)."""

    worker: str
    claimed: int = 0
    ok: int = 0
    cached: int = 0
    failed: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def executed(self) -> int:
        return self.ok + self.failed


def run_worker(
    directory: Union[str, Path],
    *,
    worker_id: Optional[str] = None,
    cell_fn: Callable[[RunSpec], Dict[str, object]] = execute_cell,
    retries: int = 1,
    poll: float = 0.2,
    wait: bool = False,
    idle_timeout: Optional[float] = None,
    max_cells: Optional[int] = None,
) -> WorkerSummary:
    """Drain cells from a queue directory until none are claimable.

    Claim -> cache short-circuit -> execute (renewing the lease from a
    heartbeat thread so slow cells are not stolen) -> commit.  A cell
    that raises is retried in place; once its total attempts (including
    claims consumed by crashed predecessors) exceed ``1 + retries`` it
    is committed as ``failed`` — quarantine, exactly like the in-process
    executor.

    Args:
        directory: a seeded queue directory (see :meth:`WorkQueue.seed`).
        worker_id: identity written into leases and done markers
            (default ``host:pid``).
        cell_fn: the cell implementation (tests substitute cheap ones).
        retries: extra attempts before a cell is quarantined.
        poll: seconds between claim retries while waiting.
        wait: keep polling for claimable work until the queue completes
            (for workers started before or alongside the supervisor);
            without it the worker exits at the first empty claim.
        idle_timeout: with ``wait``, give up after this many seconds
            without a successful claim (guards orphaned workers).
        max_cells: stop after claiming this many cells (tests).
    """
    queue = WorkQueue.open(directory)
    if worker_id is None:
        worker_id = f"{os.uname().nodename}:{os.getpid()}"
    status = StatusWriter(queue.status_path)
    runner = _CellRunner(cell_fn, queue.status_path)
    summary = WorkerSummary(worker=worker_id)
    last_claim = time.time()

    while True:
        if max_cells is not None and summary.claimed >= max_cells:
            break
        claim = queue.claim(worker_id)
        if claim is None:
            if not wait or queue.is_complete():
                break
            if (
                idle_timeout is not None
                and time.time() - last_claim > idle_timeout
            ):
                break
            time.sleep(poll)
            continue
        last_claim = time.time()
        summary.claimed += 1

        # Cache short-circuit: a previous campaign (or a previous pass of
        # this one) already computed this exact cell.
        hit = queue.cache.lookup(claim.key)
        if hit is not None:
            queue.commit(claim, "cached", worker=worker_id)
            status.emit(
                "cell",
                cell=claim.index,
                state="cached",
                attempt=claim.attempt,
                spec=claim.spec.describe(),
                worker=worker_id,
            )
            summary.cached += 1
            continue

        if claim.attempt > 1 + retries:
            error = (
                f"quarantined: {claim.attempt - 1} prior attempt(s) "
                "abandoned their lease"
            )
            queue.commit(claim, "failed", worker=worker_id, error=error)
            status.emit(
                "cell",
                cell=claim.index,
                state="failed",
                attempt=claim.attempt,
                spec=claim.spec.describe(),
                worker=worker_id,
                error=error,
            )
            summary.failed += 1
            summary.errors.append(f"cell {claim.index}: {error}")
            continue

        # Heartbeat the lease while the cell runs so a slow cell is not
        # mistaken for a crashed worker.
        stop = threading.Event()
        interval = max(queue.lease_ttl / 3.0, 0.05)

        def _renew(index: int = claim.index) -> None:
            while not stop.wait(interval):
                queue.renew(index)

        heartbeat = threading.Thread(target=_renew, daemon=True)
        heartbeat.start()
        try:
            attempt = claim.attempt
            while True:
                try:
                    payload = runner(claim.index, claim.spec, attempt - 1)
                except Exception as exc:  # noqa: BLE001 - quarantine path
                    error = f"error: {exc!r}"
                    if attempt >= 1 + retries:
                        queue.commit(
                            claim, "failed", worker=worker_id, error=error
                        )
                        status.emit(
                            "cell",
                            cell=claim.index,
                            state="failed",
                            attempt=attempt,
                            spec=claim.spec.describe(),
                            worker=worker_id,
                            error=error,
                        )
                        summary.failed += 1
                        summary.errors.append(
                            f"cell {claim.index}: {error}"
                        )
                        break
                    attempt += 1
                    continue
                queue.commit(claim, "ok", payload, worker=worker_id)
                status.emit(
                    "cell",
                    cell=claim.index,
                    state="ok",
                    attempt=attempt,
                    spec=claim.spec.describe(),
                    worker=worker_id,
                )
                summary.ok += 1
                break
        finally:
            stop.set()
            heartbeat.join(timeout=5)
    return summary
