"""Supervised campaign execution: process pool, cache, retries, quarantine.

:func:`run_campaign` executes every cell of a :class:`Campaign` and
returns a :class:`CampaignReport` whose outcomes are ordered by *cell
index*, never by completion order — so a parallel run reports exactly
what a serial run reports.

Supervision model (the part a bare ``ProcessPoolExecutor.map`` lacks):

* **cache short-circuit** — cells whose content hash is already in the
  :class:`~repro.campaign.cache.ResultCache` never reach a worker;
* **per-cell timeout** — a cell that exceeds ``timeout`` wall seconds is
  killed with its worker (the whole pool is torn down and rebuilt, the
  only way to reclaim a truly hung ``ProcessPoolExecutor`` worker);
* **bounded retry with a fresh worker** — timed-out and crashed cells
  are requeued up to ``retries`` extra attempts; innocent cells that
  were merely in flight during a pool teardown are requeued without
  consuming an attempt;
* **quarantine** — a cell that exhausts its attempts is reported as
  failed (with its last error) instead of sinking the campaign;
* **serial fallback** — ``jobs=1``, or a platform where process pools
  cannot start, runs every cell in-process (timeouts cannot be enforced
  without a second process and are ignored there).

Cells must be *pure*: everything they need rides in the
:class:`~repro.campaign.spec.RunSpec`, and their payload must be
JSON-safe and deterministic (no wall-clock values), which is what makes
both the cache and the parallel/serial byte-identity guarantee sound.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.campaign.cache import CacheStats, ResultCache
from repro.campaign.hashing import spec_key
from repro.campaign.spec import Campaign, RunSpec
from repro.campaign.status import StatusWriter
from repro.metrics.stats import afct, average_gap

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids an import cycle)
    from repro.campaign.streaming import CampaignAggregate

#: Supervisor poll interval (wall seconds) while futures are in flight.
_TICK = 0.1


# ----------------------------------------------------------------------
# Cell execution (runs inside the worker process)
# ----------------------------------------------------------------------
def _metrics_snapshot(registry) -> Dict[str, object]:
    """The deterministic slice of a run's metrics.

    Timers hold wall-clock seconds, which differ run to run; everything
    else in the registry is derived from simulated time and is exactly
    reproducible, so only timers are dropped from cached payloads.
    """
    snapshot = registry.as_dict()
    snapshot.pop("timers", None)
    return snapshot


def _macro_payload(spec: RunSpec) -> Dict[str, object]:
    """Run one flow/coflow placement-comparison cell."""
    from repro.experiments.runner import compare_policies
    from repro.telemetry import CausalTracer, MetricsRegistry, Telemetry
    from repro.telemetry.causal import analyze, blame_shares_dict
    from repro.telemetry.profiler import current_profiler

    registry = MetricsRegistry()
    # The ambient profiler is NULL_PROFILER unless a status-emitting
    # campaign worker installed a real one; span data never enters the
    # payload, so caching and byte-identity are unaffected either way.
    # The causal tracer rides along so every cell's payload carries the
    # blame decomposition tails; it observes the run without touching
    # simulation state, so records stay byte-identical.
    telemetry = Telemetry(
        registry=registry,
        profiler=current_profiler(),
        causal=CausalTracer(),
    )
    cfg = spec.config
    topology = cfg.build_topology()
    trace = cfg.build_trace(topology)
    results = compare_policies(
        trace,
        topology,
        network_policy=spec.network_policy,
        placements=list(spec.placements),
        coflows=spec.kind == "coflow_macro",
        predictor=spec.predictor,
        seed=cfg.seed,
        max_candidates=cfg.max_candidates,
        faults=spec.faults,
        state_ttl=cfg.state_ttl,
        push_updates=cfg.push_node_state,
        alloc_backend=cfg.alloc_backend,
        telemetry=telemetry,
    )
    blame = {
        analysis.placement: blame_shares_dict(list(analysis.flows.values()))
        for analysis in analyze(telemetry.causal.events)
    }
    per_placement = {
        name: {
            "average_gap": average_gap(r.records),
            "mean_completion": afct(r.records),
            "num_records": len(r.records),
            "control_messages": r.control_messages,
            "events_processed": r.events_processed,
            "sim_duration": r.sim_duration,
            "flows_aborted": r.flows_aborted,
            "flows_rerouted": r.flows_rerouted,
            "tasks_dropped": r.tasks_dropped,
            "stale_fallbacks": r.stale_fallbacks,
            "blame": blame.get(name),
        }
        for name, r in results.items()
    }
    return {
        "kind": spec.kind,
        "network_policy": spec.network_policy,
        "workload": cfg.workload,
        "load": cfg.load,
        "seed": cfg.seed,
        "faults": spec.faults.canonical() if spec.faults is not None else None,
        "per_placement": per_placement,
        "metrics": _metrics_snapshot(registry),
    }


def execute_cell(spec: RunSpec) -> Dict[str, object]:
    """Execute one cell and return its deterministic JSON payload.

    This is the default ``cell_fn`` — a module-level function so the
    process pool can pickle it by reference.
    """
    if spec.kind in ("flow_macro", "coflow_macro"):
        return _macro_payload(spec)
    from repro.campaign.figures import execute_figure

    return execute_figure(spec)


def _payload_events(payload) -> Optional[int]:
    """Total simulator events behind a payload, when it exposes them."""
    if not isinstance(payload, dict):
        return None
    per_placement = payload.get("per_placement")
    if isinstance(per_placement, dict):
        total = 0
        found = False
        for entry in per_placement.values():
            events = entry.get("events_processed") if isinstance(entry, dict) \
                else None
            if isinstance(events, (int, float)):
                total += int(events)
                found = True
        return total if found else None
    events = payload.get("events_processed")
    return int(events) if isinstance(events, (int, float)) else None


class _CellRunner:
    """Picklable cell wrapper: runs ``cell_fn``, emitting worker-side
    heartbeats to the status file when one is configured.

    With a status path, each attempt emits a ``running`` record before
    the cell and a ``finished`` record after it — the latter carrying
    ``events_processed`` and the spans snapshot of a per-attempt ambient
    :class:`~repro.telemetry.profiler.SpanProfiler`, which the cell's own
    Telemetry picks up via :func:`current_profiler`.  Profiler data flows
    only into the status stream, never the payload, so cached results
    stay byte-identical with or without status reporting.
    """

    def __init__(self, cell_fn: Callable, status_path=None) -> None:
        self._cell_fn = cell_fn
        self._status_path = status_path

    def __call__(self, index: int, spec: RunSpec, attempts: int):
        if self._status_path is None:
            return self._cell_fn(spec)
        from repro.telemetry.profiler import SpanProfiler, set_current_profiler

        writer = StatusWriter(self._status_path)
        writer.emit(
            "cell",
            cell=index,
            state="running",
            attempt=attempts + 1,
            spec=spec.describe(),
        )
        previous = set_current_profiler(SpanProfiler())
        try:
            payload = self._cell_fn(spec)
        finally:
            profiler = set_current_profiler(previous)
        writer.emit(
            "cell",
            cell=index,
            state="finished",
            attempt=attempts + 1,
            spec=spec.describe(),
            events_processed=_payload_events(payload),
            spans=profiler.as_dict() if profiler.paths() else None,
        )
        return payload


# ----------------------------------------------------------------------
# Outcomes and the campaign-level report
# ----------------------------------------------------------------------
@dataclass
class CellOutcome:
    """What happened to one cell."""

    index: int
    spec: RunSpec
    status: str  # "ok" | "cached" | "failed"
    payload: Optional[Dict[str, object]] = None
    attempts: int = 0
    error: Optional[str] = None
    wall_seconds: float = 0.0


@dataclass
class CampaignReport:
    """Every cell's outcome, in cell order, plus campaign-level totals.

    In streaming mode (``run_campaign(streaming=True)`` or the
    distributed supervisor) outcomes carry no payloads — per-cell
    results fold into :attr:`aggregate` as they land and are dropped, so
    report memory is bounded by the aggregate's group count, not the
    campaign size.
    """

    campaign: Campaign
    outcomes: List[CellOutcome]
    jobs: int
    cache_stats: CacheStats = field(default_factory=CacheStats)
    wall_seconds: float = 0.0
    aggregate: Optional["CampaignAggregate"] = None

    @property
    def completed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status in ("ok", "cached")]

    @property
    def quarantined(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def payloads(self) -> List[Optional[Dict[str, object]]]:
        """Payloads aligned with ``campaign.cells`` (None where failed)."""
        return [o.payload for o in self.outcomes]

    def merged_metrics(self) -> Dict[str, object]:
        """All per-run metric registries folded into one snapshot."""
        from repro.telemetry.registry import merge_snapshots

        return merge_snapshots(
            o.payload["metrics"]
            for o in self.completed
            if o.payload is not None and "metrics" in o.payload
        )

    def aggregate_payload(self) -> Dict[str, object]:
        """The campaign-level streaming aggregate as a canonical dict.

        Streaming runs return their live aggregate; batch runs build
        one by folding the retained payloads in index order — the same
        code path, which is exactly what makes "streaming equals batch"
        a byte-level identity rather than an approximation.
        """
        if self.aggregate is not None:
            return self.aggregate.payload()
        from repro.campaign.streaming import CampaignAggregate

        folded = CampaignAggregate(self.campaign.name, len(self.outcomes))
        for outcome in self.outcomes:
            folded.fold(outcome.index, outcome.status, outcome.payload)
        return folded.payload()

    def failure_report(self) -> str:
        """Human-readable quarantine report (empty string when clean)."""
        bad = self.quarantined
        if not bad:
            return ""
        lines = [f"{len(bad)} of {len(self.outcomes)} cells quarantined:"]
        for o in bad:
            lines.append(
                f"  cell {o.index} [{o.spec.describe()}] after "
                f"{o.attempts} attempt(s): {o.error}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Supervised execution
# ----------------------------------------------------------------------
def _kill_pool(pool) -> None:
    """Tear a pool down even when a worker is wedged.

    ``shutdown(cancel_futures=True)`` alone never interrupts a running
    task, so the worker processes are terminated directly; touching
    ``_processes`` is the only handle the stdlib exposes for that.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=5)


def _run_serial(
    work: Sequence,
    runner: Callable,
    retries: int,
    record: Callable,
) -> None:
    for index, spec, attempts in work:
        error: Optional[str] = None
        while True:
            start = time.perf_counter()
            try:
                payload = runner(index, spec, attempts)
            except Exception as exc:  # noqa: BLE001 - quarantine, don't sink
                attempts += 1
                error = f"error: {exc!r}"
                if attempts >= 1 + retries:
                    record(index, spec, "failed", None, attempts, error, 0.0)
                    break
                continue
            record(
                index,
                spec,
                "ok",
                payload,
                attempts + 1,
                None,
                time.perf_counter() - start,
            )
            break


def _run_pool(
    work: Sequence,
    runner: Callable,
    jobs: int,
    timeout: Optional[float],
    retries: int,
    record: Callable,
) -> bool:
    """Pool-based supervised execution; False if no pool could start."""
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    def make_pool():
        return ProcessPoolExecutor(max_workers=jobs)

    try:
        pool = make_pool()
    except (ImportError, NotImplementedError, OSError, ValueError):
        return False

    pending = deque(work)  # (index, spec, attempts)
    in_flight: Dict[object, list] = {}  # future -> [idx, spec, att, started]

    def fail_or_requeue(index, spec, attempts, reason) -> None:
        attempts += 1
        if attempts >= 1 + retries:
            record(index, spec, "failed", None, attempts, reason, 0.0)
        else:
            pending.append((index, spec, attempts))

    try:
        while pending or in_flight:
            while pending and len(in_flight) < jobs:
                index, spec, attempts = pending.popleft()
                future = pool.submit(runner, index, spec, attempts)
                in_flight[future] = [index, spec, attempts, None]
            done, _ = wait(
                set(in_flight), timeout=_TICK, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            pool_broken = False
            for future in done:
                index, spec, attempts, started = in_flight.pop(future)
                exc = future.exception()
                if exc is None:
                    wall = now - started if started is not None else 0.0
                    record(
                        index, spec, "ok", future.result(), attempts + 1,
                        None, wall,
                    )
                elif isinstance(exc, BrokenProcessPool):
                    pool_broken = True
                    fail_or_requeue(
                        index, spec, attempts,
                        "crash: worker process died (BrokenProcessPool)",
                    )
                else:
                    fail_or_requeue(index, spec, attempts, f"error: {exc!r}")
            if pool_broken:
                # Every other in-flight future is doomed too; cells that
                # had started share the blame window (we cannot tell who
                # crashed), queued-only cells get their attempt back.
                for future, entry in in_flight.items():
                    index, spec, attempts, started = entry
                    if started is not None:
                        fail_or_requeue(
                            index, spec, attempts,
                            "crash: worker process died (BrokenProcessPool)",
                        )
                    else:
                        pending.append((index, spec, attempts))
                in_flight.clear()
                _kill_pool(pool)
                pool = make_pool()
                continue
            timed_out = []
            for future, entry in in_flight.items():
                if entry[3] is None and future.running():
                    entry[3] = now
                if (
                    timeout is not None
                    and entry[3] is not None
                    and now - entry[3] > timeout
                ):
                    timed_out.append(future)
            if timed_out:
                # Killing one hung worker means rebuilding the pool;
                # innocent in-flight cells are requeued free of charge.
                for future, entry in in_flight.items():
                    index, spec, attempts, _started = entry
                    if future in timed_out:
                        fail_or_requeue(
                            index, spec, attempts,
                            f"timeout: exceeded {timeout:g}s wall clock",
                        )
                    else:
                        pending.append((index, spec, attempts))
                in_flight.clear()
                _kill_pool(pool)
                pool = make_pool()
    finally:
        _kill_pool(pool)
    return True


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cell_fn: Callable[[RunSpec], Dict[str, object]] = execute_cell,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    status_path=None,
    streaming: bool = False,
) -> CampaignReport:
    """Execute every cell of ``campaign`` under supervision.

    Args:
        campaign: the cell grid to run.
        jobs: worker processes; 1 (or an unavailable pool) runs serially
            in-process.
        cache: content-addressed result cache; hits skip execution and
            successful cells are stored back.
        cell_fn: the cell implementation (module-level, picklable);
            overridable for tests and custom campaign kinds.
        timeout: per-cell wall-clock budget in seconds (pool mode only).
        retries: extra attempts for a timed-out/crashed/raising cell
            before it is quarantined.
        progress: optional line sink (e.g. ``print``) for per-cell
            progress as results land.
        status_path: when set, the supervisor and every worker append
            live health records (JSONL) here — rendered by
            ``repro status``.  Wall timestamps stay in this file only;
            payloads and the cache are untouched.
        streaming: fold every result into a fixed-memory
            :class:`~repro.campaign.streaming.CampaignAggregate` as it
            lands and drop the payload — outcomes then carry no
            payloads and report memory is bounded regardless of
            campaign size.  A small reorder buffer (bounded by the
            completion-order skew, i.e. ``jobs``) restores cell-index
            fold order so the aggregate is byte-identical to a serial
            run's.
    """
    started = time.perf_counter()
    total = len(campaign.cells)
    outcomes: Dict[int, CellOutcome] = {}
    done_count = 0
    aggregate: Optional["CampaignAggregate"] = None
    if streaming:
        from repro.campaign.streaming import CampaignAggregate

        aggregate = CampaignAggregate(campaign.name, total)
    status = StatusWriter(status_path) if status_path is not None else None
    if status is not None:
        status.emit(
            "campaign_start", campaign=campaign.name, cells=total, jobs=jobs
        )

    def record(index, spec, state, payload, attempts, error, wall) -> None:
        nonlocal done_count
        outcome = CellOutcome(
            index=index,
            spec=spec,
            status=state,
            # Streaming mode never retains payloads: the cell folds
            # into the aggregate below and its memory is released.
            payload=None if aggregate is not None else payload,
            attempts=attempts,
            error=error,
            wall_seconds=wall,
        )
        outcomes[index] = outcome
        done_count += 1
        if state == "ok" and cache is not None:
            cache.store(key_for(index), payload)
        if aggregate is not None:
            aggregate.add(index, state, payload)
        if status is not None:
            fields = {
                "cell": index,
                "state": state,
                "attempt": attempts,
                "spec": spec.describe(),
                "wall_seconds": wall,
            }
            if error is not None:
                fields["error"] = error
            events = _payload_events(payload)
            if events is not None:
                fields["events_processed"] = events
            status.emit("cell", **fields)
        if progress is not None:
            tag = {"ok": "done", "cached": "cached", "failed": "FAILED"}[
                state
            ]
            suffix = f" ({error})" if error else ""
            progress(
                f"[{done_count}/{total}] {tag:6s} {spec.describe()}{suffix}"
            )

    keys: Dict[int, str] = {}

    def key_for(index: int) -> str:
        key = keys.get(index)
        if key is None:
            key = keys[index] = spec_key(campaign.cells[index])
        return key

    work = []
    for index, spec in enumerate(campaign.cells):
        if cache is not None:
            hit = cache.lookup(key_for(index))
            if hit is not None:
                record(index, spec, "cached", hit, 0, None, 0.0)
                continue
        work.append((index, spec, 0))

    if work:
        runner = _CellRunner(cell_fn, status_path)
        ran_in_pool = False
        if jobs > 1:
            ran_in_pool = _run_pool(
                work, runner, jobs, timeout, retries, record
            )
            if not ran_in_pool and progress is not None:
                progress(
                    "process pool unavailable; falling back to serial "
                    "in-process execution"
                )
        if not ran_in_pool:
            _run_serial(work, runner, retries, record)

    report = CampaignReport(
        campaign=campaign,
        outcomes=[outcomes[i] for i in range(total)],
        jobs=jobs,
        cache_stats=cache.stats if cache is not None else CacheStats(),
        wall_seconds=time.perf_counter() - started,
        aggregate=aggregate,
    )
    if status is not None:
        counts: Dict[str, int] = {}
        for outcome in report.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        status.emit(
            "campaign_end",
            ok=counts.get("ok", 0),
            cached=counts.get("cached", 0),
            failed=counts.get("failed", 0),
            wall_seconds=report.wall_seconds,
        )
    return report
