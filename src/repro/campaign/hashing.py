"""Content addressing for campaign cells.

A cell's cache key is the SHA-256 of its *canonical JSON* — sorted keys,
compact separators, round-trip-exact floats — combined with the package
version, so any change to any config field (or to the package itself)
forces a recompute while a pure re-run hits the cache.  The same
canonical encoding also serialises cached payloads, which is what makes
"parallel and serial produce byte-identical results" testable: two
payloads agree iff their canonical JSON bytes agree.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Optional

import repro
from repro.campaign.spec import RunSpec
from repro.errors import ConfigError


def _canonical_default(obj: object) -> object:
    """JSON fallback for the structured types campaign specs carry."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(
        f"{type(obj).__name__} is not canonically JSON-serialisable"
    )


def canonical_json(obj: object) -> str:
    """Deterministic JSON: one value, one byte string.

    ``json.dumps`` already emits the shortest round-trip ``repr`` for
    floats, so a payload that has been through ``json.loads`` re-encodes
    to identical bytes — cache round-trips are lossless.  Non-finite
    floats are rejected: they would not survive a JSON round-trip.
    """
    text = json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
        default=_canonical_default,
    )
    return text


def content_hash(obj: object) -> str:
    """SHA-256 hex digest of an object's canonical JSON."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def spec_key(spec: RunSpec, *, version: Optional[str] = None) -> str:
    """The cache key of one cell: hash(canonical spec + package version)."""
    if not isinstance(spec, RunSpec):
        raise ConfigError(f"spec_key wants a RunSpec, got {type(spec)!r}")
    if any(
        isinstance(v, float) and not math.isfinite(v)
        for v in dataclasses.asdict(spec.config).values()
    ):
        raise ConfigError("config with non-finite floats cannot be hashed")
    return content_hash(
        {
            "spec": spec.canonical_dict(),
            "version": version if version is not None else repro.__version__,
        }
    )
