"""Live campaign health: JSONL status stream, stall detection, rendering.

Long campaigns run for minutes to hours on a process pool; the only
signal ``run_campaign`` used to give was per-cell completion lines.  The
status stream makes in-flight campaigns observable: the supervisor and
every worker append one JSON object per line to a shared *status file*,
and ``repro status <dir-or-file>`` renders the latest state per cell —
including **stall detection** (a cell whose last record is non-terminal
and older than a threshold is flagged).

Record vocabulary (all records carry ``record``, ``wall`` — unix
seconds — and usually ``cell``):

====================  ==================================================
``campaign_start``     cells, jobs, campaign name
``cell``               one cell's state transition, emitted by the
                       worker (``running`` → ``finished``) and by the
                       supervisor (terminal ``ok``/``cached``/``failed``)
``campaign_end``       totals: ok/cached/failed counts, wall seconds
====================  ==================================================

Worker ``finished`` records additionally ship ``events_processed`` (when
the payload exposes it) and a ``spans`` snapshot of the cell's ambient
:class:`~repro.telemetry.profiler.SpanProfiler` — so a slow cell shows
*where* its time went without re-running anything.

Appends are line-buffered per record: each ``emit`` opens the file in
append mode, writes one line, and closes it, which keeps concurrent
writers from different processes from interleaving partial lines on any
POSIX filesystem (O_APPEND single-write).  The reader tolerates a
truncated final line — a campaign killed mid-write still parses.

Wall-clock timestamps live *only* here; the status stream is a health
channel and is deliberately outside the determinism contract (result
payloads, traces, and the cache never see it).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "StatusWriter",
    "CellStatus",
    "read_status",
    "summarize_status",
    "render_status",
    "resolve_status_path",
    "STATUS_FILENAME",
    "TERMINAL_STATES",
    "SETTLED_STATES",
    "DEFAULT_STALL_THRESHOLD",
]

#: Default status-file name inside a campaign/cache directory.
STATUS_FILENAME = "status.jsonl"

#: Cell states that mean "no further record is expected".
TERMINAL_STATES = frozenset({"ok", "cached", "failed"})

#: States that mean the cell's *work* is done even if no supervisor
#: terminal record follows.  A worker's ``finished`` is the last word
#: when the stream's writer is not a campaign supervisor (``repro
#: serve`` heartbeats, a supervisor killed between worker completion and
#: its own terminal record) — such cells must not count as stalled.
SETTLED_STATES = TERMINAL_STATES | frozenset({"finished"})

#: Seconds of silence after which a non-terminal cell counts as stalled.
DEFAULT_STALL_THRESHOLD = 120.0


class StatusWriter:
    """Append-only JSONL emitter usable from any process.

    Safe for concurrent use by the supervisor and pool workers: every
    record is a single ``open(append) -> write -> close`` of one line.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        parent = self._path.parent
        if parent and not parent.exists():
            parent.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Path:
        return self._path

    def emit(self, record: str, **fields) -> None:
        """Append one status record (stamped with wall time)."""
        payload = {"record": record, "wall": time.time()}
        payload.update(fields)
        line = json.dumps(payload, separators=(",", ":"), default=str)
        with open(self._path, "a", encoding="utf-8") as fp:
            fp.write(line + "\n")


def read_status(path: Union[str, Path]) -> List[Dict]:
    """Parse a status file, tolerating a truncated final line.

    A campaign killed mid-write leaves at most one partial trailing line;
    every complete line before it is returned.
    """
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # Partial tail from a killed writer; stop at the damage.
                break
    return records


class CellStatus:
    """Latest known state of one campaign cell."""

    __slots__ = (
        "cell",
        "spec",
        "state",
        "attempt",
        "last_wall",
        "events_processed",
        "spans",
        "error",
        "stalled",
    )

    def __init__(self, cell: int) -> None:
        self.cell = cell
        self.spec = ""
        self.state = "unknown"
        self.attempt = 0
        self.last_wall = 0.0
        self.events_processed: Optional[int] = None
        self.spans: Optional[Dict] = None
        self.error: Optional[str] = None
        self.stalled = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> Dict[str, object]:
        return {
            "cell": self.cell,
            "spec": self.spec,
            "state": self.state,
            "attempt": self.attempt,
            "last_wall": self.last_wall,
            "events_processed": self.events_processed,
            "error": self.error,
            "stalled": self.stalled,
        }


def summarize_status(
    records: List[Dict],
    *,
    now: Optional[float] = None,
    stall_threshold: float = DEFAULT_STALL_THRESHOLD,
) -> Dict[str, object]:
    """Fold a record stream into per-cell latest state plus stall flags.

    Args:
        records: output of :func:`read_status`.
        now: reference wall time for staleness (defaults to the wall
            clock; tests pin it).
        stall_threshold: seconds of silence after which a cell whose last
            record is non-terminal is flagged as stalled.  A campaign
            killed mid-cell trips exactly this: the worker's ``running``
            record is the cell's last word.
    """
    if now is None:
        now = time.time()
    cells: Dict[int, CellStatus] = {}
    meta: Dict[str, object] = {"campaign": None, "jobs": None, "ended": False}
    for rec in records:
        kind = rec.get("record")
        if kind == "campaign_start":
            meta["campaign"] = rec.get("campaign")
            meta["jobs"] = rec.get("jobs")
            meta["cells_total"] = rec.get("cells")
        elif kind == "campaign_end":
            meta["ended"] = True
        elif kind == "cell" and "cell" in rec:
            index = int(rec["cell"])
            cell = cells.get(index)
            if cell is None:
                cell = cells[index] = CellStatus(index)
            cell.state = rec.get("state", cell.state)
            cell.last_wall = rec.get("wall", cell.last_wall)
            cell.spec = rec.get("spec", cell.spec) or cell.spec
            cell.attempt = rec.get("attempt", cell.attempt) or cell.attempt
            if rec.get("events_processed") is not None:
                cell.events_processed = rec["events_processed"]
            if rec.get("spans") is not None:
                cell.spans = rec["spans"]
            if rec.get("error") is not None:
                cell.error = rec["error"]
    stalled = []
    for cell in cells.values():
        settled = cell.terminal or cell.state in SETTLED_STATES
        if not settled and now - cell.last_wall > stall_threshold:
            cell.stalled = True
            stalled.append(cell.cell)
    ordered = [cells[i] for i in sorted(cells)]
    return {
        "meta": meta,
        "cells": ordered,
        "stalled": sorted(stalled),
        "counts": _state_counts(ordered),
    }


def _state_counts(cells: List[CellStatus]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for cell in cells:
        counts[cell.state] = counts.get(cell.state, 0) + 1
    return counts


def _age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_status(
    summary: Dict[str, object], *, now: Optional[float] = None
) -> str:
    """Render a :func:`summarize_status` summary as an aligned table."""
    if now is None:
        now = time.time()
    meta = summary["meta"]
    cells: List[CellStatus] = summary["cells"]  # type: ignore[assignment]
    header = "campaign status"
    if meta.get("campaign"):
        header += f": {meta['campaign']}"
    lines = [header, "=" * len(header)]
    counts = summary["counts"]
    totals = ", ".join(f"{state}={n}" for state, n in sorted(counts.items()))
    lines.append(
        f"cells seen: {len(cells)}"
        + (f" of {meta['cells_total']}" if meta.get("cells_total") else "")
        + (f"  [{totals}]" if totals else "")
        + ("  (campaign ended)" if meta.get("ended") else "  (in flight)")
    )
    if cells:
        lines.append("")
        spec_width = max(4, *(len(c.spec) for c in cells))
        lines.append(
            f"{'cell':>4}  {'state':<8} {'age':>6}  {'events':>9}  "
            f"{'spec':<{spec_width}}"
        )
        for cell in cells:
            age = _age(max(now - cell.last_wall, 0.0))
            events = (
                str(cell.events_processed)
                if cell.events_processed is not None
                else "-"
            )
            flag = "  << STALLED" if cell.stalled else ""
            err = f"  ({cell.error})" if cell.error else ""
            lines.append(
                f"{cell.cell:>4}  {cell.state:<8} {age:>6}  {events:>9}  "
                f"{cell.spec:<{spec_width}}{flag}{err}"
            )
    stalled = summary["stalled"]
    if stalled:
        lines.append("")
        lines.append(
            f"STALLED: {len(stalled)} cell(s) silent beyond threshold: "
            + ", ".join(str(i) for i in stalled)
        )
    return "\n".join(lines)


def resolve_status_path(target: Union[str, Path]) -> Path:
    """Accept a status file or a directory containing one."""
    path = Path(target)
    if path.is_dir():
        path = path / STATUS_FILENAME
    return path
