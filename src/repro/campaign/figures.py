"""The ``repro all`` figure summary as campaign cells.

Each cell reproduces one figure at the summary scale and returns its
one-line verdict as a deterministic payload, so the full-suite replay
(nine figures, ten lines) parallelises across workers and is served from
the content-addressed cache on re-runs.  The lines are byte-for-byte the
ones the serial ``repro all`` has always printed; only *when* they are
computed changed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from repro.campaign.spec import Campaign, RunSpec
from repro.errors import ConfigError
from repro.experiments.config import MacroConfig, testbed_config


def ctrl_messages(results) -> str:
    """Render per-placement control-plane message counts for one figure.

    ``results`` maps placement name -> RunResult; only daemon-based
    policies send bus messages, so zero-count entries are omitted.
    """
    counts = {
        name: r.control_messages
        for name, r in results.items()
        if r.control_messages
    }
    if not counts:
        return "ctrl msgs: 0"
    return "ctrl msgs: " + ", ".join(
        f"{name}={count}" for name, count in counts.items()
    )


def _fig1(spec: RunSpec) -> str:
    from repro.experiments.motivating import EXPECTED_FIGURE1, figure1_table

    rows = figure1_table()
    exact = all(
        abs(
            r.completion_time
            - EXPECTED_FIGURE1[(r.network_policy, r.placement)][0]
        )
        < 1e-6
        for r in rows
    )
    return f"fig1  motivating example: {'EXACT match' if exact else 'MISMATCH'}"


def _fig3(spec: RunSpec) -> str:
    from repro.experiments.comparative import figure3

    outcome = figure3(spec.network_policy, spec.config)
    return (
        f"fig3  minDist/minLoad overall FCT ratio under Fair: "
        f"{outcome.overall_ratio():.2f} "
        f"[{ctrl_messages({'mindist': outcome.mindist, 'minload': outcome.minload})}]"
    )


def _flow_line(spec: RunSpec) -> str:
    from repro.experiments.flow_macro import run_flow_macro

    label = {"fair": "fig5", "las": "fig6a", "srpt": "fig6b"}[
        spec.network_policy
    ]
    outcome = run_flow_macro(
        network_policy=spec.network_policy, config=spec.config
    )
    return (
        f"{label:5s} {spec.network_policy.upper():4s}: NEAT "
        f"{outcome.improvement_over('minload'):.2f}x vs minLoad, "
        f"{outcome.improvement_over('mindist'):.2f}x vs minDist "
        f"[{ctrl_messages(outcome.results)}]"
    )


def _fig7(spec: RunSpec) -> str:
    from repro.experiments.coflow_macro import figure7

    outcome = figure7(spec.network_policy, spec.config)
    ccts = outcome.average_ccts()
    return (
        f"fig7  Varys coflows: mean CCT neat={ccts['neat']:.3f}s "
        f"minload={ccts['minload']:.3f}s mindist={ccts['mindist']:.3f}s "
        f"[{ctrl_messages(outcome.results)}]"
    )


def _fig8(spec: RunSpec) -> str:
    from repro.experiments.micro import figure8

    outcome = figure8(spec.config)
    return (
        f"fig8  Fair-vs-SRPT predictor relative difference: "
        f"{outcome.relative_difference():.2f} "
        f"[{ctrl_messages({'neat-fair': outcome.fair_predictor, 'neat-srpt': outcome.srpt_predictor})}]"
    )


def _fig9(spec: RunSpec) -> str:
    from repro.experiments.micro import figure9

    outcome = figure9(spec.config, network_policy=spec.network_policy)
    return (
        f"fig9  minFCT degradation without node states (Fair): "
        f"{outcome.minfct_degradation() * 100:.0f}% "
        f"[{ctrl_messages(outcome.results)}]"
    )


def _fig10(spec: RunSpec) -> str:
    from repro.experiments.micro import figure10

    short, long = figure10(spec.config)
    return (
        f"fig10 prediction error: short {short.mean_abs_error:.3f}, "
        f"long {long.mean_abs_error:.3f} (mean |err|)"
    )


def _fig11(spec: RunSpec) -> str:
    from repro.experiments.testbed import figure11

    outcome = figure11(spec.config)
    return (
        f"fig11 testbed: NEAT vs minLoad "
        f"+{outcome.improvement_percent('fair'):.1f}% (Fair), "
        f"+{outcome.improvement_percent('las'):.1f}% (LAS) "
        f"[{ctrl_messages({f'neat/{net}': outcome.results[net]['neat'] for net in ('fair', 'las')})}]"
    )


_FIGURE_CELLS: Dict[str, Callable[[RunSpec], str]] = {
    "fig1": _fig1,
    "fig3": _fig3,
    "fig5": _flow_line,
    "fig6a": _flow_line,
    "fig6b": _flow_line,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
}


def execute_figure(spec: RunSpec) -> Dict[str, object]:
    """Run one summary figure cell and return its verdict line."""
    runner = _FIGURE_CELLS.get(spec.figure or "")
    if runner is None:
        raise ConfigError(f"unknown figure cell {spec.figure!r}")
    return {"figure": spec.figure, "line": runner(spec)}


def build_all_campaign(base: MacroConfig, *, arrivals: int, seed: int) -> Campaign:
    """The ``repro all`` summary as a ten-cell campaign.

    ``base`` is the CLI-derived Hadoop-workload config; per-figure
    config transforms mirror what the serial summary always used, so the
    resulting lines are unchanged.
    """

    def cell(figure: str, config: MacroConfig, network: str) -> RunSpec:
        return RunSpec(
            kind="figure",
            config=config,
            network_policy=network,
            figure=figure,
            label=figure,
        )

    fig3_cfg = replace(
        base,
        workload="datamining",
        oversubscription=max(base.oversubscription, 4.0),
    )
    fig7_cfg = replace(
        base, coflows=True, num_arrivals=max(100, arrivals // 4)
    )
    cells = (
        cell("fig1", base, "fair"),
        cell("fig3", fig3_cfg, "fair"),
        cell("fig5", base, "fair"),
        cell("fig6a", base, "las"),
        cell("fig6b", base, "srpt"),
        cell("fig7", fig7_cfg, "varys"),
        cell("fig8", base, "srpt"),
        cell("fig9", base, "fair"),
        cell("fig10", base, "srpt"),
        cell(
            "fig11",
            testbed_config(num_arrivals=arrivals, seed=seed),
            "fair",
        ),
    )
    return Campaign(name="repro-all", cells=cells)
