"""Content-addressed on-disk result cache for campaign cells.

Layout: ``<root>/<key[:2]>/<key>.json`` — two-level sharding keeps a big
campaign from piling thousands of files into one directory.  Writes are
atomic (temp file + ``os.replace``) so a killed worker can never leave a
truncated blob behind, and a corrupt blob (e.g. a partial write from an
older, non-atomic tool) is treated as a miss and deleted rather than
poisoning every future run.

The blob bytes are the payload's canonical JSON, so ``lookup`` returns a
dict whose re-encoding is byte-identical to what ``store`` was given —
cache hits cannot perturb a campaign's byte-identity guarantee.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.campaign.hashing import canonical_json


@dataclass
class CacheStats:
    """Hit/miss/write accounting for one executor pass."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def __str__(self) -> str:
        return f"hits={self.hits} misses={self.misses} writes={self.writes}"


@dataclass
class ResultCache:
    """Content-addressed JSON blob store rooted at one directory."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def lookup(self, key: str) -> Optional[Dict[str, object]]:
        """Return the cached payload for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError):
            # Corrupt or unreadable blob: drop it and recompute.
            try:
                os.remove(path)
            except OSError:
                pass
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def store(self, key: str, payload: Dict[str, object]) -> None:
        """Atomically persist one payload under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = canonical_json(payload)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __len__(self) -> int:
        """Number of cached blobs on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every cached blob; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for blob in self.root.glob("??/*.json"):
            try:
                blob.unlink()
                removed += 1
            except OSError:
                pass
        return removed
