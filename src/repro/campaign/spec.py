"""Declarative simulation campaigns: grids of independent run cells.

A :class:`RunSpec` is one fully-determined simulation cell — everything
needed to reproduce it lives in the spec (config, policies, seed), so a
cell can execute in any process, in any order, and yield byte-identical
results.  A :class:`Campaign` is an ordered tuple of cells; the order is
the *reporting* order and never affects any cell's outcome.

Seeds are derived deterministically from a base seed with the same FNV
hash the simulator's :class:`~repro.sim.randomness.RandomStreams` uses
(:func:`derive_seeds`), so a campaign built from ``base_seed`` is stable
across processes and Python versions — the precondition for parallel and
serial execution agreeing byte for byte.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.experiments.config import MacroConfig
from repro.faults.plan import FaultPlan
from repro.sim.randomness import hash_seed

#: Cell kinds the executor knows how to run.
KINDS = ("flow_macro", "coflow_macro", "figure")


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation run (a single campaign cell).

    Attributes:
        kind: ``"flow_macro"`` (Figures 5/6 style placement comparison),
            ``"coflow_macro"`` (Figure 7 style), or ``"figure"`` (one of
            the ``repro all`` summary cells).
        config: the complete :class:`MacroConfig` for the run — the seed
            lives here, so one spec is one exact simulation.
        network_policy: flow or coflow scheduling policy name.
        placements: placement policies compared within the cell (they
            share the cell's trace, keeping comparisons paired).
        predictor: FCT predictor for NEAT/minFCT.
        figure: figure id (``"fig5"``…) when ``kind == "figure"``.
        faults: optional fault plan injected into every run of the cell;
            its canonical form (name excluded) is part of the content
            hash, so a faulted cell and its fault-free twin never share a
            cache entry.
        label: human-readable display name; *excluded* from the content
            hash so relabelling never invalidates the cache.
    """

    kind: str
    config: MacroConfig
    network_policy: str = "fair"
    placements: Tuple[str, ...] = ("neat", "minload", "mindist")
    predictor: str = "fair"
    figure: Optional[str] = None
    faults: Optional[FaultPlan] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown RunSpec kind {self.kind!r}; expected one of {KINDS}"
            )
        if (self.kind == "figure") != (self.figure is not None):
            raise ConfigError(
                "RunSpec.figure must be set exactly when kind == 'figure'"
            )
        if not self.placements:
            raise ConfigError("RunSpec needs at least one placement policy")

    def canonical_dict(self) -> Dict[str, object]:
        """The content-defining fields (label omitted), JSON-safe."""
        return {
            "kind": self.kind,
            "config": asdict(self.config),
            "network_policy": self.network_policy,
            "placements": list(self.placements),
            "predictor": self.predictor,
            "figure": self.figure,
            "faults": (
                self.faults.canonical() if self.faults is not None else None
            ),
        }

    def describe(self) -> str:
        """Short display name (the label when set, axes otherwise)."""
        if self.label:
            return self.label
        if self.kind == "figure":
            return str(self.figure)
        return (
            f"{self.kind} net={self.network_policy} "
            f"load={self.config.load:g} seed={self.config.seed}"
        )

    def to_json_dict(self) -> Dict[str, object]:
        """Lossless JSON form: canonical fields plus display-only ones.

        Unlike :meth:`canonical_dict` (which feeds the content hash and
        therefore excludes labels), this keeps the cell's label and the
        fault plan's name, so a spec written into a work-queue manifest
        round-trips through :func:`spec_from_json_dict` into an equal
        spec — same display, same cache key.
        """
        payload = self.canonical_dict()
        payload["faults"] = (
            self.faults.to_dict() if self.faults is not None else None
        )
        payload["label"] = self.label
        return payload


def spec_from_json_dict(raw: Dict[str, object]) -> RunSpec:
    """Reconstruct a :class:`RunSpec` from :meth:`RunSpec.to_json_dict`.

    The queue manifest is the cross-process wire format of a campaign:
    a worker on another machine rebuilds each cell from this dict, and
    the reconstruction is exact — ``spec_key`` of the rebuilt spec is
    byte-identical to the original's, which is what lets distributed
    workers share one content-addressed cache with the supervisor.
    """
    if not isinstance(raw, dict):
        raise ConfigError(f"spec entry must be an object, got {type(raw)!r}")
    try:
        config_raw = dict(raw["config"])
        kind = raw["kind"]
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed spec entry: missing {exc}") from exc
    width = config_raw.get("coflow_width")
    if isinstance(width, list):
        config_raw["coflow_width"] = tuple(width)
    try:
        config = MacroConfig(**config_raw)
    except TypeError as exc:
        raise ConfigError(f"malformed spec config: {exc}") from exc
    faults_raw = raw.get("faults")
    faults = FaultPlan.from_dict(faults_raw) if faults_raw is not None else None
    return RunSpec(
        kind=kind,
        config=config,
        network_policy=raw.get("network_policy", "fair"),
        placements=tuple(raw.get("placements", ())),
        predictor=raw.get("predictor", "fair"),
        figure=raw.get("figure"),
        faults=faults,
        label=raw.get("label", ""),
    )


@dataclass(frozen=True)
class Campaign:
    """An ordered grid of independent cells plus a display name."""

    name: str
    cells: Tuple[RunSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.cells:
            raise ConfigError(f"campaign {self.name!r} has no cells")

    def __len__(self) -> int:
        return len(self.cells)


def derive_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` deterministic child seeds from one base seed.

    Uses the same cross-process-stable FNV derivation as
    :func:`repro.sim.randomness.hash_seed`, folded to 31 bits so the
    seeds stay friendly to every RNG and JSON consumer.
    """
    if count < 1:
        raise ConfigError("need at least one derived seed")
    return [
        hash_seed(base_seed, f"campaign-rep:{i}") & 0x7FFFFFFF
        for i in range(count)
    ]


def flow_grid(
    *,
    name: str = "flow-grid",
    base_config: MacroConfig,
    seeds: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    network_policies: Sequence[str] = ("fair",),
    loads: Optional[Sequence[float]] = None,
    placements: Sequence[str] = ("neat", "minload", "mindist"),
    predictor: str = "fair",
    coflows: bool = False,
    faults: Optional[Sequence[Optional[FaultPlan]]] = None,
) -> Campaign:
    """Build a seed x network-policy x load [x fault-plan] campaign grid.

    Exactly one of ``seeds`` (explicit) or ``repetitions`` (derived from
    ``base_config.seed`` via :func:`derive_seeds`) selects the seed axis.
    Placements are compared *within* each cell so every comparison stays
    paired on a shared trace.  Cell order is the nested loop
    seed -> network -> load -> fault plan, which fixes the reporting
    order.  ``faults`` entries may include ``None`` (the fault-free
    twin), so a grid can sweep degraded operation against its baseline
    in one campaign.
    """
    if (seeds is None) == (repetitions is None):
        raise ConfigError("give exactly one of seeds= or repetitions=")
    if seeds is None:
        seeds = derive_seeds(base_config.seed, repetitions)
    if not seeds:
        raise ConfigError("need at least one seed")
    if not network_policies:
        raise ConfigError("need at least one network policy")
    load_axis = tuple(loads) if loads is not None else (base_config.load,)
    if not load_axis:
        raise ConfigError("need at least one load")
    fault_axis: Tuple[Optional[FaultPlan], ...] = (
        tuple(faults) if faults is not None else (None,)
    )
    if not fault_axis:
        raise ConfigError("need at least one fault-plan entry (None is fine)")
    kind = "coflow_macro" if coflows else "flow_macro"
    cells = []
    for seed in seeds:
        for net in network_policies:
            for load in load_axis:
                for plan in fault_axis:
                    cfg = replace(
                        base_config, seed=seed, load=load, coflows=coflows
                    )
                    label = f"seed={seed} net={net} load={load:g}"
                    if plan is not None:
                        label += f" faults={plan.name or 'plan'}"
                    cells.append(
                        RunSpec(
                            kind=kind,
                            config=cfg,
                            network_policy=net,
                            placements=tuple(placements),
                            predictor=predictor,
                            faults=plan,
                            label=label,
                        )
                    )
    return Campaign(name=name, cells=tuple(cells))
