"""Campaign-level aggregation: fold per-cell payloads into one report.

A campaign's workers each return a small deterministic payload; this
module is the single place that turns those payloads back into the
objects and tables the rest of the repo speaks: :class:`MacroSummary`
(duck-compatible with
:class:`~repro.experiments.flow_macro.MacroOutcome` for the aggregate
consumers), per-axis tail-latency aggregates, and the rendered text
report with merged telemetry totals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids an import cycle)
    from repro.campaign.executor import CampaignReport
    from repro.experiments.repetitions import Aggregate


class MacroSummary:
    """A macro cell's payload wearing the ``MacroOutcome`` interface.

    Campaign workers cannot ship full flow-record lists back through the
    cache, so aggregate consumers (``repeat_flow_macro`` and friends)
    get this thin adapter over the per-placement summary statistics.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Dict[str, object]) -> None:
        if "per_placement" not in payload:
            raise ConfigError(
                "MacroSummary needs a macro cell payload "
                "(missing 'per_placement')"
            )
        self.payload = payload

    @property
    def network_policy(self) -> str:
        return self.payload["network_policy"]

    @property
    def per_placement(self) -> Dict[str, Dict[str, float]]:
        return self.payload["per_placement"]

    def average_gaps(self) -> Dict[str, float]:
        return {
            name: stats["average_gap"]
            for name, stats in self.per_placement.items()
        }

    def afcts(self) -> Dict[str, float]:
        return {
            name: stats["mean_completion"]
            for name, stats in self.per_placement.items()
        }

    def improvement_over(
        self, baseline: str, *, metric: str = "gap"
    ) -> float:
        values = self.average_gaps() if metric == "gap" else self.afcts()
        neat = values["neat"]
        if neat <= 0:
            return float("inf")
        return values[baseline] / neat


def grid_aggregates(
    report: "CampaignReport",
) -> Dict[Tuple[str, float], Dict[str, "Aggregate"]]:
    """Aggregate each (network policy, load) group's gaps across seeds.

    Returns ``{(network_policy, load): {placement: Aggregate}}`` with
    mean, stdev, and the p50/p95/p99 tail percentiles per placement.
    Failed (quarantined) cells are simply absent from their group.
    """
    from repro.experiments.repetitions import aggregate

    grouped: Dict[Tuple[str, float], Dict[str, List[float]]] = {}
    for outcome in report.completed:
        payload = outcome.payload
        if payload is None or "per_placement" not in payload:
            continue
        key = (payload["network_policy"], payload["load"])
        per_placement = grouped.setdefault(key, {})
        for name, stats in payload["per_placement"].items():
            per_placement.setdefault(name, []).append(stats["average_gap"])
    return {
        key: {
            name: aggregate(values)
            for name, values in sorted(per_placement.items())
        }
        for key, per_placement in grouped.items()
    }


def blame_aggregates(
    report: "CampaignReport",
) -> Dict[Tuple[str, float], Dict[str, Dict[str, "Aggregate"]]]:
    """Aggregate causal blame-component shares across seeds.

    Each macro cell payload carries per-placement ``blame`` shares (the
    mean fraction of FCT attributed to serialization / queueing /
    contention / fault by the causal decomposition).  This folds the
    per-seed means into ``{(network_policy, load): {placement:
    {component: Aggregate}}}`` so campaign reports can show blame tails
    (p50/p95/p99 across seeds) next to the gap tails.  Cells without
    causal data (old caches, custom cell functions) are skipped.
    """
    from repro.experiments.repetitions import aggregate

    grouped: Dict[
        Tuple[str, float], Dict[str, Dict[str, List[float]]]
    ] = {}
    for outcome in report.completed:
        payload = outcome.payload
        if payload is None or "per_placement" not in payload:
            continue
        key = (payload["network_policy"], payload["load"])
        per_placement = grouped.setdefault(key, {})
        for name, stats in payload["per_placement"].items():
            blame = stats.get("blame") if isinstance(stats, dict) else None
            if not blame:
                continue
            components = per_placement.setdefault(name, {})
            for component, share in blame.items():
                if share is None:
                    continue
                components.setdefault(component, []).append(share["mean"])
    return {
        key: {
            name: {
                component: aggregate(values)
                for component, values in components.items()
            }
            for name, components in sorted(per_placement.items())
        }
        for key, per_placement in grouped.items()
    }


def render_campaign_report(
    report: "CampaignReport", *, title: Optional[str] = None
) -> str:
    """Text report: aggregate table, cache totals, quarantine section."""
    from repro.metrics.report import format_table

    lines: List[str] = []
    name = title if title is not None else report.campaign.name
    lines.append(
        f"campaign {name}: {len(report.completed)}/{len(report.outcomes)} "
        f"cells completed with jobs={report.jobs} "
        f"in {report.wall_seconds:.1f}s"
    )
    lines.append(f"cache: {report.cache_stats}")

    grid = grid_aggregates(report)
    if grid:
        rows = []
        for (net, load), per_placement in sorted(grid.items()):
            for placement, agg in per_placement.items():
                rows.append(
                    [
                        net,
                        f"{load:g}",
                        placement,
                        f"{agg.mean:.3f} ± {agg.stdev:.3f}",
                        f"{agg.p50:.3f}",
                        f"{agg.p95:.3f}",
                        f"{agg.p99:.3f}",
                        str(agg.count),
                    ]
                )
        lines.append("")
        lines.append(
            format_table(
                [
                    "network", "load", "placement", "gap mean ± stdev",
                    "p50", "p95", "p99", "seeds",
                ],
                rows,
            )
        )

    blame = blame_aggregates(report)
    if blame:
        from repro.telemetry.causal import BLAME_COMPONENTS

        def clean(value: float) -> float:
            # Decomposition float dust (~1e-17) would render as -0.000.
            return 0.0 if abs(value) < 1e-9 else value

        rows = []
        for (net, load), per_placement in sorted(blame.items()):
            for placement, components in per_placement.items():
                row = [net, f"{load:g}", placement]
                for component in BLAME_COMPONENTS:
                    agg = components.get(component)
                    row.append(
                        f"{clean(agg.mean):.3f} (p99 {clean(agg.p99):.3f})"
                        if agg is not None
                        else "-"
                    )
                rows.append(row)
        lines.append("")
        lines.append("blame shares (mean fraction of FCT, across seeds):")
        lines.append(
            format_table(
                ["network", "load", "placement"] + list(BLAME_COMPONENTS),
                rows,
            )
        )

    merged = report.merged_metrics()
    counters = merged.get("counters", {})
    if counters:
        lines.append("")
        lines.append("merged counters (all cells):")
        for metric, value in sorted(counters.items()):
            lines.append(f"  {metric} = {value:g}")

    failures = report.failure_report()
    if failures:
        lines.append("")
        lines.append(failures)
    return "\n".join(lines)
