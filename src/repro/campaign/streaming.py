"""Fixed-memory streaming aggregation of campaign cell payloads.

The batch :class:`~repro.campaign.executor.CampaignReport` holds every
cell's payload in memory — fine for dozens of cells, fatal for a
10k-cell grid.  :class:`CampaignAggregate` is the streaming alternative:
cells fold in one at a time and are never retained, so the aggregate's
memory is bounded by the number of *distinct groups and metric names*,
not the number of cells.

Determinism contract (what makes resumed/distributed runs testable):

* **Fold order is cell-index order**, always.  Float addition is not
  associative, so "any completion order" cannot be byte-identical; the
  executor therefore reorders completions back into index order before
  folding (:meth:`CampaignAggregate.add` buffers out-of-order arrivals;
  the distributed supervisor uses the done-marker directory on disk as
  its reorder buffer and calls :meth:`fold` directly).
* **The payload excludes run-shaped facts.**  ``ok`` and ``cached``
  both count as completed, and attempts / wall seconds / worker ids
  never enter the aggregate — so an uninterrupted run, a killed-then-
  resumed run, and a two-worker distributed run of the same grid emit
  byte-identical aggregate payloads (``canonical_json`` of
  :meth:`payload`).
* Group statistics use exact count/sum/min/max plus the mergeable
  :class:`~repro.telemetry.timeseries.QuantileSketch` for tails, and
  per-cell metric registries fold through
  :class:`~repro.telemetry.registry.SnapshotAccumulator` — the same
  arithmetic ``merge_snapshots`` uses for batch merging.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.telemetry.registry import SnapshotAccumulator
from repro.telemetry.timeseries import QuantileSketch, TimeseriesStore, merge_rollups

__all__ = ["CampaignAggregate", "StreamingStat", "render_aggregate"]


class StreamingStat:
    """Exact count/sum/min/max plus sketch quantiles for one series.

    The mean is ``sum / count`` with the sum accumulated in fold order,
    so two folds that see the same values in the same order produce the
    same float — the building block of the byte-identity guarantee.
    """

    __slots__ = ("count", "total", "min", "max", "sketch")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.sketch = QuantileSketch()

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.sketch.add(value)

    def as_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.sketch.quantile(0.50),
            "p95": self.sketch.quantile(0.95),
            "p99": self.sketch.quantile(0.99),
        }


def _group_key(network_policy: str, load: float) -> str:
    # repr() round-trips the float exactly, so the key is collision-free
    # and stable across runs (JSON object keys must be strings).
    return f"{network_policy}|{load!r}"


class CampaignAggregate:
    """Streaming campaign-level fold of per-cell payloads.

    Feed cells through :meth:`add` in any order (a small reorder buffer
    restores index order) or through :meth:`fold` in strict index order.
    Memory is ``O(groups + metric names + buffered out-of-order cells)``
    regardless of campaign size.
    """

    def __init__(self, campaign: str, cells: int) -> None:
        if cells < 1:
            raise ConfigError("campaign aggregate needs at least one cell")
        self.campaign = campaign
        self.cells = cells
        self._next = 0
        self._buffer: Dict[int, Tuple[str, Optional[Dict[str, object]]]] = {}
        self._completed = 0
        self._failed_cells: List[int] = []
        self._grid: Dict[str, Dict[str, StreamingStat]] = {}
        self._blame: Dict[str, Dict[str, Dict[str, StreamingStat]]] = {}
        self._metrics = SnapshotAccumulator()
        self._rollups: Optional[TimeseriesStore] = None

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    @property
    def folded(self) -> int:
        """Cells folded so far (contiguous prefix of the index space)."""
        return self._next

    @property
    def buffered(self) -> int:
        """Out-of-order completions waiting for their predecessors."""
        return len(self._buffer)

    @property
    def complete(self) -> bool:
        return self._next >= self.cells

    def add(
        self, index: int, status: str, payload: Optional[Dict[str, object]]
    ) -> None:
        """Accept one cell in any order; folds once contiguous.

        The buffer holds at most the campaign's completion-order skew
        (bounded by the worker count in practice); cells fold the moment
        every lower index has arrived, in index order.
        """
        if not 0 <= index < self.cells:
            raise ConfigError(
                f"cell index {index} outside campaign of {self.cells} cells"
            )
        if index < self._next or index in self._buffer:
            raise ConfigError(f"cell {index} aggregated twice")
        self._buffer[index] = (status, payload)
        while self._next in self._buffer:
            state, cell_payload = self._buffer.pop(self._next)
            self._fold_one(state, cell_payload)
            self._next += 1

    def fold(
        self, index: int, status: str, payload: Optional[Dict[str, object]]
    ) -> None:
        """Fold the next cell; ``index`` must be exactly ``folded``.

        The distributed supervisor uses this: it advances through the
        done-marker directory in index order, so nothing ever buffers in
        memory — the filesystem is the reorder buffer.
        """
        if index != self._next:
            raise ConfigError(
                f"streaming fold is index-ordered: expected cell "
                f"{self._next}, got {index}"
            )
        self._fold_one(status, payload)
        self._next += 1

    def _fold_one(
        self, status: str, payload: Optional[Dict[str, object]]
    ) -> None:
        index = self._next
        if status not in ("ok", "cached", "failed"):
            raise ConfigError(f"cell {index} has unknown status {status!r}")
        if status == "failed" or payload is None:
            self._failed_cells.append(index)
            return
        self._completed += 1
        per_placement = payload.get("per_placement")
        if isinstance(per_placement, dict):
            key = _group_key(payload["network_policy"], payload["load"])
            group = self._grid.setdefault(key, {})
            blame_group = self._blame.setdefault(key, {})
            for name in sorted(per_placement):
                stats = per_placement[name]
                if not isinstance(stats, dict):
                    continue
                gap = stats.get("average_gap")
                if gap is not None:
                    group.setdefault(name, StreamingStat()).add(gap)
                blame = stats.get("blame")
                if isinstance(blame, dict):
                    components = blame_group.setdefault(name, {})
                    for component in sorted(blame):
                        share = blame[component]
                        if isinstance(share, dict) and "mean" in share:
                            components.setdefault(
                                component, StreamingStat()
                            ).add(share["mean"])
        metrics = payload.get("metrics")
        if isinstance(metrics, dict):
            self._metrics.add(metrics)
        rollups = payload.get("rollups")
        if isinstance(rollups, dict):
            store = TimeseriesStore.from_dict(rollups)
            if self._rollups is None:
                self._rollups = store
            else:
                self._rollups = merge_rollups([self._rollups, store])

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, object]:
        """The campaign-level aggregate as a canonical-JSON-safe dict.

        Deliberately excludes everything that varies between an
        uninterrupted run and a resumed one (ok-vs-cached split,
        attempts, wall clock, worker identities): completed cells count
        as completed however their result reached the fold.
        """
        out: Dict[str, object] = {
            "campaign": self.campaign,
            "cells": self.cells,
            "folded": self._next,
            "completed": self._completed,
            "failed": len(self._failed_cells),
            "failed_cells": list(self._failed_cells),
            "grid": {
                key: {
                    name: stat.as_dict()
                    for name, stat in sorted(group.items())
                }
                for key, group in sorted(self._grid.items())
            },
            "blame": {
                key: {
                    name: {
                        component: stat.as_dict()
                        for component, stat in sorted(components.items())
                    }
                    for name, components in sorted(group.items())
                }
                for key, group in sorted(self._blame.items())
                if group
            },
            "metrics": self._metrics.as_dict(),
        }
        if self._rollups is not None:
            out["rollups"] = self._rollups.to_dict()
        return out


def render_aggregate(aggregate: CampaignAggregate) -> str:
    """Text summary of a streaming aggregate (grid table + counters)."""
    from repro.metrics.report import format_table

    payload = aggregate.payload()
    lines = [
        f"campaign {payload['campaign']}: {payload['completed']}/"
        f"{payload['cells']} cells completed "
        f"({payload['failed']} failed, streaming aggregation)"
    ]
    grid = payload["grid"]
    if grid:
        rows = []
        for key in sorted(grid):
            net, _, load = key.partition("|")
            for placement, stat in sorted(grid[key].items()):
                if not stat.get("count"):
                    continue
                rows.append(
                    [
                        net,
                        f"{float(load):g}",
                        placement,
                        f"{stat['mean']:.3f}",
                        f"{stat['p50']:.3f}",
                        f"{stat['p95']:.3f}",
                        f"{stat['p99']:.3f}",
                        str(stat["count"]),
                    ]
                )
        if rows:
            lines.append("")
            lines.append(
                format_table(
                    [
                        "network", "load", "placement", "gap mean",
                        "p50", "p95", "p99", "seeds",
                    ],
                    rows,
                )
            )
    counters = payload["metrics"].get("counters", {})
    if counters:
        lines.append("")
        lines.append("merged counters (all cells):")
        for metric, value in sorted(counters.items()):
            lines.append(f"  {metric} = {value:g}")
    failed = payload["failed_cells"]
    if failed:
        lines.append("")
        lines.append(
            f"FAILED cells: {', '.join(str(i) for i in failed)}"
        )
    return "\n".join(lines)
