"""Parallel simulation-campaign orchestration with result caching.

The campaign layer turns independent simulation runs — seed x placement
policy x network policy x load x figure — into a declarative
:class:`~repro.campaign.spec.Campaign` of
:class:`~repro.campaign.spec.RunSpec` cells executed on a supervised
process pool (:func:`~repro.campaign.executor.run_campaign`), with a
content-addressed on-disk result cache
(:class:`~repro.campaign.cache.ResultCache`) keyed by the canonical hash
of each cell's full configuration.

Guarantees the rest of the repo builds on:

* **byte-identity** — ``jobs=N`` and ``jobs=1`` produce byte-identical
  payloads (cells are pure functions of their spec; report order is
  cell order, never completion order);
* **cache correctness** — a payload is reused only when every
  content-defining config field (and the package version) matches;
* **supervision** — per-cell timeouts, bounded retries on fresh
  workers, and quarantine with a failure report instead of a sunk
  campaign.

Quickstart::

    from repro.campaign import ResultCache, flow_grid, run_campaign
    from repro.experiments import MacroConfig

    campaign = flow_grid(
        base_config=MacroConfig(num_arrivals=200),
        seeds=[1, 2], network_policies=["fair"], loads=[0.5, 0.7],
    )
    report = run_campaign(
        campaign, jobs=4, cache=ResultCache(".repro-cache"),
    )
    print(render_campaign_report(report))
"""

from repro.campaign.aggregate import (
    MacroSummary,
    grid_aggregates,
    render_campaign_report,
)
from repro.campaign.cache import CacheStats, ResultCache
from repro.campaign.distributed import run_distributed_campaign
from repro.campaign.executor import (
    CampaignReport,
    CellOutcome,
    execute_cell,
    run_campaign,
)
from repro.campaign.figures import build_all_campaign
from repro.campaign.hashing import canonical_json, content_hash, spec_key
from repro.campaign.queue import (
    DEFAULT_LEASE_TTL,
    MANIFEST_FILENAME,
    Claim,
    WorkerSummary,
    WorkQueue,
    run_worker,
)
from repro.campaign.spec import (
    Campaign,
    RunSpec,
    derive_seeds,
    flow_grid,
    spec_from_json_dict,
)
from repro.campaign.streaming import (
    CampaignAggregate,
    StreamingStat,
    render_aggregate,
)
from repro.campaign.status import (
    DEFAULT_STALL_THRESHOLD,
    STATUS_FILENAME,
    CellStatus,
    StatusWriter,
    read_status,
    render_status,
    resolve_status_path,
    summarize_status,
)

__all__ = [
    "Campaign",
    "RunSpec",
    "flow_grid",
    "derive_seeds",
    "spec_from_json_dict",
    "WorkQueue",
    "Claim",
    "WorkerSummary",
    "run_worker",
    "run_distributed_campaign",
    "CampaignAggregate",
    "StreamingStat",
    "render_aggregate",
    "DEFAULT_LEASE_TTL",
    "MANIFEST_FILENAME",
    "canonical_json",
    "content_hash",
    "spec_key",
    "CacheStats",
    "ResultCache",
    "CampaignReport",
    "CellOutcome",
    "execute_cell",
    "run_campaign",
    "MacroSummary",
    "grid_aggregates",
    "render_campaign_report",
    "build_all_campaign",
    "StatusWriter",
    "CellStatus",
    "read_status",
    "summarize_status",
    "render_status",
    "resolve_status_path",
    "STATUS_FILENAME",
    "DEFAULT_STALL_THRESHOLD",
]
