"""Distributed campaign supervision: a pure coordinator over a queue.

:func:`run_distributed_campaign` never executes a cell itself.  It seeds
(or re-opens) the :class:`~repro.campaign.queue.WorkQueue`, optionally
spawns local worker *processes* (each just calls
:func:`~repro.campaign.queue.run_worker` — the same loop ``repro
campaign-worker`` runs, so local and remote workers are
indistinguishable), and folds finished cells into a fixed-memory
:class:`~repro.campaign.streaming.CampaignAggregate` **in cell-index
order**: the supervisor only ever looks at the next unfolded index, so
out-of-order completions wait on disk (done marker + cache), not in
memory — the filesystem is the reorder buffer, and supervisor RSS is
O(groups), not O(cells).

Resume is the same function with ``resume=True``: the campaign is
reconstructed from the queue manifest, already-done cells fold straight
from disk, the rest execute, and the final aggregate payload is
byte-identical to an uninterrupted run (ok/cached both count as
completed; nothing run-shaped enters the payload).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.campaign.executor import (
    CampaignReport,
    CellOutcome,
    execute_cell,
)
from repro.campaign.queue import (
    DEFAULT_LEASE_TTL,
    WorkQueue,
    run_worker,
)
from repro.campaign.spec import Campaign, RunSpec
from repro.campaign.status import StatusWriter
from repro.campaign.streaming import CampaignAggregate
from repro.errors import ConfigError

__all__ = ["run_distributed_campaign"]

#: Supervisor poll interval while waiting for the next done marker.
_TICK = 0.05


def _spawn_local_workers(
    directory: Path,
    count: int,
    cell_fn: Callable[[RunSpec], Dict[str, object]],
    retries: int,
    poll: float,
) -> List:
    """Start ``count`` worker processes over the queue directory.

    Plain :mod:`multiprocessing` processes targeting the module-level
    :func:`run_worker` — picklable by reference, so custom (module-
    level) cell functions work exactly as they do on the process pool.
    Workers run with ``wait=True``: they keep polling until the queue
    completes, which lets them start before the supervisor has folded
    anything and lets them steal expired leases from each other.
    """
    import multiprocessing

    workers = []
    for _ in range(count):
        proc = multiprocessing.Process(
            target=run_worker,
            args=(str(directory),),
            kwargs={
                "cell_fn": cell_fn,
                "retries": retries,
                "poll": poll,
                "wait": True,
            },
            daemon=True,
        )
        proc.start()
        workers.append(proc)
    return workers


def run_distributed_campaign(
    directory: Union[str, Path],
    campaign: Optional[Campaign] = None,
    *,
    workers: int = 2,
    cell_fn: Callable[[RunSpec], Dict[str, object]] = execute_cell,
    retries: int = 1,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll: float = 0.2,
    resume: bool = False,
    wall_timeout: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Run (or resume) ``campaign`` through a shared queue directory.

    Args:
        directory: the queue directory; created when seeding, must
            already be a queue when ``resume`` is set.
        campaign: the grid to run.  Optional with ``resume`` (the
            manifest is authoritative); when both are given the manifest
            must describe the same cells.
        workers: local worker processes to spawn.  ``0`` spawns none —
            the supervisor then coordinates *external* workers
            (``repro campaign-worker DIR`` on any machine sharing the
            filesystem) and simply waits for them.
        cell_fn: cell implementation for the spawned local workers
            (module-level, picklable).
        retries: attempts before a cell is quarantined (lease steals of
            a crashed worker's cell consume attempts too).
        lease_ttl: seconds of lease silence before a cell counts as
            abandoned and becomes stealable.
        poll: worker claim-poll interval.
        resume: re-open an existing queue instead of requiring a fresh
            seed; finished cells fold from disk without re-running.
        wall_timeout: give up (RuntimeError) when the campaign has not
            completed after this many wall seconds — guards a dead
            external-worker fleet.
        progress: optional line sink for per-cell progress.

    Returns:
        A :class:`CampaignReport` whose outcomes carry **no payloads**
        (memory stays bounded); the streaming aggregate rides in
        ``report.aggregate`` and ``report.aggregate_payload()``.
    """
    started = time.perf_counter()
    directory = Path(directory)
    if resume:
        queue = WorkQueue.open(directory)
        if campaign is not None:
            seeded = [
                spec.to_json_dict() for spec in queue.campaign.cells
            ]
            given = [spec.to_json_dict() for spec in campaign.cells]
            if seeded != given:
                raise ConfigError(
                    f"queue {directory} holds campaign "
                    f"{queue.campaign.name!r}, which does not match the "
                    "grid passed for resume"
                )
        campaign = queue.campaign
    else:
        if campaign is None:
            raise ConfigError(
                "run_distributed_campaign needs a campaign unless resuming"
            )
        queue = WorkQueue.seed(directory, campaign, lease_ttl=lease_ttl)

    total = len(campaign.cells)
    status = StatusWriter(queue.status_path)
    status.emit(
        "campaign_start", campaign=campaign.name, cells=total, jobs=workers
    )

    procs = (
        _spawn_local_workers(directory, workers, cell_fn, retries, poll)
        if workers > 0
        else []
    )

    aggregate = CampaignAggregate(campaign.name, total)
    outcomes: List[CellOutcome] = []
    try:
        next_index = 0
        while next_index < total:
            marker = queue.done_marker(next_index)
            if marker is None:
                if wall_timeout is not None and (
                    time.perf_counter() - started > wall_timeout
                ):
                    raise RuntimeError(
                        f"campaign did not complete within {wall_timeout:g}s "
                        f"({next_index}/{total} cells folded); queue "
                        f"progress: {queue.progress()}"
                    )
                if procs and not any(p.is_alive() for p in procs):
                    # Every local worker exited but work remains: the
                    # queue can only finish if external workers exist.
                    if not queue.is_complete():
                        raise RuntimeError(
                            "all local workers exited with "
                            f"{queue.progress()['pending']} cells pending"
                        )
                time.sleep(_TICK)
                continue
            cell_status = marker["status"]
            payload = (
                queue.result_for(next_index)
                if cell_status != "failed"
                else None
            )
            aggregate.fold(next_index, cell_status, payload)
            outcomes.append(
                CellOutcome(
                    index=next_index,
                    spec=campaign.cells[next_index],
                    status=cell_status,
                    payload=None,  # streaming: never retained
                    attempts=int(marker.get("attempts", 1)),
                    error=marker.get("error"),
                )
            )
            if progress is not None:
                tag = {"ok": "done", "cached": "cached", "failed": "FAILED"}[
                    cell_status
                ]
                err = marker.get("error")
                suffix = f" ({err})" if err else ""
                progress(
                    f"[{next_index + 1}/{total}] {tag:6s} "
                    f"{campaign.cells[next_index].describe()}{suffix}"
                )
            next_index += 1
    finally:
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)

    report = CampaignReport(
        campaign=campaign,
        outcomes=outcomes,
        jobs=workers,
        cache_stats=queue.cache.stats,
        wall_seconds=time.perf_counter() - started,
        aggregate=aggregate,
    )
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    status.emit(
        "campaign_end",
        ok=counts.get("ok", 0),
        cached=counts.get("cached", 0),
        failed=counts.get("failed", 0),
        wall_seconds=report.wall_seconds,
    )
    return report
