"""Empirical flow-size distributions from production datacenters (§6.1).

The paper evaluates with the Hadoop/MapReduce workload [1] and the
web-search / data-mining workloads [16].  We encode each as an empirical
CDF over flow sizes and sample by inverting it with log-linear
interpolation (flow sizes span many orders of magnitude, so interpolating
in log-size space preserves the heavy tail between knots).

A ``scale`` factor shrinks absolute sizes while preserving the shape —
useful because simulating an 80 GB flow at 1 Gbps costs 640 simulated
seconds; the paper's *relative* results depend on the shape only.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.units import GIGABYTE, KILOBYTE, MEGABYTE

CdfPoint = Tuple[float, float]  # (size_bits, cumulative_probability)


class EmpiricalDistribution:
    """Inverse-CDF sampler over a piecewise log-linear empirical CDF."""

    def __init__(self, name: str, points: Sequence[CdfPoint], *, scale: float = 1.0) -> None:
        """Args:
            name: workload name for reports.
            points: ascending ``(size_bits, cdf)`` knots; the last cdf
                must be 1.0 and sizes must be positive and increasing.
            scale: multiplies every sampled size.
        """
        if len(points) < 1:
            raise WorkloadError("empirical CDF needs at least one point")
        sizes = [p[0] for p in points]
        probs = [p[1] for p in points]
        if any(s <= 0 for s in sizes):
            raise WorkloadError("flow sizes must be positive")
        if any(nxt <= cur for cur, nxt in zip(sizes, sizes[1:])):
            raise WorkloadError("flow sizes must be strictly increasing")
        if any(nxt < cur for cur, nxt in zip(probs, probs[1:])):
            raise WorkloadError("CDF must be non-decreasing")
        if not 0 < probs[0] <= 1 or abs(probs[-1] - 1.0) > 1e-9:
            raise WorkloadError("CDF must end at probability 1.0")
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale!r}")
        self.name = name
        self._sizes = list(sizes)
        self._probs = list(probs)
        self._scale = float(scale)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def quantile(self, u: float) -> float:
        """Size at cumulative probability ``u`` (0 <= u <= 1), in bits."""
        if not 0 <= u <= 1:
            raise WorkloadError(f"quantile argument must be in [0,1], got {u!r}")
        probs, sizes = self._probs, self._sizes
        if u <= probs[0]:
            return sizes[0] * self._scale
        for i in range(1, len(probs)):
            if u <= probs[i]:
                p0, p1 = probs[i - 1], probs[i]
                s0, s1 = sizes[i - 1], sizes[i]
                if p1 <= p0:
                    return s1 * self._scale
                frac = (u - p0) / (p1 - p0)
                log_size = math.log(s0) + frac * (math.log(s1) - math.log(s0))
                return math.exp(log_size) * self._scale
        return sizes[-1] * self._scale

    def sample(self, rng: random.Random) -> float:
        """Draw one flow size (bits)."""
        return self.quantile(rng.random())

    def mean(self, *, resolution: int = 20000) -> float:
        """Numerical mean of the distribution (midpoint quadrature on the
        inverse CDF); deterministic, used to convert target load into an
        arrival rate."""
        total = 0.0
        for i in range(resolution):
            total += self.quantile((i + 0.5) / resolution)
        return total / resolution

    def rescaled(self, scale: float) -> "EmpiricalDistribution":
        """A copy with the scale factor replaced."""
        return EmpiricalDistribution(
            self.name,
            list(zip(self._sizes, self._probs)),
            scale=scale,
        )

    def __repr__(self) -> str:
        return (
            f"EmpiricalDistribution({self.name!r}, knots={len(self._sizes)}, "
            f"scale={self._scale!r})"
        )


# ----------------------------------------------------------------------
# The paper's workloads
# ----------------------------------------------------------------------

#: Web-search workload [Alizadeh et al., DCTCP; used by pFabric]: a diverse
#: mix where >75% of bytes come from the 50% of flows in the 1-20 MB range.
WEB_SEARCH_CDF: List[CdfPoint] = [
    (6 * KILOBYTE, 0.15),
    (13 * KILOBYTE, 0.20),
    (19 * KILOBYTE, 0.30),
    (33 * KILOBYTE, 0.40),
    (53 * KILOBYTE, 0.53),
    (133 * KILOBYTE, 0.60),
    (667 * KILOBYTE, 0.70),
    (1.467 * MEGABYTE, 0.80),
    (3.333 * MEGABYTE, 0.90),
    (6.667 * MEGABYTE, 0.97),
    (20 * MEGABYTE, 1.00),
]

#: Data-mining workload [Greenberg et al., VL2; used by pFabric]: extremely
#: heavy tailed — most flows are tiny, most bytes live in >100 MB flows.
DATA_MINING_CDF: List[CdfPoint] = [
    (100 * 8.0, 0.50),
    (1 * KILOBYTE, 0.60),
    (10 * KILOBYTE, 0.70),
    (30 * KILOBYTE, 0.80),
    (1 * MEGABYTE, 0.90),
    (30 * MEGABYTE, 0.95),
    (100 * MEGABYTE, 0.98),
    (1 * GIGABYTE, 1.00),
]

#: Hadoop/MapReduce workload [Dean & Ghemawat; Facebook-like shuffle mix]:
#: matches the §6.1 statistics — ~50% of flows under 100 MB and ~4% of
#: flows larger than 80 GB.
HADOOP_CDF: List[CdfPoint] = [
    (1 * MEGABYTE, 0.10),
    (10 * MEGABYTE, 0.30),
    (100 * MEGABYTE, 0.50),
    (1 * GIGABYTE, 0.77),
    (10 * GIGABYTE, 0.90),
    (80 * GIGABYTE, 0.96),
    (200 * GIGABYTE, 1.00),
]


def make_distribution(name: str, *, scale: float = 1.0) -> EmpiricalDistribution:
    """Build one of the paper's workload distributions by name.

    Known names: ``"websearch"``, ``"datamining"``, ``"hadoop"``.
    """
    key = name.lower().replace("-", "").replace("_", "")
    if key in ("websearch", "search"):
        return EmpiricalDistribution("websearch", WEB_SEARCH_CDF, scale=scale)
    if key in ("datamining", "mining"):
        return EmpiricalDistribution("datamining", DATA_MINING_CDF, scale=scale)
    if key in ("hadoop", "mapreduce"):
        return EmpiricalDistribution("hadoop", HADOOP_CDF, scale=scale)
    raise WorkloadError(
        f"unknown workload {name!r}; known: websearch, datamining, hadoop"
    )
