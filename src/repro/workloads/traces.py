"""Traffic traces: generation and replay.

The paper replays the *same* traffic through every task/network scheduling
combination ("we first generate the traffic using ns2 and replay the same
traffic in the testbed").  We do the same: a :class:`Trace` is a
deterministic list of task arrivals — arrival time, input-data location,
flow size — generated once from a seed and then replayed against each
placement policy, so every policy faces byte-identical demand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.topology.base import NodeId
from repro.workloads.distributions import EmpiricalDistribution


@dataclass(frozen=True)
class TaskArrival:
    """One task arrival in a flow-level trace."""

    time: float
    data_node: NodeId
    size: float
    tag: str = ""


@dataclass(frozen=True)
class CoflowArrival:
    """One coflow arrival: a batch of transfers placed together.

    ``transfers`` are ``(data_node, size_bits)`` pairs; the placement layer
    chooses the destination(s).
    """

    time: float
    transfers: Tuple[Tuple[NodeId, float], ...]
    tag: str = ""

    @property
    def total_size(self) -> float:
        return sum(size for _node, size in self.transfers)


@dataclass(frozen=True)
class Trace:
    """A deterministic sequence of arrivals plus its generation metadata."""

    arrivals: Tuple
    seed: int
    description: str = ""

    def __len__(self) -> int:
        return len(self.arrivals)


def poisson_rate_for_load(
    load: float,
    num_hosts: int,
    edge_capacity: float,
    mean_size: float,
) -> float:
    """Arrival rate (tasks/sec) so the expected offered traffic equals
    ``load`` times the aggregate edge capacity.

    With uniformly random sources and destinations, each flow consumes its
    size once on an uplink and once on a downlink, and the fabric offers
    ``num_hosts * edge_capacity`` in each direction, so the calculation is
    per direction.
    """
    if not 0 < load:
        raise WorkloadError(f"load must be positive, got {load!r}")
    if mean_size <= 0:
        raise WorkloadError("mean flow size must be positive")
    return load * num_hosts * edge_capacity / mean_size


def generate_flow_trace(
    *,
    hosts: Sequence[NodeId],
    distribution: EmpiricalDistribution,
    load: float,
    edge_capacity: float,
    num_arrivals: int,
    seed: int,
    tag_prefix: str = "flow",
) -> Trace:
    """Generate a Poisson flow-arrival trace at the target ``load``.

    Data locations are uniform over ``hosts``; sizes are i.i.d. from
    ``distribution``; inter-arrivals are exponential with the rate implied
    by :func:`poisson_rate_for_load`.
    """
    if num_arrivals < 1:
        raise WorkloadError("need at least one arrival")
    rng = random.Random(seed)
    rate = poisson_rate_for_load(
        load, len(hosts), edge_capacity, distribution.mean()
    )
    now = 0.0
    arrivals: List[TaskArrival] = []
    for index in range(num_arrivals):
        now += rng.expovariate(rate)
        arrivals.append(
            TaskArrival(
                time=now,
                data_node=hosts[rng.randrange(len(hosts))],
                size=distribution.sample(rng),
                tag=f"{tag_prefix}{index}",
            )
        )
    return Trace(
        arrivals=tuple(arrivals),
        seed=seed,
        description=(
            f"{distribution.name} flows, load={load}, n={num_arrivals}"
        ),
    )


def generate_coflow_trace(
    *,
    hosts: Sequence[NodeId],
    distribution: EmpiricalDistribution,
    load: float,
    edge_capacity: float,
    num_arrivals: int,
    seed: int,
    min_width: int = 2,
    max_width: int = 6,
    tag_prefix: str = "coflow",
) -> Trace:
    """Generate a Poisson coflow-arrival trace.

    Each coflow has a uniform random width (number of constituent flows)
    in ``[min_width, max_width]``; each constituent flow draws its own
    size from ``distribution`` and its own uniform source.  The arrival
    rate is derated by the mean width so the byte load still matches
    ``load``.
    """
    if not 1 <= min_width <= max_width:
        raise WorkloadError("need 1 <= min_width <= max_width")
    if max_width > len(hosts):
        raise WorkloadError("coflow width exceeds host count")
    rng = random.Random(seed)
    mean_width = (min_width + max_width) / 2.0
    rate = poisson_rate_for_load(
        load, len(hosts), edge_capacity, distribution.mean()
    ) / mean_width
    now = 0.0
    arrivals: List[CoflowArrival] = []
    for index in range(num_arrivals):
        now += rng.expovariate(rate)
        width = rng.randint(min_width, max_width)
        sources = rng.sample(list(hosts), width)
        transfers = tuple(
            (node, distribution.sample(rng)) for node in sources
        )
        arrivals.append(
            CoflowArrival(
                time=now,
                transfers=transfers,
                tag=f"{tag_prefix}{index}",
            )
        )
    return Trace(
        arrivals=tuple(arrivals),
        seed=seed,
        description=(
            f"{distribution.name} coflows, load={load}, n={num_arrivals}, "
            f"width=[{min_width},{max_width}]"
        ),
    )
