"""Flow-size uncertainty models (§7 "Flow Size Information").

NEAT needs flow sizes to predict completion times, but exact sizes may be
unavailable; the paper suggests using approximate sizes from task
execution history and argues (via §6.3) that NEAT tolerates
mis-prediction.  These estimators let experiments feed the *placement*
layer a noisy size while the network transfers the true one, so the
robustness claim can be measured directly.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import WorkloadError


class SizeEstimator(ABC):
    """Maps a true flow size to the estimate the scheduler sees."""

    name: str = "abstract"

    @abstractmethod
    def estimate(self, true_size: float) -> float:
        """Return the (positive) size estimate for one flow."""


class ExactSizes(SizeEstimator):
    """Oracle: the scheduler knows exact sizes (the paper's default)."""

    name = "exact"

    def estimate(self, true_size: float) -> float:
        return true_size


class LogNormalNoise(SizeEstimator):
    """Multiplicative log-normal error, the classic history-based model.

    ``sigma`` is the standard deviation of ``ln(estimate/true)``; e.g.
    sigma = 0.5 means ~68% of estimates fall within a factor of e^0.5
    (≈1.65x) of the truth.  Median-unbiased (the noise has zero log-mean).
    """

    name = "lognormal"

    def __init__(self, sigma: float, rng: random.Random) -> None:
        if sigma < 0:
            raise WorkloadError(f"sigma must be >= 0, got {sigma!r}")
        self._sigma = sigma
        self._rng = rng

    def estimate(self, true_size: float) -> float:
        if self._sigma == 0:
            return true_size
        return true_size * math.exp(self._rng.gauss(0.0, self._sigma))


class QuantizedHistory(SizeEstimator):
    """History-bucket estimator: sizes are only known up to a power-of-k
    bucket (recurrent jobs are classified, not measured).

    Each flow's estimate is the geometric midpoint of its bucket, so the
    worst-case multiplicative error is sqrt(k).
    """

    name = "quantized"

    def __init__(self, base: float = 4.0) -> None:
        if base <= 1.0:
            raise WorkloadError(f"bucket base must be > 1, got {base!r}")
        self._base = base

    def estimate(self, true_size: float) -> float:
        if true_size <= 0:
            raise WorkloadError("true size must be positive")
        exponent = math.floor(math.log(true_size, self._base))
        low = self._base ** exponent
        return low * math.sqrt(self._base)
