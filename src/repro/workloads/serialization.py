"""Trace serialization: save a generated trace, replay it anywhere.

The paper generates traffic once (in ns2) and replays the identical trace
on the testbed; persisting traces as JSON gives this repository the same
workflow — e.g. generate on one machine, archive alongside results, replay
against a modified policy later.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import WorkloadError
from repro.workloads.traces import CoflowArrival, TaskArrival, Trace

FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Convert a trace (flow or coflow) into a JSON-safe dict."""
    arrivals = []
    for arrival in trace.arrivals:
        if isinstance(arrival, TaskArrival):
            arrivals.append(
                {
                    "kind": "flow",
                    "time": arrival.time,
                    "data_node": arrival.data_node,
                    "size": arrival.size,
                    "tag": arrival.tag,
                }
            )
        elif isinstance(arrival, CoflowArrival):
            arrivals.append(
                {
                    "kind": "coflow",
                    "time": arrival.time,
                    "transfers": [
                        [node, size] for node, size in arrival.transfers
                    ],
                    "tag": arrival.tag,
                }
            )
        else:
            raise WorkloadError(
                f"cannot serialise arrival of type {type(arrival).__name__}"
            )
    return {
        "version": FORMAT_VERSION,
        "seed": trace.seed,
        "description": trace.description,
        "arrivals": arrivals,
    }


def trace_from_dict(payload: Dict[str, Any]) -> Trace:
    """Inverse of :func:`trace_to_dict` (validates the payload)."""
    if payload.get("version") != FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported trace format version {payload.get('version')!r}"
        )
    arrivals = []
    for entry in payload.get("arrivals", []):
        kind = entry.get("kind")
        if kind == "flow":
            arrivals.append(
                TaskArrival(
                    time=float(entry["time"]),
                    data_node=entry["data_node"],
                    size=float(entry["size"]),
                    tag=entry.get("tag", ""),
                )
            )
        elif kind == "coflow":
            arrivals.append(
                CoflowArrival(
                    time=float(entry["time"]),
                    transfers=tuple(
                        (node, float(size)) for node, size in entry["transfers"]
                    ),
                    tag=entry.get("tag", ""),
                )
            )
        else:
            raise WorkloadError(f"unknown arrival kind {kind!r}")
    return Trace(
        arrivals=tuple(arrivals),
        seed=int(payload.get("seed", 0)),
        description=payload.get("description", ""),
    )


def dump_trace(trace: Trace, path: str) -> None:
    """Write a trace to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_to_dict(trace), handle)


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`dump_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        return trace_from_dict(json.load(handle))
