"""Workloads: empirical size distributions, Poisson traces, replay inputs."""

from repro.workloads.distributions import (
    DATA_MINING_CDF,
    HADOOP_CDF,
    WEB_SEARCH_CDF,
    EmpiricalDistribution,
    make_distribution,
)
from repro.workloads.noise import (
    ExactSizes,
    LogNormalNoise,
    QuantizedHistory,
    SizeEstimator,
)
from repro.workloads.traces import (
    CoflowArrival,
    TaskArrival,
    Trace,
    generate_coflow_trace,
    generate_flow_trace,
    poisson_rate_for_load,
)

__all__ = [
    "EmpiricalDistribution",
    "SizeEstimator",
    "ExactSizes",
    "LogNormalNoise",
    "QuantizedHistory",
    "make_distribution",
    "WEB_SEARCH_CDF",
    "DATA_MINING_CDF",
    "HADOOP_CDF",
    "TaskArrival",
    "CoflowArrival",
    "Trace",
    "generate_flow_trace",
    "generate_coflow_trace",
    "poisson_rate_for_load",
]
