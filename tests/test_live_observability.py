"""End-to-end live observability: the serve loop with SLOs, the flight
recorder, rollups, ``repro top``, and ``repro slo check``.

The contracts, in order of importance:

1. Differential determinism — arming the whole live layer (SLO engine,
   recorder, rollup export, stall watchdog) changes no deterministic
   output: report JSON and decision log stay byte-identical.
2. An induced fault (rack outage dropping tasks) fires the burn-rate
   alert, lands in the status stream, and dumps a post-mortem bundle
   whose (scenario, seed, faults) replays the session exactly and whose
   events ``repro explain`` can decompose.
3. A wedged serving loop (batching that never flushes) trips the stall
   watchdog: a stall status record and a stall bundle.
4. ``repro top --once`` and ``repro slo check`` give CI-friendly exit
   codes off the artifacts a session leaves behind.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.campaign import read_status, resolve_status_path
from repro.service import ServiceScenario

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


BREACH_SLOS = {
    "slos": [
        {
            "name": "drop-rate",
            "kind": "ratio",
            "metric": "faults.tasks_dropped",
            "total": "service.tasks_offered",
            "budget": 0.01,
            "fast_window": 0.5,
            "slow_window": 1.0,
        },
        {
            "name": "queue-depth",
            "kind": "gauge",
            "metric": "service.queue_depth",
            "bound": 1000.0,
            "fast_window": 0.5,
            "slow_window": 1.0,
        },
    ]
}

#: Half the tiny topology's hosts go dark at t=1.0: every arrival whose
#: candidates all landed on a dead rack is dropped, so the drop-rate SLO
#: must breach its 1% budget.
OUTAGE = {
    "name": "rack-outage",
    "seed": 7,
    "events": [
        {"kind": "host_down", "time": 1.0, "host": f"h00{i}"}
        for i in range(4)
    ],
}


def scenario_dict(**overrides):
    spec = dict(
        name="tiny",
        pods=1,
        racks_per_pod=2,
        hosts_per_rack=4,
        duration=4.0,
        seed=11,
        arrivals={"kind": "poisson", "load": 0.5},
    )
    spec.update(overrides)
    return ServiceScenario(**spec).to_dict()


def write_json(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


@pytest.fixture()
def breach_run(tmp_path, capsys):
    """One served session with an induced outage and the full live
    layer armed; yields the artifact paths."""
    scenario = write_json(tmp_path / "scenario.json", scenario_dict())
    faults = write_json(tmp_path / "faults.json", OUTAGE)
    slos = write_json(tmp_path / "slo.json", BREACH_SLOS)
    art = {
        "scenario": scenario,
        "faults": faults,
        "slos": slos,
        "status": tmp_path / "status",
        "recorder": tmp_path / "recorder",
        "rollups": tmp_path / "rollups.json",
        "decisions": tmp_path / "decisions.jsonl",
        "report": tmp_path / "report.json",
    }
    assert main([
        "serve", scenario,
        "--faults", faults,
        "--slo", slos,
        "--recorder", str(art["recorder"]),
        "--rollups-out", str(art["rollups"]),
        "--status", str(art["status"]),
        "--status-interval", "0.25",
        "--decisions-out", str(art["decisions"]),
        "--report-out", str(art["report"]),
    ]) == 0
    art["stderr"] = capsys.readouterr().err
    return art


class TestDifferentialDeterminism:
    def test_live_layer_changes_no_records(self, tmp_path, capsys):
        scenario = write_json(tmp_path / "scenario.json", scenario_dict())
        faults = write_json(tmp_path / "faults.json", OUTAGE)
        outs = []
        for tag, extra in (
            ("plain", []),
            ("live", [
                "--slo", "default",
                "--recorder", str(tmp_path / "recorder"),
                "--rollups-out", str(tmp_path / "rollups.json"),
                "--stall-after", "10",
                "--status", str(tmp_path / "status"),
            ]),
        ):
            report = tmp_path / f"report-{tag}.json"
            decisions = tmp_path / f"decisions-{tag}.jsonl"
            assert main([
                "serve", scenario, "--faults", faults,
                "--report-out", str(report),
                "--decisions-out", str(decisions),
            ] + extra) == 0
            outs.append((report.read_bytes(), decisions.read_bytes()))
        capsys.readouterr()
        assert outs[0] == outs[1]
        assert json.loads(outs[0][0])["decisions"] > 0


class TestBreachEndToEnd:
    def test_alert_fires_into_status_stream(self, breach_run):
        records = read_status(resolve_status_path(str(breach_run["status"])))
        alerts = [r for r in records if r.get("record") == "slo_alert"]
        assert any(
            a["slo"] == "drop-rate" and a["state"] == "firing"
            for a in alerts
        )
        fired = next(a for a in alerts if a["state"] == "firing")
        assert fired["burn_fast"] >= 1.0 and fired["burn_slow"] >= 1.0
        assert fired["t"] >= 1.0  # not before the outage
        # ... and the heartbeat records carry the SLO summary for `top`.
        assert any(
            r.get("record") == "cell" and r.get("slo") is not None
            for r in records
        )
        assert "slo firing: drop-rate" in breach_run["stderr"]

    def test_bundle_written_and_replayable(self, breach_run, tmp_path,
                                           capsys):
        recorder = breach_run["recorder"]
        bundles = sorted(p for p in recorder.iterdir() if p.is_dir())
        assert bundles, "no post-mortem bundle written"
        bundle = bundles[0]
        assert "slo-breach-drop-rate" in bundle.name
        names = sorted(p.name for p in bundle.iterdir())
        assert names == [
            "bundle.json", "events.jsonl", "faults.json",
            "metrics.json", "scenario.json",
        ]
        manifest = json.loads((bundle / "bundle.json").read_text())
        assert manifest["offending"]["slo"] == "drop-rate"
        assert manifest["context"]["seed"] == 11
        assert "--faults" in manifest["replay"]
        metrics = json.loads((bundle / "metrics.json").read_text())
        assert metrics["counters"]["faults.tasks_dropped"] > 0

        # The bundle replays the exact session: same decisions, byte for
        # byte, from only what the bundle contains.
        replay = tmp_path / "replay.jsonl"
        assert main([
            "serve", str(bundle / "scenario.json"),
            "--seed", str(manifest["context"]["seed"]),
            "--faults", str(bundle / "faults.json"),
            "--decisions-out", str(replay),
        ]) == 0
        capsys.readouterr()
        assert replay.read_bytes() == breach_run["decisions"].read_bytes()

    def test_explain_consumes_bundle_events(self, breach_run, capsys):
        bundle = sorted(breach_run["recorder"].iterdir())[0]
        assert main(["explain", str(bundle / "events.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "blame" in out or "fct" in out.lower()

    def test_slo_check_flags_breach(self, breach_run, capsys):
        assert main([
            "slo", "check", breach_run["slos"], str(breach_run["rollups"]),
            "--json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["breached"] is True
        by_name = {r["slo"]: r for r in payload["slos"]}
        assert by_name["drop-rate"]["firing"] is True
        assert by_name["queue-depth"]["firing"] is False

    def test_top_once_renders_frame(self, breach_run, capsys):
        assert main(["top", str(breach_run["status"]), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "(settled)" in out
        assert "drop-rate" in out
        assert "slo_alert" in out


class TestHealthyRun:
    def test_slo_check_passes_and_no_bundles(self, tmp_path, capsys):
        scenario = write_json(tmp_path / "scenario.json", scenario_dict())
        rollups = tmp_path / "rollups.json"
        recorder = tmp_path / "recorder"
        assert main([
            "serve", scenario,
            "--slo", "default",
            "--recorder", str(recorder),
            "--rollups-out", str(rollups),
            "--status-interval", "0.25",
        ]) == 0
        capsys.readouterr()
        assert not recorder.exists() or not any(recorder.iterdir())
        assert main(["slo", "check", "default", str(rollups)]) == 0
        capsys.readouterr()

    def test_slo_check_rejects_bad_inputs(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main(["slo", "check", "default", str(missing)]) == 2
        capsys.readouterr()


class TestStallWatchdog:
    def test_wedged_batcher_trips_stall(self, tmp_path, capsys):
        # Batches flush at 1000 requests or after 50 simulated seconds —
        # neither happens inside a 2 s session, so arrivals queue and no
        # decision ever lands: the watchdog must flag it and dump.
        scenario = write_json(
            tmp_path / "scenario.json",
            scenario_dict(
                name="wedged", duration=2.0,
                batch_max=1000, batch_wait=50.0,
            ),
        )
        status = tmp_path / "status"
        recorder = tmp_path / "recorder"
        assert main([
            "serve", scenario,
            "--recorder", str(recorder),
            "--stall-after", "0.5",
            "--status", str(status),
            "--status-interval", "0.25",
        ]) == 0
        capsys.readouterr()
        records = read_status(resolve_status_path(str(status)))
        stalls = [r for r in records if r.get("record") == "stall"]
        assert stalls
        assert stalls[0]["stalled_for"] >= 0.5
        assert stalls[0]["queue_depth"] > 0
        bundles = [p.name for p in sorted(recorder.iterdir())]
        assert any("stall" in name for name in bundles)
