"""Tests for the windowed-rollup layer (`repro.telemetry.timeseries`).

The quantile sketch underpins every live-observability feature (registry
histograms, Prometheus buckets, SLO burn rates, campaign merges), so its
algebra is pinned hard here:

* **merge laws** — merging is associative and commutative with the
  empty sketch as identity, bit-for-bit on the serialized form (the
  campaign supervisor folds per-worker sketches in arbitrary order);
* **accuracy** — hypothesis-generated samples keep every estimated
  quantile within the alpha relative-error bound of the exact
  nearest-rank quantile;
* **fixed memory** — bucket collapsing caps the map size while
  preserving tail accuracy;
* **rollup store** — counters roll to windowed rates, gauges to
  last/peak, histograms to mergeable delta sketches, and per-worker
  stores merge bin-aligned.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.timeseries import (
    DEFAULT_ALPHA,
    QuantileSketch,
    TimeseriesStore,
    merge_rollups,
    merge_sketches,
)

SETTINGS = dict(max_examples=80, deadline=None, derandomize=True)

values_strategy = st.lists(
    st.floats(
        min_value=1e-6,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=200,
)


def sketch_of(values, **kwargs):
    sketch = QuantileSketch(**kwargs)
    for value in values:
        sketch.add(value)
    return sketch


def exact_quantile(values, q):
    """Nearest-rank (higher) quantile — the sketch's convention."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestSketchBasics:
    def test_empty(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.mean() == 0.0
        assert sketch.bad_fraction(1.0) == 0.0
        assert len(sketch) == 0

    def test_single_value_exact(self):
        sketch = sketch_of([3.25])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert sketch.quantile(q) == 3.25
        assert sketch.mean() == 3.25
        assert sketch.min == 3.25 and sketch.max == 3.25

    def test_two_values_tail_biased(self):
        sketch = sketch_of([1.0, 3.0])
        assert sketch.quantile(0.99) == 3.0
        assert sketch.quantile(0.5) == pytest.approx(1.0, rel=0.02)

    def test_exact_stats_ride_along(self):
        values = [0.5, 1.5, 2.5, 10.0]
        sketch = sketch_of(values)
        assert sketch.count == 4
        assert sketch.total == pytest.approx(sum(values))
        assert sketch.min == 0.5 and sketch.max == 10.0

    def test_negative_and_zero_values(self):
        sketch = sketch_of([-2.0, 0.0, 2.0])
        assert sketch.count == 3
        assert sketch.quantile(0.0) == -2.0
        assert sketch.quantile(1.0) == 2.0
        assert sketch.count_le(0.0) == 2

    def test_weighted_add(self):
        sketch = QuantileSketch()
        sketch.add(1.0, count=99)
        sketch.add(100.0, count=1)
        assert sketch.count == 100
        assert sketch.quantile(0.5) == pytest.approx(1.0, rel=0.02)
        assert sketch.quantile(1.0) == 100.0

    def test_bad_fraction(self):
        sketch = sketch_of([0.001] * 90 + [1.0] * 10)
        assert sketch.bad_fraction(0.01) == pytest.approx(0.10, abs=1e-9)
        assert sketch.bad_fraction(2.0) == 0.0
        assert sketch.bad_fraction(0.0001) == 1.0

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)

    def test_ctor_validates(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(max_buckets=1)


class TestSketchMergeLaws:
    """Merging must form a commutative monoid on serialized sketches."""

    def canon(self, sketch):
        return sketch.to_dict()

    def test_empty_identity(self):
        values = [0.1, 2.0, 35.0]
        base = sketch_of(values)
        left = merge_sketches([QuantileSketch(), sketch_of(values)])
        right = merge_sketches([sketch_of(values), QuantileSketch()])
        assert self.canon(left) == self.canon(base)
        assert self.canon(right) == self.canon(base)

    def test_commutative(self):
        a = sketch_of([1.0, 2.0, 3.0])
        b = sketch_of([0.01, 50.0])
        assert self.canon(merge_sketches([a, b])) == self.canon(
            merge_sketches([b, a])
        )

    def test_associative(self):
        a = sketch_of([1.0, 2.0])
        b = sketch_of([4.0] * 10)
        c = sketch_of([0.25, 8.0, 16.0])
        ab_c = merge_sketches([merge_sketches([a, b]), c])
        a_bc = merge_sketches([a, merge_sketches([b, c])])
        assert self.canon(ab_c) == self.canon(a_bc)

    def test_merge_equals_union(self):
        left, right = [0.5, 1.0, 2.0], [3.0, 4.0, 100.0]
        merged = merge_sketches([sketch_of(left), sketch_of(right)])
        union = sketch_of(left + right)
        assert self.canon(merged) == self.canon(union)

    def test_merge_rejects_mismatched_alpha(self):
        a = QuantileSketch(alpha=0.01)
        b = QuantileSketch(alpha=0.05)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_sketches_empty_iterable(self):
        out = merge_sketches([])
        assert out.count == 0

    @given(
        values_strategy,
        values_strategy,
    )
    @settings(**SETTINGS)
    def test_merge_union_property(self, left, right):
        merged = merge_sketches([sketch_of(left), sketch_of(right)])
        union = sketch_of(left + right)
        a, b = merged.to_dict(), union.to_dict()
        # Float addition isn't associative, so ``sum`` may differ in the
        # last ulp between groupings; the bucket algebra is exact.
        assert a.pop("sum") == pytest.approx(b.pop("sum"), rel=1e-12)
        assert a == b


class TestSketchAccuracy:
    @given(values_strategy, st.sampled_from([0.5, 0.9, 0.95, 0.99]))
    @settings(**SETTINGS)
    def test_quantile_within_alpha(self, values, q):
        """Every estimate is within alpha relative error of the exact
        nearest-rank quantile (the DDSketch guarantee)."""
        sketch = sketch_of(values)
        exact = exact_quantile(values, q)
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) <= DEFAULT_ALPHA * exact + 1e-12

    @given(values_strategy)
    @settings(**SETTINGS)
    def test_extremes_exact(self, values):
        sketch = sketch_of(values)
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)

    @given(values_strategy)
    @settings(**SETTINGS)
    def test_serialization_round_trip(self, values):
        sketch = sketch_of(values)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.95) == sketch.quantile(0.95)


class TestSketchBounds:
    def test_collapsing_caps_buckets(self):
        sketch = QuantileSketch(max_buckets=16)
        for i in range(1, 500):
            sketch.add(float(i))
        assert len(sketch) <= 16
        assert sketch.count == 499

    def test_collapse_preserves_tail_accuracy(self):
        sketch = QuantileSketch(max_buckets=16)
        values = [float(i) for i in range(1, 500)]
        for value in values:
            sketch.add(value)
        exact = exact_quantile(values, 0.99)
        # Collapsing folds the *low* end; the p99 stays within alpha.
        assert abs(sketch.quantile(0.99) - exact) <= DEFAULT_ALPHA * exact

    def test_cumulative_buckets_monotone(self):
        sketch = sketch_of([0.1, 0.5, 1.0, 5.0, 5.0, 50.0])
        pairs = sketch.cumulative_buckets()
        bounds = [bound for bound, _ in pairs]
        counts = [count for _, count in pairs]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == sketch.count

    def test_delta_of_grown_sketch(self):
        earlier = sketch_of([1.0, 2.0])
        later = earlier.copy()
        later.add(10.0)
        later.add(20.0)
        delta = later.delta(earlier)
        assert delta.count == 2
        assert delta.total == pytest.approx(30.0)
        assert delta.quantile(1.0) == pytest.approx(20.0, rel=0.02)
        assert delta.quantile(0.0) == pytest.approx(10.0, rel=0.02)


class TestTimeseriesStore:
    def _registry(self):
        from repro.telemetry import MetricsRegistry

        return MetricsRegistry()

    def test_counter_windowed_rate(self):
        store = TimeseriesStore(bin_width=1.0, bins=60)
        reg = self._registry()
        ctr = reg.counter("events")
        for t in range(10):
            ctr.inc(5)
            store.sample(float(t), reg)
        assert store.counter_delta("events", window=5.0, now=9.0) == 25
        assert store.rate("events", window=5.0, now=9.0) == pytest.approx(5.0)

    def test_gauge_last_and_peak(self):
        store = TimeseriesStore(bin_width=1.0, bins=60)
        reg = self._registry()
        gauge = reg.gauge("depth")
        for t, value in enumerate([1.0, 9.0, 2.0]):
            gauge.set(value)
            store.sample(float(t), reg)
        assert store.gauge_last("depth", now=2.0) == 2.0
        assert store.gauge_max("depth", window=3.0, now=2.0) == 9.0
        assert store.gauge_last("missing", now=2.0) is None
        assert store.gauge_max("missing", window=3.0, now=2.0) is None

    def test_histogram_delta_sketches(self):
        store = TimeseriesStore(bin_width=1.0, bins=60)
        reg = self._registry()
        hist = reg.histogram("lat")
        hist.observe(0.001)
        store.sample(0.0, reg)
        hist.observe(5.0)
        hist.observe(6.0)
        store.sample(1.0, reg)
        # Window covering only the second bin sees only the new values
        # (a partially-covered start bin is excluded).
        recent = store.window_sketch("lat", window=0.5, now=1.0)
        assert recent.count == 2
        assert recent.quantile(0.0) >= 4.0
        full = store.window_sketch("lat", window=10.0, now=1.0)
        assert full.count == 3

    def test_quantile_and_bad_fraction_none_when_empty(self):
        store = TimeseriesStore()
        assert store.quantile("x", 0.99, window=5.0, now=10.0) is None
        assert store.bad_fraction("x", 1.0, window=5.0, now=10.0) is None

    def test_ring_eviction_bounds_memory(self):
        store = TimeseriesStore(bin_width=1.0, bins=5)
        reg = self._registry()
        ctr = reg.counter("c")
        for t in range(50):
            ctr.inc()
            store.sample(float(t), reg)
        bins = store.to_dict()["counters"]["c"]
        assert len(bins) <= 5
        # Only the most recent window survives.
        assert store.counter_delta("c", window=5.0, now=49.0) <= 5

    def test_sampling_is_readonly_on_registry(self):
        store = TimeseriesStore()
        reg = self._registry()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(1.5)
        before = reg.as_dict()
        store.sample(1.0, reg)
        store.sample(2.0, reg)
        assert reg.as_dict() == before

    def test_store_round_trip(self):
        store = TimeseriesStore(bin_width=0.5, bins=20)
        reg = self._registry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(3.5)
        reg.histogram("h").observe(0.25)
        store.sample(1.0, reg)
        clone = TimeseriesStore.from_dict(store.to_dict())
        assert clone.to_dict() == store.to_dict()
        assert clone.counter_delta("c", window=5.0, now=1.0) == 7

    def test_validates_params(self):
        with pytest.raises(ValueError):
            TimeseriesStore(bin_width=0.0)
        with pytest.raises(ValueError):
            TimeseriesStore(bins=0)
        store = TimeseriesStore()
        store.record_counter(0.5, "c", 1.0)
        with pytest.raises(ValueError):
            store.counter_delta("c", window=0.0, now=1.0)


class TestMergeRollups:
    def _store_with(self, offset):
        from repro.telemetry import MetricsRegistry

        store = TimeseriesStore(bin_width=1.0, bins=60)
        reg = MetricsRegistry()
        ctr = reg.counter("c")
        gauge = reg.gauge("g")
        hist = reg.histogram("h")
        for t in range(3):
            ctr.inc(2)
            gauge.set(float(offset + t))
            hist.observe(float(offset + t + 1))
            store.sample(float(t), reg)
        return store

    def test_bin_aligned_merge(self):
        merged = merge_rollups([self._store_with(0), self._store_with(10)])
        # Counters add per-bin.
        assert merged.counter_delta("c", window=10.0, now=2.0) == 12
        # Gauges take the cross-worker max.
        assert merged.gauge_last("g", now=2.0) == 12.0
        # Sketches merge.
        assert merged.window_sketch("h", window=10.0, now=2.0).count == 6

    def test_merge_empty(self):
        out = merge_rollups([])
        assert out.samples == 0

    def test_merge_rejects_mismatched_bin_width(self):
        with pytest.raises(ValueError):
            merge_rollups(
                [TimeseriesStore(bin_width=1.0), TimeseriesStore(bin_width=2.0)]
            )
