"""Tests for the experiment harness: Figure 1 exactness, runner mechanics,
and small-scale shape checks for the macro figures.

The full-scale figure reproductions live in benchmarks/; here we use small
configurations that finish in seconds and assert the *direction* of each
paper claim.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.comparative import figure3
from repro.experiments.config import (
    TABLE1_PARAMETERS,
    MacroConfig,
    full_scale_config,
)
from repro.experiments.config import testbed_config as make_testbed_config
from repro.experiments.flow_macro import run_flow_macro
from repro.experiments.micro import figure8, figure9, figure10
from repro.experiments.motivating import (
    EXPECTED_FIGURE1,
    figure1_table,
    render_figure1,
)
from repro.experiments.runner import (
    compare_policies,
    replay_coflow_trace,
    replay_flow_trace,
)
from repro.experiments.coflow_macro import figure7
from repro.experiments.testbed import figure11
from repro.metrics.stats import average_gap
from repro.workloads.distributions import make_distribution
from repro.workloads.traces import generate_coflow_trace, generate_flow_trace

SMALL = MacroConfig(
    pods=1, racks_per_pod=2, hosts_per_rack=8,
    workload="websearch", load=0.7, num_arrivals=400, seed=11,
)


class TestFigure1:
    def test_all_cells_exact(self):
        for row in figure1_table():
            expected = EXPECTED_FIGURE1[(row.network_policy, row.placement)]
            assert row.completion_time == pytest.approx(expected[0], abs=1e-6)
            assert row.total_increase == pytest.approx(expected[1], abs=1e-6)

    def test_render_includes_all_policies(self):
        text = render_figure1()
        for token in ("FCFS", "FAIR", "SRPT", "node1", "node3"):
            assert token in text


class TestMacroConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MacroConfig(load=0.0)
        with pytest.raises(ConfigError):
            MacroConfig(num_arrivals=0)

    def test_num_hosts(self):
        assert MacroConfig(pods=2, racks_per_pod=3, hosts_per_rack=4).num_hosts == 24

    def test_full_scale_is_paper_size(self):
        assert full_scale_config().num_hosts == 160

    def test_testbed_is_ten_hosts(self):
        assert make_testbed_config().num_hosts == 10

    def test_scaled_down(self):
        smaller = full_scale_config().scaled_down()
        assert smaller.num_hosts < 160

    def test_effective_scale_defaults(self):
        assert MacroConfig(workload="hadoop").effective_scale() == 1e-3
        assert MacroConfig(workload="websearch").effective_scale() == 1.0
        assert MacroConfig(workload="hadoop", scale=0.5).effective_scale() == 0.5

    def test_table1_documents_all_transports(self):
        assert set(TABLE1_PARAMETERS) == {"DCTCP", "L2DCT", "PASE"}
        for params in TABLE1_PARAMETERS.values():
            assert "fluid-model role" in params

    def test_coflow_trace_builder(self):
        cfg = MacroConfig(coflows=True, num_arrivals=5)
        trace = cfg.build_trace()
        assert len(trace) == 5


class TestRunnerMechanics:
    def topo_and_trace(self, num=50):
        topo = SMALL.build_topology()
        trace = generate_flow_trace(
            hosts=topo.hosts,
            distribution=make_distribution("websearch"),
            load=0.5, edge_capacity=1e9, num_arrivals=num, seed=1,
        )
        return topo, trace

    def test_replay_completes_every_flow(self):
        topo, trace = self.topo_and_trace()
        run = replay_flow_trace(
            trace, topo, network_policy="fair", placement="minload"
        )
        assert len(run.records) == len(trace)
        assert run.control_messages == 0  # baselines use no daemons

    def test_neat_counts_messages_and_predictions(self):
        topo, trace = self.topo_and_trace()
        run = replay_flow_trace(
            trace, topo, network_policy="fair", placement="neat"
        )
        assert run.control_messages > 0
        assert len(run.predictions) == len(trace)

    def test_paired_replay_is_deterministic(self):
        topo, trace = self.topo_and_trace()
        a = replay_flow_trace(
            trace, topo, network_policy="fair", placement="neat", seed=2
        )
        b = replay_flow_trace(
            trace, topo, network_policy="fair", placement="neat", seed=2
        )
        assert [r.fct for r in a.records] == [r.fct for r in b.records]

    def test_max_candidates_limits_queries(self):
        topo, trace = self.topo_and_trace()
        limited = replay_flow_trace(
            trace, topo, network_policy="fair", placement="neat",
            max_candidates=3,
        )
        full = replay_flow_trace(
            trace, topo, network_policy="fair", placement="neat",
        )
        assert limited.control_messages < full.control_messages

    def test_flow_trace_type_checked(self):
        topo = SMALL.build_topology()
        coflow_trace = generate_coflow_trace(
            hosts=topo.hosts,
            distribution=make_distribution("websearch"),
            load=0.5, edge_capacity=1e9, num_arrivals=5, seed=1,
        )
        with pytest.raises(ConfigError):
            replay_flow_trace(
                coflow_trace, topo, network_policy="fair", placement="minload"
            )

    def test_coflow_replay_completes(self):
        topo = SMALL.build_topology()
        trace = generate_coflow_trace(
            hosts=topo.hosts,
            distribution=make_distribution("websearch"),
            load=0.5, edge_capacity=1e9, num_arrivals=30, seed=1,
        )
        run = replay_coflow_trace(
            trace, topo, network_policy="varys", placement="neat"
        )
        assert len(run.records) == 30


class TestFigureShapesSmall:
    """Direction-of-effect checks for every macro claim (small scale)."""

    def test_neat_beats_baselines_under_fair(self):
        outcome = run_flow_macro(network_policy="fair", config=SMALL)
        gaps = outcome.average_gaps()
        assert gaps["neat"] < gaps["minload"]
        assert gaps["neat"] < gaps["mindist"]

    def test_neat_beats_baselines_under_las(self):
        outcome = run_flow_macro(network_policy="las", config=SMALL)
        gaps = outcome.average_gaps()
        assert gaps["neat"] < gaps["minload"]
        assert gaps["neat"] < gaps["mindist"]

    def test_srpt_leaves_less_room(self):
        """The paper: SRPT is near-optimal, so every placement's gap is
        smaller under SRPT than under Fair."""
        fair = run_flow_macro(network_policy="fair", config=SMALL)
        srpt = run_flow_macro(network_policy="srpt", config=SMALL)
        assert average_gap(srpt.results["neat"].records) <= average_gap(
            fair.results["neat"].records
        )
        assert srpt.improvement_over("minload") <= fair.improvement_over(
            "minload"
        ) * 1.5  # SRPT improvement is not dramatically larger

    def test_macro_outcome_table_renders(self):
        outcome = run_flow_macro(network_policy="fair", config=SMALL)
        text = outcome.table()
        assert "neat" in text and "minload" in text

    def test_figure8_predictor_invariance(self):
        cfg = MacroConfig(
            pods=1, racks_per_pod=2, hosts_per_rack=8,
            workload="hadoop", num_arrivals=300, seed=11,
        )
        comparison = figure8(cfg)
        # Proposition 4.1: the two predictors place nearly identically.
        assert comparison.relative_difference() < 0.35

    def test_figure9_minfct_never_beats_neat(self):
        # Under Fair the preferred-hosts benefit is robust even at small
        # scale; the SRPT variant needs datacenter scale (see the bench).
        cfg = MacroConfig(
            pods=1, racks_per_pod=2, hosts_per_rack=8,
            workload="hadoop", num_arrivals=300, seed=11,
        )
        outcome = figure9(cfg, network_policy="fair")
        gaps = outcome.average_gaps()
        assert gaps["neat"] <= gaps["minfct"] * 1.05
        assert gaps["neat"] < gaps["mindist"]

    def test_figure10_error_grows_with_size(self):
        cfg = MacroConfig(
            pods=1, racks_per_pod=2, hosts_per_rack=8,
            workload="hadoop", num_arrivals=400, seed=11,
        )
        short, long = figure10(cfg)
        assert short.count > 0 and long.count > 0
        assert short.mean_abs_error <= long.mean_abs_error * 1.25

    def test_figure3_runs_both_policies(self):
        cfg = MacroConfig(
            pods=1, racks_per_pod=2, hosts_per_rack=8,
            workload="datamining", num_arrivals=300, seed=11,
            oversubscription=4.0,
        )
        outcome = figure3("srpt", cfg)
        assert outcome.overall_ratio() > 0
        assert outcome.table()

    def test_figure7_coflow_placement(self):
        cfg = MacroConfig(
            pods=2, racks_per_pod=2, hosts_per_rack=8,
            workload="hadoop", coflows=True, num_arrivals=120, seed=11,
        )
        outcome = figure7("varys", cfg)
        ccts = outcome.average_ccts()
        assert set(ccts) == {"neat", "minload", "mindist"}
        # At this small scale NEAT ties minLoad within noise and clearly
        # beats minDist; the full-shape claim is checked in the bench.
        assert ccts["neat"] <= ccts["minload"] * 1.10
        assert ccts["neat"] < ccts["mindist"]

    def test_figure11_testbed_runs(self):
        cfg = make_testbed_config(num_arrivals=250)
        outcome = figure11(cfg)
        for policy in ("fair", "las"):
            assert set(outcome.average_gaps(policy)) == {"neat", "minload"}
            # Small-scale gains, but NEAT should not lose badly.
            assert outcome.improvement_percent(policy) > -15.0
