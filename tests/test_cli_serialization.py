"""Tests for the CLI entry point and trace serialization."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main
from repro.errors import WorkloadError
from repro.workloads.distributions import make_distribution
from repro.workloads.serialization import (
    dump_trace,
    load_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.workloads.traces import (
    Trace,
    generate_coflow_trace,
    generate_flow_trace,
)

HOSTS = [f"h{i}" for i in range(6)]


def flow_trace(n=20, seed=5):
    return generate_flow_trace(
        hosts=HOSTS,
        distribution=make_distribution("websearch"),
        load=0.5, edge_capacity=1e9, num_arrivals=n, seed=seed,
    )


def coflow_trace(n=10, seed=5):
    return generate_coflow_trace(
        hosts=HOSTS,
        distribution=make_distribution("websearch"),
        load=0.5, edge_capacity=1e9, num_arrivals=n, seed=seed,
        min_width=2, max_width=3,
    )


class TestTraceSerialization:
    def test_flow_roundtrip(self):
        trace = flow_trace()
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.arrivals == trace.arrivals
        assert restored.seed == trace.seed
        assert restored.description == trace.description

    def test_coflow_roundtrip(self):
        trace = coflow_trace()
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.arrivals == trace.arrivals

    def test_file_roundtrip(self, tmp_path):
        trace = flow_trace()
        path = tmp_path / "trace.json"
        dump_trace(trace, str(path))
        assert load_trace(str(path)).arrivals == trace.arrivals

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "trace.json"
        dump_trace(flow_trace(n=3), str(path))
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert len(payload["arrivals"]) == 3
        assert payload["arrivals"][0]["kind"] == "flow"

    def test_bad_version_rejected(self):
        with pytest.raises(WorkloadError):
            trace_from_dict({"version": 99, "arrivals": []})

    def test_bad_kind_rejected(self):
        with pytest.raises(WorkloadError):
            trace_from_dict(
                {"version": 1, "arrivals": [{"kind": "mystery"}]}
            )

    def test_unserialisable_arrival_rejected(self):
        bogus = Trace(arrivals=(object(),), seed=0)
        with pytest.raises(WorkloadError):
            trace_to_dict(bogus)


class TestCLI:
    def test_parser_accepts_known_figures(self):
        parser = build_parser()
        args = parser.parse_args(["fig5", "--arrivals", "100"])
        assert args.figure == "fig5"
        assert args.arrivals == 100

    def test_parser_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "fig11" in out

    def test_fig1_exact(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "25.0" in out and "SRPT" in out

    def test_fig9_small(self, capsys):
        assert main([
            "fig9", "--arrivals", "80", "--hosts-per-rack", "5",
            "--pods", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "neat" in out and "minfct" in out

    def test_fig8_small(self, capsys):
        assert main([
            "fig8", "--arrivals", "80", "--hosts-per-rack", "5",
            "--pods", "1",
        ]) == 0
        assert "relative difference" in capsys.readouterr().out

    def test_fig10_small(self, capsys):
        assert main([
            "fig10", "--arrivals", "80", "--hosts-per-rack", "5",
            "--pods", "1",
        ]) == 0
        assert "mean |err|" in capsys.readouterr().out

    def test_fig3_small(self, capsys):
        assert main([
            "fig3", "--arrivals", "120", "--hosts-per-rack", "5",
            "--pods", "1",
        ]) == 0
        assert "minDist/minLoad" in capsys.readouterr().out

    def test_fig7_small(self, capsys):
        assert main([
            "fig7", "--arrivals", "40", "--hosts-per-rack", "5",
            "--pods", "1",
        ]) == 0
        assert "mean CCTs" in capsys.readouterr().out

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--arrivals", "120"]) == 0
        assert "improvement over minLoad" in capsys.readouterr().out

    def test_all_summary_small(self, capsys, tmp_path):
        argv = [
            "all", "--arrivals", "60", "--hosts-per-rack", "4",
            "--pods", "1", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fig1  motivating example: EXACT match" in out
        for token in ("fig3", "fig5", "fig6a", "fig6b", "fig7", "fig8",
                      "fig9", "fig10", "fig11"):
            assert token in out
        assert "misses=10" in out
        # An immediate re-run is served entirely from the cache.
        assert main(argv) == 0
        rerun = capsys.readouterr().out
        assert "hits=10" in rerun and "misses=0" in rerun
        assert "fig11" in rerun

    def test_fig6_network_override(self, capsys):
        assert main([
            "fig6", "--network", "srpt", "--arrivals", "80",
            "--hosts-per-rack", "5", "--pods", "1",
        ]) == 0
        assert "NEAT improvement" in capsys.readouterr().out
