"""Telemetry layer tests: registry, trace, decisions, determinism, CLI.

The determinism contract is the load-bearing guarantee: two replays from
the same seed must produce byte-identical JSONL traces (with wall-clock
stamping off; modulo ``wall*`` fields when it is on).
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.experiments.config import MacroConfig
from repro.experiments.runner import replay_coflow_trace, replay_flow_trace
from repro.telemetry import (
    NULL_TELEMETRY,
    DecisionLog,
    JsonlTraceSink,
    MetricsRegistry,
    NullMetricsRegistry,
    Telemetry,
    create_telemetry,
    render_report,
)


def small_config(**overrides) -> MacroConfig:
    defaults = dict(
        pods=2, racks_per_pod=2, hosts_per_rack=4,
        num_arrivals=60, workload="hadoop", seed=11,
    )
    defaults.update(overrides)
    return MacroConfig(**defaults)


def replay_small(telemetry=None, *, placement="neat", config=None):
    cfg = config if config is not None else small_config()
    topo = cfg.build_topology()
    trace = cfg.build_trace(topo)
    return replay_flow_trace(
        trace, topo, network_policy="fair", placement=placement,
        seed=cfg.seed, max_candidates=6, telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(3.0)
        reg.gauge("g").set_max(1.0)  # lower: ignored
        for v in (1.0, 2.0, 3.0):
            reg.histogram("h").observe(v)
        snap = reg.as_dict()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 3.0
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["mean"] == pytest.approx(2.0)

    def test_timer_accumulates(self):
        reg = MetricsRegistry()
        t = reg.timer("work")
        with t.time():
            pass
        with t.time():
            pass
        assert t.calls == 2
        assert t.wall_seconds >= 0.0

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x").inc(5)
        path = tmp_path / "m.json"
        reg.write_json(str(path), extra={"note": {"k": 1}})
        payload = json.loads(path.read_text())
        assert payload["counters"]["x"] == 5
        assert payload["note"] == {"k": 1}

    def test_null_registry_is_shared_noop(self):
        reg = NullMetricsRegistry()
        assert not reg.enabled
        c = reg.counter("a")
        c.inc(100)
        assert c.value == 0.0
        assert reg.counter("b") is c  # shared singleton
        with reg.timer("t").time():
            pass
        assert reg.timer("t").calls == 0


# ----------------------------------------------------------------------
# Trace sink
# ----------------------------------------------------------------------
class TestTraceSink:
    def test_jsonl_lines(self):
        buf = io.StringIO()
        sink = JsonlTraceSink(buf)
        sink.emit("ev", 1.5, {"a": 1, "inf": float("inf")})
        sink.close()
        rec = json.loads(buf.getvalue())
        assert rec == {"event": "ev", "t": 1.5, "a": 1, "inf": "inf"}
        assert sink.events_written == 1

    def test_wall_clock_fields_are_prefixed(self):
        buf = io.StringIO()
        sink = JsonlTraceSink(buf, wall_clock=True)
        sink.emit("ev", 0.0)
        sink.close()
        rec = json.loads(buf.getvalue())
        wall_keys = [k for k in rec if k.startswith("wall")]
        assert wall_keys == ["wall"]
        assert rec["wall"] == pytest.approx(time.time(), abs=60)

    def test_null_trace_discards(self):
        assert not NULL_TELEMETRY.trace.active
        NULL_TELEMETRY.trace.emit("ev", 0.0, {"x": 1})  # no error, no output

    def test_wall_clock_mode_keeps_all_records_readable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path), wall_clock=True)
        sink.emit("first", 0.0, {"x": 1})
        sink.emit("second", 1.0)
        sink.close()
        from repro.telemetry import read_trace

        events = read_trace(str(path))
        assert [e["event"] for e in events] == ["first", "second"]
        assert all("wall" in e for e in events)

    def test_repeated_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.emit("ev", 0.0)
        sink.close()
        sink.close()  # second close must not raise or truncate
        sink.emit("after", 1.0)  # emits after close are dropped silently
        sink.close()
        assert sink.events_written == 1
        from repro.telemetry import read_trace

        assert len(read_trace(str(path))) == 1

    def test_read_trace_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.emit("kept", 0.0, {"n": 1})
        sink.emit("kept", 1.0, {"n": 2})
        sink.close()
        # Simulate a crash mid-write: chop the final record in half.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 12])
        from repro.telemetry import read_trace

        events = read_trace(str(path))
        assert [e["n"] for e in events] == [1]

    def test_read_trace_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"event": "ok", "t": 0.0}\n'
            '{"event": "broken", "t": \n'
            '{"event": "ok", "t": 1.0}\n'
        )
        from repro.telemetry import read_trace

        with pytest.raises(ValueError, match="malformed trace record"):
            read_trace(str(path))


# ----------------------------------------------------------------------
# Decision log
# ----------------------------------------------------------------------
class TestDecisionLog:
    def record_one(self, log, tag="t1", score_kind="predicted_time"):
        return log.record(
            time=0.0, kind="flow", tag=tag, size=100.0, data_node="h0",
            candidates=("h1", "h2"), preferred=("h1",), used_fallback=False,
            scores=(("h1", 2.0), ("h2", 3.0)), score_kind=score_kind,
            chosen="h1", predicted_time=2.0,
        )

    def test_join_computes_relative_error(self):
        log = DecisionLog()
        rec = self.record_one(log)
        log.note_completed("t1", 3.0, 3.0)
        assert rec.realized_time == 3.0
        assert rec.error == pytest.approx(0.5)
        summary = log.error_summary()
        assert summary["decisions"] == 1
        assert summary["joined"] == 1
        assert summary["mean_abs_error"] == pytest.approx(0.5)

    def test_non_time_scores_never_join(self):
        log = DecisionLog()
        rec = self.record_one(log, score_kind="queued_bits")
        log.note_completed("t1", 3.0, 3.0)
        assert rec.realized_time is None

    def test_set_context_clears_pending(self):
        log = DecisionLog()
        rec = self.record_one(log)
        log.set_context(placement="minload", network_policy="fair")
        log.note_completed("t1", 3.0, 3.0)  # stale tag from previous run
        assert rec.realized_time is None


# ----------------------------------------------------------------------
# End-to-end: replay with telemetry armed
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_flow_replay_records_everything(self):
        buf = io.StringIO()
        sink = JsonlTraceSink(buf)
        tele = Telemetry(
            registry=MetricsRegistry(),
            trace=sink,
            decisions=DecisionLog(trace=sink),
        )
        run = replay_small(tele)
        tele.close()
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        kinds = {e["event"] for e in events}
        assert {"run_start", "flow_arrival", "flow_completion",
                "rate_recompute", "bus_message", "placement_decision",
                "decision_outcome", "engine_run", "run_end"} <= kinds

        decisions = [e for e in events if e["event"] == "placement_decision"]
        assert len(decisions) == 60
        sample = decisions[0]
        assert sample["candidates"] and sample["chosen"] in sample["candidates"]
        assert set(sample["scores"]) == set(sample["preferred"])
        assert sample["score_kind"] == "predicted_time"

        outcomes = [e for e in events if e["event"] == "decision_outcome"]
        assert len(outcomes) == 60  # every flow completes and joins
        assert all(o["realized"] is not None for o in outcomes)
        assert any(o["error"] is not None for o in outcomes)

        counters = tele.registry.as_dict()["counters"]
        assert counters["fabric.flows_completed"] == 60
        assert counters["bus.messages_sent"] == run.control_messages
        assert tele.registry.as_dict()["timers"]["placement"]["calls"] == 60
        summary = tele.decisions.error_summary()
        assert summary["joined"] == summary["decisions"] == 60

    def test_coflow_replay_records_coflow_events(self):
        buf = io.StringIO()
        sink = JsonlTraceSink(buf)
        tele = Telemetry(
            registry=MetricsRegistry(),
            trace=sink,
            decisions=DecisionLog(trace=sink),
        )
        cfg = small_config(coflows=True, num_arrivals=20)
        topo = cfg.build_topology()
        trace = cfg.build_trace(topo)
        replay_coflow_trace(
            trace, topo, network_policy="varys", placement="neat",
            seed=cfg.seed, max_candidates=6, telemetry=tele,
        )
        tele.close()
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        arrivals = [e for e in events if e["event"] == "coflow_arrival"]
        completions = [e for e in events if e["event"] == "coflow_completion"]
        assert len(arrivals) == 20
        assert len(completions) == 20
        assert all(c["cct"] >= 0 for c in completions)
        # every constituent decision of a coflow joins that coflow's CCT
        summary = tele.decisions.error_summary()
        assert summary["joined"] == summary["decisions"] > 0

    def test_baseline_decisions_are_recorded_too(self):
        tele = Telemetry(decisions=DecisionLog())
        replay_small(tele, placement="minload")
        recs = tele.decisions.records
        assert len(recs) == 60
        assert recs[0].score_kind == "queued_bits"
        assert recs[0].placement == "minload"

    def test_timeline_collection(self):
        tele = Telemetry(timeline_interval=0.02)
        replay_small(tele)
        assert len(tele.timelines) == 1
        label, samples = tele.timelines[0]
        assert label == "neat/fair"
        # sampler must survive the gap before the first arrival and keep
        # sampling until the fabric drains
        assert len(samples) >= 2
        assert any(s.active_flows > 0 for s in samples)

    def test_report_renders(self):
        tele = create_telemetry()
        replay_small(tele)
        text = render_report(tele)
        assert "telemetry report" in text
        assert "placement" in text and "allocator" in text
        assert "prediction error" in text


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def trace_once(self, *, wall_clock=False) -> str:
        buf = io.StringIO()
        sink = JsonlTraceSink(buf, wall_clock=wall_clock)
        tele = Telemetry(trace=sink, decisions=DecisionLog(trace=sink))
        replay_small(tele)
        tele.close()
        return buf.getvalue()

    def test_same_seed_traces_are_byte_identical(self):
        assert self.trace_once() == self.trace_once()

    def test_wall_clock_breaks_only_wall_fields(self):
        def strip_wall(text: str) -> list:
            out = []
            for line in text.splitlines():
                rec = json.loads(line)
                out.append(
                    {k: v for k, v in rec.items() if not k.startswith("wall")}
                )
            return out

        a = self.trace_once(wall_clock=True)
        b = self.trace_once(wall_clock=True)
        assert strip_wall(a) == strip_wall(b)
        assert all("wall" in json.loads(line) for line in a.splitlines())


# ----------------------------------------------------------------------
# Disabled overhead
# ----------------------------------------------------------------------
class TestDisabledOverhead:
    def test_noop_primitives_are_cheap(self):
        """The disabled path is attribute checks and shared no-ops."""
        tele = NULL_TELEMETRY
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            if tele.trace.active:  # pragma: no cover - disabled
                tele.trace.emit("x", 0.0)
        elapsed = time.perf_counter() - start
        # generous bound: ~50k guard checks must stay well under 50ms
        assert elapsed < 0.5

    def test_disabled_run_not_slower_than_enabled(self):
        """telemetry=None must cost no more than a fully armed run.

        The true pre-telemetry baseline is gone, so the executable check
        is: the disabled path (guards only) stays within 5% of the
        enabled path (guards plus actual recording) on a small macro
        run — if disabled ever exceeded enabled, the guards themselves
        would be broken.  min-of-N timing to suppress scheduler noise.
        """
        def timed(telemetry_factory, repeats=3) -> float:
            best = float("inf")
            for _ in range(repeats):
                tele = telemetry_factory()
                start = time.perf_counter()
                replay_small(tele)
                best = min(best, time.perf_counter() - start)
            return best

        disabled = timed(lambda: None)
        enabled = timed(
            lambda: Telemetry(
                registry=MetricsRegistry(), decisions=DecisionLog()
            )
        )
        assert disabled <= enabled * 1.05 + 0.02


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCLI:
    def test_fig5_trace_and_metrics(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        timeline_path = tmp_path / "tl.json"
        rc = main([
            "fig5", "--arrivals", "30", "--hosts-per-rack", "4",
            "--trace", str(trace_path),
            "--metrics-out", str(metrics_path),
            "--timeline", str(timeline_path),
            "--timeline-interval", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "wall-time profile" in out
        assert "link utilisation" in out

        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        decisions = [e for e in events if e["event"] == "placement_decision"]
        outcomes = [e for e in events if e["event"] == "decision_outcome"]
        assert decisions and outcomes
        assert all(
            {"candidates", "scores", "chosen", "predicted"} <= set(d)
            for d in decisions
        )
        assert all({"realized", "error"} <= set(o) for o in outcomes)

        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["fabric.flows_completed"] > 0
        assert metrics["placement_decisions"]["joined"] > 0

        timeline = json.loads(timeline_path.read_text())
        labels = [t["label"] for t in timeline["timelines"]]
        assert labels == ["neat/fair", "minload/fair", "mindist/fair"]
        assert all(t["samples"] for t in timeline["timelines"])

    def test_bad_observability_flags_error_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["fig5", "--trace", str(tmp_path / "no" / "dir" / "t.jsonl")])
        assert exc.value.code == 2
        assert "cannot open --trace" in capsys.readouterr().err

        with pytest.raises(SystemExit) as exc:
            main(["fig5", "--timeline", str(tmp_path / "tl.json"),
                  "--timeline-interval", "0"])
        assert exc.value.code == 2
        assert "must be positive" in capsys.readouterr().err
