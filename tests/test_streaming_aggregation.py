"""Property tests for streaming aggregation: merge laws, byte-identity,
bounded memory.

The streaming byte-identity guarantee rests on three algebraic facts,
each locked here with hypothesis:

* :class:`~repro.telemetry.registry.SnapshotAccumulator` folding
  snapshots one at a time equals :func:`merge_snapshots` on the batch —
  and over *integer-valued* metrics (exact float arithmetic within
  2**53) the merge is order-independent, so any worker completion order
  produces the same merged registry.
* :class:`~repro.telemetry.timeseries.QuantileSketch` merging is
  commutative and associative exactly (bucket counts add).
* :class:`~repro.campaign.streaming.CampaignAggregate` fed completions
  in *any permutation* (via its reorder buffer) emits the same canonical
  payload bytes as a strict index-order fold — for arbitrary float
  payloads, because the buffer restores index order before any float
  touches an accumulator.

Plus the ISSUE's scale guarantee: a >=1k-cell streaming campaign folds
under a peak-memory bound that does not grow with the cell count.
"""

from __future__ import annotations

import tracemalloc

from hypothesis import given, settings, strategies as st

from repro.campaign import Campaign, RunSpec, canonical_json, run_campaign
from repro.campaign.streaming import CampaignAggregate, render_aggregate
from repro.errors import ConfigError
from repro.experiments.config import MacroConfig
from repro.telemetry import MetricsRegistry, QuantileSketch, merge_snapshots
from repro.telemetry.registry import SnapshotAccumulator

import pytest

SETTINGS = dict(max_examples=60, deadline=None, derandomize=True)

TINY = MacroConfig(
    pods=1, racks_per_pod=2, hosts_per_rack=4,
    workload="websearch", num_arrivals=50,
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_METRIC_NAMES = ["flows.done", "bus.rtt", "engine.events", "queue.depth"]

# Integer-valued metrics: float addition over ints (well inside 2**53)
# is exact and commutative, so merged registries must be *identical*
# under any fold order, not merely close.
_int_values = st.integers(min_value=0, max_value=10_000)


@st.composite
def _snapshots(draw):
    """One MetricsRegistry.as_dict() built from integer observations."""
    registry = MetricsRegistry()
    for name in draw(
        st.lists(st.sampled_from(_METRIC_NAMES), max_size=4, unique=True)
    ):
        kind = hash(name) % 4  # fixed kind per name: homogeneous inputs
        if kind == 0:
            registry.counter(name).inc(draw(_int_values))
        elif kind == 1:
            registry.gauge(name).set(draw(_int_values))
        elif kind == 2:
            for value in draw(
                st.lists(_int_values, min_size=1, max_size=8)
            ):
                registry.histogram(name).observe(value)
        else:
            timer = registry.timer(name)
            timer.calls += draw(st.integers(min_value=1, max_value=9))
            timer.wall_seconds += draw(_int_values)
    return registry.as_dict()


_snapshot_lists = st.lists(_snapshots(), min_size=1, max_size=6)


# ----------------------------------------------------------------------
# Merge laws: registry snapshots
# ----------------------------------------------------------------------
class TestSnapshotMergeLaws:
    @given(_snapshot_lists)
    @settings(**SETTINGS)
    def test_incremental_fold_equals_batch_merge(self, snapshots):
        accumulator = SnapshotAccumulator()
        for snapshot in snapshots:
            accumulator.add(snapshot)
        assert accumulator.as_dict() == merge_snapshots(snapshots)
        assert accumulator.snapshots_folded == len(snapshots)

    @given(_snapshot_lists, st.randoms(use_true_random=False))
    @settings(**SETTINGS)
    def test_integer_merge_is_order_independent(self, snapshots, rng):
        shuffled = list(snapshots)
        rng.shuffle(shuffled)
        assert canonical_json(merge_snapshots(shuffled)) == canonical_json(
            merge_snapshots(snapshots)
        )

    def test_heterogeneous_snapshots_are_rejected(self):
        as_counter = {"counters": {"m": 1.0}}
        as_gauge = {"gauges": {"m": 1.0}}
        accumulator = SnapshotAccumulator()
        accumulator.add(as_counter)
        with pytest.raises(ValueError, match="heterogeneous"):
            accumulator.add(as_gauge)

    @given(_snapshot_lists)
    @settings(**SETTINGS)
    def test_merged_histograms_keep_exact_stats_and_quantiles(
        self, snapshots
    ):
        merged = merge_snapshots(snapshots)
        for name, summary in merged["histograms"].items():
            inputs = [
                s["histograms"][name]
                for s in snapshots
                if s.get("histograms", {}).get(name, {}).get("count")
            ]
            assert summary["count"] == sum(i["count"] for i in inputs)
            assert summary["min"] == min(i["min"] for i in inputs)
            assert summary["max"] == max(i["max"] for i in inputs)
            # Every registry summary carries a sketch, so the merged one
            # must keep the quantiles.
            assert "p95" in summary and "sketch" in summary


# ----------------------------------------------------------------------
# Merge laws: quantile sketches
# ----------------------------------------------------------------------
class TestSketchMergeLaws:
    @given(
        st.lists(
            st.lists(_int_values, min_size=1, max_size=20),
            min_size=2,
            max_size=5,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(**SETTINGS)
    def test_sketch_merge_is_order_independent(self, batches, rng):
        def merged(order):
            out = QuantileSketch()
            for batch in order:
                part = QuantileSketch()
                for value in batch:
                    part.add(value)
                out.merge(part)
            return out.to_dict()

        shuffled = list(batches)
        rng.shuffle(shuffled)
        assert merged(shuffled) == merged(batches)

    @given(st.lists(_int_values, min_size=1, max_size=30))
    @settings(**SETTINGS)
    def test_merge_into_empty_is_an_exact_copy(self, values):
        one = QuantileSketch()
        for value in values:
            one.add(value)
        empty = QuantileSketch()
        empty.merge(one)
        assert empty.to_dict() == one.to_dict()


# ----------------------------------------------------------------------
# Streaming campaign aggregate: permutation-invariance, exactness
# ----------------------------------------------------------------------
_gaps = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def _cell_payloads(draw):
    """(status, payload) for one synthetic flow-macro cell."""
    status = draw(
        st.sampled_from(["ok", "ok", "ok", "cached", "failed"])
    )
    if status == "failed":
        return (status, None)
    payload = {
        "network_policy": draw(st.sampled_from(["fair", "sebf"])),
        "load": draw(st.sampled_from([0.5, 0.7, 0.9])),
        "per_placement": {
            name: {"average_gap": draw(_gaps)}
            for name in draw(
                st.lists(
                    st.sampled_from(["minload", "mindist", "neat"]),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        },
    }
    return (status, payload)


class TestCampaignAggregate:
    @given(
        st.lists(_cell_payloads(), min_size=1, max_size=12),
        st.randoms(use_true_random=False),
    )
    @settings(**SETTINGS)
    def test_any_arrival_order_matches_index_order_exactly(
        self, cells, rng
    ):
        # Strict index-order fold: the reference.
        reference = CampaignAggregate("prop", len(cells))
        for index, (status, payload) in enumerate(cells):
            reference.fold(index, status, payload)

        # Arbitrary completion order through the reorder buffer. Floats
        # are arbitrary here, so equality holds only because add()
        # defers every fold until the index prefix is contiguous.
        order = list(range(len(cells)))
        rng.shuffle(order)
        streamed = CampaignAggregate("prop", len(cells))
        for index in order:
            status, payload = cells[index]
            streamed.add(index, status, payload)

        assert streamed.complete and streamed.buffered == 0
        assert canonical_json(streamed.payload()) == canonical_json(
            reference.payload()
        )

    @given(st.lists(_cell_payloads(), min_size=1, max_size=8))
    @settings(**SETTINGS)
    def test_grid_means_are_exact_fold_order_sums(self, cells):
        aggregate = CampaignAggregate("prop", len(cells))
        expected = {}
        for index, (status, payload) in enumerate(cells):
            aggregate.fold(index, status, payload)
            if status == "failed":
                continue
            group = f"{payload['network_policy']}|{payload['load']!r}"
            for name, stats in payload["per_placement"].items():
                expected.setdefault((group, name), []).append(
                    stats["average_gap"]
                )
        grid = aggregate.payload()["grid"]
        for (group, name), gaps in expected.items():
            stat = grid[group][name]
            assert stat["count"] == len(gaps)
            total = 0.0
            for gap in gaps:  # same order, same float sum
                total += gap
            assert stat["mean"] == total / len(gaps)
            assert stat["min"] == min(gaps)
            assert stat["max"] == max(gaps)

    def test_duplicate_and_out_of_range_cells_are_rejected(self):
        aggregate = CampaignAggregate("dup", 3)
        aggregate.add(1, "ok", None)
        with pytest.raises(ConfigError, match="twice"):
            aggregate.add(1, "ok", None)
        aggregate.add(0, "ok", None)  # folds 0 then the buffered 1
        with pytest.raises(ConfigError, match="twice"):
            aggregate.add(0, "ok", None)
        with pytest.raises(ConfigError, match="outside campaign"):
            aggregate.add(3, "ok", None)
        with pytest.raises(ConfigError, match="index-ordered"):
            aggregate.fold(0, "ok", None)

    def test_render_aggregate_mentions_groups_and_failures(self):
        aggregate = CampaignAggregate("demo", 2)
        aggregate.fold(0, "ok", {
            "network_policy": "fair",
            "load": 0.5,
            "per_placement": {"minload": {"average_gap": 1.25}},
        })
        aggregate.fold(1, "failed", None)
        text = render_aggregate(aggregate)
        assert "1/2 cells completed" in text
        assert "minload" in text
        assert "FAILED cells: 1" in text


# ----------------------------------------------------------------------
# Scale: >=1k cells under a fixed memory bound
# ----------------------------------------------------------------------
def _micro_cell(spec: RunSpec) -> dict:
    seed = spec.config.seed
    return {
        "network_policy": spec.network_policy,
        "load": spec.config.load,
        "per_placement": {
            "minload": {"average_gap": 1.0 + (seed % 17) / 16.0},
            "mindist": {"average_gap": 1.5 + (seed % 13) / 12.0},
        },
    }


def _thousand_cell_campaign(cells: int) -> Campaign:
    specs = tuple(
        RunSpec(
            kind="flow_macro",
            config=MacroConfig(
                pods=1, racks_per_pod=2, hosts_per_rack=2,
                num_arrivals=1, seed=seed,
            ),
        )
        for seed in range(cells)
    )
    return Campaign(name=f"scale-{cells}", cells=specs)


class TestBoundedMemory:
    def test_streaming_thousand_cell_campaign_memory_is_flat(self):
        def peak_bytes(cells: int) -> tuple:
            campaign = _thousand_cell_campaign(cells)
            tracemalloc.start()
            try:
                report = run_campaign(
                    campaign, jobs=1, cell_fn=_micro_cell, streaming=True
                )
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return report, peak

        small_report, small_peak = peak_bytes(125)
        report, peak = peak_bytes(1000)

        payload = report.aggregate_payload()
        assert payload["cells"] == 1000
        assert payload["completed"] == 1000
        assert all(o.payload is None for o in report.outcomes)

        # Fixed-memory claim: 8x the cells must not cost 8x the peak.
        # The aggregate is O(groups); outcome bookkeeping is O(cells)
        # but tiny. Allow 3x slack for allocator noise.
        assert peak < max(3 * small_peak, small_peak + 2_000_000), (
            f"peak grew from {small_peak} to {peak} bytes"
        )
        # And an absolute ceiling: a thousand folded cells stay well
        # under the footprint of retaining a thousand payloads.
        assert peak < 32 * 1024 * 1024

    def test_streaming_report_payload_matches_batch(self):
        campaign = _thousand_cell_campaign(64)
        streaming = run_campaign(
            campaign, jobs=1, cell_fn=_micro_cell, streaming=True
        )
        batch = run_campaign(campaign, jobs=1, cell_fn=_micro_cell)
        assert canonical_json(
            streaming.aggregate_payload()
        ) == canonical_json(batch.aggregate_payload())
