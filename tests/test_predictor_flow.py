"""Tests for the FCT predictors (§4.1): equations (3)-(9), the invariance
proposition, and agreement with the simulated fabric."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, PredictionError
from repro.network.fabric import NetworkFabric
from repro.network.policies.registry import make_allocator
from repro.predictor.flow_fct import (
    FCFSPredictor,
    FairPredictor,
    LASPredictor,
    SRPTPredictor,
)
from repro.predictor.registry import (
    available_flow_predictors,
    make_flow_predictor,
)
from repro.predictor.state import LinkState, link_state_from_flows
from repro.sim.engine import Engine
from repro.topology.fabrics import single_switch

GBPS = 1e9

link_sizes = st.lists(st.floats(1e3, 1e10), min_size=0, max_size=12)
new_sizes = st.floats(1e3, 1e10)


def state(sizes, capacity=GBPS) -> LinkState:
    return LinkState("l", capacity, tuple(sizes))


class TestLinkState:
    def test_aggregates(self):
        s = state([2e9, 3e9])
        assert s.total_bits == pytest.approx(5e9)
        assert s.num_flows == 2
        assert s.min_flow_size == pytest.approx(2e9)

    def test_idle_min_is_inf(self):
        assert state([]).min_flow_size == float("inf")

    def test_rejects_bad_capacity(self):
        with pytest.raises(PredictionError):
            LinkState("l", 0.0, ())

    def test_rejects_nonpositive_flow(self):
        with pytest.raises(PredictionError):
            state([1e9, 0.0])

    def test_without_one(self):
        s = state([1e9, 2e9]).without_one(1e9)
        assert s.flow_sizes == (2e9,)

    def test_without_one_missing_raises(self):
        with pytest.raises(PredictionError):
            state([1e9]).without_one(5e9)

    def test_from_flows_drops_finished(self):
        s = link_state_from_flows("l", GBPS, [1e9, 0.0, -1.0, 2e9])
        assert s.flow_sizes == (1e9, 2e9)


class TestEquations:
    """The figure-1 scenario: two 10 Gb flows (node 1) / one 4 Gb (node 3)."""

    node1 = state([10e9, 10e9])
    node3 = state([4e9])
    new = 5e9

    def test_eq3_fcfs(self):
        assert FCFSPredictor().fct(self.new, self.node1) == pytest.approx(25.0)
        assert FCFSPredictor().fct(self.new, self.node3) == pytest.approx(9.0)

    def test_eq4_fair(self):
        assert FairPredictor().fct(self.new, self.node1) == pytest.approx(15.0)
        assert FairPredictor().fct(self.new, self.node3) == pytest.approx(9.0)

    def test_eq7_srpt(self):
        assert SRPTPredictor().fct(self.new, self.node1) == pytest.approx(5.0)
        assert SRPTPredictor().fct(self.new, self.node3) == pytest.approx(9.0)

    def test_eq5_fair_delta(self):
        pred = FairPredictor()
        assert pred.delta(self.new, 10e9, self.node1) == pytest.approx(5.0)
        assert pred.delta(self.new, 4e9, self.node3) == pytest.approx(4.0)

    def test_eq8_srpt_delta(self):
        pred = SRPTPredictor()
        assert pred.delta(self.new, 10e9, self.node1) == pytest.approx(5.0)
        assert pred.delta(self.new, 4e9, self.node3) == pytest.approx(0.0)

    def test_fcfs_delta_is_zero(self):
        assert FCFSPredictor().delta_sum(self.new, self.node1) == 0.0

    def test_las_is_fair(self):
        assert LASPredictor().fct(self.new, self.node1) == FairPredictor().fct(
            self.new, self.node1
        )

    def test_objective_totals_match_figure1(self):
        """FCT + sum-delta reproduces the 'increase in total completion
        time' column of Figure 1."""
        fair = FairPredictor()
        assert fair.link_objective(self.new, self.node1) == pytest.approx(25.0)
        assert fair.link_objective(self.new, self.node3) == pytest.approx(13.0)
        srpt = SRPTPredictor()
        assert srpt.link_objective(self.new, self.node1) == pytest.approx(15.0)
        assert srpt.link_objective(self.new, self.node3) == pytest.approx(9.0)
        fcfs = FCFSPredictor()
        assert fcfs.link_objective(self.new, self.node1) == pytest.approx(25.0)
        assert fcfs.link_objective(self.new, self.node3) == pytest.approx(9.0)

    def test_path_prediction_is_bottleneck(self):
        pred = FairPredictor()
        links = [self.node1, self.node3]
        assert pred.predict_path(self.new, links) == pytest.approx(15.0)

    def test_empty_path_is_free(self):
        assert FairPredictor().predict_path(1e9, []) == 0.0
        assert FairPredictor().objective(1e9, []) == 0.0


class TestIdentity9:
    """Equation (9): SRPT's per-link objective equals the Fair FCT."""

    @given(sizes=link_sizes, new=new_sizes)
    @settings(max_examples=200, deadline=None)
    def test_identity_holds_for_any_state(self, sizes, new):
        s = state(sizes)
        lhs = SRPTPredictor().link_objective(new, s)
        rhs = FairPredictor().fct(new, s)
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestProposition41:
    """With equal link capacities, Fair / LAS / SRPT objectives all rank
    candidate links the same way as the fair-sharing FCT."""

    @given(
        candidates=st.lists(link_sizes, min_size=2, max_size=5),
        new=new_sizes,
    )
    @settings(max_examples=100, deadline=None)
    def test_argmin_invariance(self, candidates, new):
        states = [
            LinkState(f"l{i}", GBPS, tuple(sizes))
            for i, sizes in enumerate(candidates)
        ]
        fair = FairPredictor()
        las = LASPredictor()
        srpt = SRPTPredictor()

        def argmin(scores):
            best = min(scores)
            return {i for i, v in enumerate(scores) if v <= best + 1e-9}

        baseline = argmin([fair.fct(new, s) for s in states])
        for pred in (fair, las, srpt):
            chosen = argmin([pred.link_objective(new, s) for s in states])
            # The objective's argmin set must intersect the fair-FCT one
            # (equal for SRPT by eq. (9); equal for Fair/LAS since the
            # objective is monotone in the same sum at equal capacity).
            assert chosen & baseline


class TestPredictorVsSimulation:
    """The predictor must agree exactly with the fluid simulator when no
    future arrivals occur (the predictor's stated operating assumption)."""

    @pytest.mark.parametrize(
        "policy,predictor",
        [("fair", "fair"), ("fcfs", "fcfs"), ("srpt", "srpt")],
    )
    @given(existing=st.lists(st.floats(1e8, 8e9), min_size=0, max_size=5),
           new=st.floats(1e8, 8e9))
    @settings(max_examples=30, deadline=None)
    def test_exact_agreement(self, policy, predictor, existing, new):
        engine = Engine()
        topo = single_switch(8)
        fabric = NetworkFabric(engine, topo, make_allocator(policy))
        # All existing flows converge on h007's downlink from distinct srcs.
        for i, size in enumerate(existing):
            fabric.submit(f"h{i:03d}", "h007", size)
        engine.run(until=1e-9)
        # Predict from the daemon's view of the downlink.
        link = topo.host_downlink("h007")
        link_state = link_state_from_flows(
            link.link_id,
            link.capacity,
            (f.remaining for f in fabric.flows_on_link(link.link_id)),
        )
        predicted = make_flow_predictor(predictor).fct(new, link_state)
        flow = fabric.submit("h006", "h007", new)
        engine.run()
        assert flow.fct() == pytest.approx(predicted, rel=1e-6)

    def test_las_agreement_for_fresh_flows(self):
        """LAS FCT matches the Fair prediction when existing flows have
        negligible attained service."""
        engine = Engine()
        topo = single_switch(6)
        fabric = NetworkFabric(engine, topo, make_allocator("las"))
        for i, size in enumerate([2e9, 6e9]):
            fabric.submit(f"h{i:03d}", "h005", size)
        engine.run(until=1e-6)
        link = topo.host_downlink("h005")
        link_state = link_state_from_flows(
            link.link_id,
            link.capacity,
            (f.remaining for f in fabric.flows_on_link(link.link_id)),
        )
        predicted = make_flow_predictor("las").fct(3e9, link_state)
        flow = fabric.submit("h004", "h005", 3e9)
        engine.run()
        assert flow.fct() == pytest.approx(predicted, rel=1e-3)


class TestRegistry:
    def test_names(self):
        for name in ("fair", "fcfs", "las", "srpt", "dctcp", "l2dct", "pase"):
            assert make_flow_predictor(name) is not None
        assert "fair" in available_flow_predictors()

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_flow_predictor("bogus")
