"""Differential harness for incremental (scoped) rate allocation.

The incremental engine's correctness rests on the decomposition claim:
every ``incremental_safe`` allocator couples flows only through shared
link capacities, so re-allocating the dirty sharing component and
splicing its rates into the cached global map is exactly the global
allocation.  These tests check that claim end-to-end:

* the scoped fabric and the full-recompute reference produce
  **byte-identical** FCT/CCT logs and JSONL traces over a
  seed x policy x workload matrix;
* ``shadow_verify`` (the full allocator replayed at every scoped
  recompute) stays silent over long runs, including a ``slow``-marked
  soak on the 160-host Clos;
* coflow allocators, whose MADD coupling violates the decomposition,
  are refused by ``incremental=True`` and default to full recomputes.
"""

from __future__ import annotations

import io
import itertools

import pytest

from repro.coflow.coflow import Coflow
from repro.coflow.policies.registry import make_coflow_allocator
from repro.errors import FlowError
from repro.experiments.runner import replay_flow_trace
from repro.network.fabric import NetworkFabric
from repro.network.policies.registry import make_allocator
from repro.sim.engine import Engine
from repro.telemetry import JsonlTraceSink, MetricsRegistry, Telemetry
from repro.topology.fabrics import single_switch, three_tier_clos
from repro.workloads import generate_flow_trace, make_distribution

POLICIES = ("fair", "fcfs", "las", "srpt")
WORKLOADS = ("websearch", "hadoop")
SEEDS = (11, 23)


def small_clos():
    return three_tier_clos(pods=2, racks_per_pod=2, hosts_per_rack=5)


def run_replay(topo, *, policy, workload, seed, incremental, placement="minload"):
    """One replay; returns (records, trace_bytes, recompute_counters)."""
    trace = generate_flow_trace(
        hosts=topo.hosts,
        distribution=make_distribution(workload),
        load=0.6,
        edge_capacity=1e9,
        num_arrivals=80,
        seed=seed,
    )
    buf = io.StringIO()
    telemetry = Telemetry(registry=MetricsRegistry(), trace=JsonlTraceSink(buf))
    run = replay_flow_trace(
        trace,
        topo,
        network_policy=policy,
        placement=placement,
        incremental=incremental,
        telemetry=telemetry,
    )
    telemetry.close()
    counters = telemetry.registry.as_dict()["counters"]
    recompute = {
        "full": counters.get("fabric.recompute.full", 0.0),
        "scoped": counters.get("fabric.recompute.scoped", 0.0),
    }
    return run.records, buf.getvalue(), recompute


# ----------------------------------------------------------------------
# The differential matrix: byte-identical logs and traces
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "policy,workload,seed",
    list(itertools.product(POLICIES, WORKLOADS, SEEDS)),
)
def test_incremental_matches_full_recompute(policy, workload, seed):
    topo = small_clos()
    scoped_records, scoped_trace, scoped_ctr = run_replay(
        topo, policy=policy, workload=workload, seed=seed, incremental=True
    )
    full_records, full_trace, full_ctr = run_replay(
        topo, policy=policy, workload=workload, seed=seed, incremental=False
    )
    # Same completions, same times, same order — byte for byte.
    assert scoped_records == full_records
    # The JSONL traces (arrivals, completions, rate_recompute payloads,
    # placement decisions) must also be identical: the execution mode is
    # run metadata, never trace content.
    assert scoped_trace == full_trace
    # The split counters prove each mode took its intended path.
    assert scoped_ctr["scoped"] > 0 and scoped_ctr["full"] == 0
    assert full_ctr["full"] > 0 and full_ctr["scoped"] == 0
    assert scoped_ctr["scoped"] == full_ctr["full"]


def test_incremental_matches_full_with_coflow_attached_flows():
    """CCTs under a flow-level policy: coflow membership is measurement
    only (CCT = last member completion), so scoping must preserve it."""

    def run(incremental):
        engine = Engine()
        fabric = NetworkFabric(
            engine,
            single_switch(8),
            make_allocator("srpt"),
            incremental=incremental,
        )
        hosts = list(fabric.topology.hosts)
        coflows = []
        for c_idx in range(4):
            coflow = Coflow(coflow_id=c_idx, arrival_time=c_idx * 0.4)
            coflows.append(coflow)
            for f_idx in range(3):
                src = hosts[(c_idx + f_idx) % 8]
                dst = hosts[(c_idx + f_idx + 3) % 8]
                size = 1e8 * (1 + c_idx) + 2e7 * f_idx
                engine.schedule_at(
                    c_idx * 0.4,
                    lambda s=src, d=dst, z=size, c=coflow: fabric.submit(
                        s, d, z, coflow=c
                    ),
                )
            engine.schedule_at(c_idx * 0.4, coflows[-1].seal)
        engine.run()
        return (
            fabric.records,
            [c.completion_time for c in coflows],
        )

    scoped_records, scoped_ccts = run(True)
    full_records, full_ccts = run(False)
    assert scoped_records == full_records
    assert scoped_ccts == full_ccts
    assert all(cct is not None for cct in scoped_ccts)


def test_cancellation_differential():
    """Mid-run cancellations dirty the component like completions do."""

    def run(incremental):
        engine = Engine()
        fabric = NetworkFabric(
            engine,
            single_switch(6),
            make_allocator("fair"),
            incremental=incremental,
        )
        hosts = list(fabric.topology.hosts)
        doomed = []
        for i in range(10):
            src, dst = hosts[i % 6], hosts[(i + 2) % 6]
            engine.schedule_at(
                0.05 * i,
                lambda s=src, d=dst, z=5e8 + 1e7 * i, keep=(i % 3 != 0): (
                    doomed.append(fabric.submit(s, d, z))
                    if not keep
                    else fabric.submit(s, d, z)
                ),
            )
        engine.schedule_at(
            0.6,
            lambda: [
                fabric.cancel_flow(f)
                for f in doomed
                if f.flow_id in {x.flow_id for x in fabric.active_flows()}
            ],
        )
        engine.run()
        return fabric.records

    assert run(True) == run(False)


# ----------------------------------------------------------------------
# Shadow verification
# ----------------------------------------------------------------------
def test_shadow_verify_quick():
    """Small-Clos shadow run: every scoped recompute is checked against
    the full allocator in-line and must agree."""
    topo = small_clos()
    for policy in POLICIES:
        trace = generate_flow_trace(
            hosts=topo.hosts,
            distribution=make_distribution("websearch"),
            load=0.7,
            edge_capacity=1e9,
            num_arrivals=60,
            seed=5,
        )
        run = replay_flow_trace(
            trace,
            topo,
            network_policy=policy,
            placement="minload",
            incremental=True,
            shadow_verify=True,
        )
        assert len(run.records) == len(trace)


@pytest.mark.slow
def test_shadow_verify_soak_clos():
    """Long shadow-verified run on the paper's 160-host Clos macro cell.

    Locality-aware placement keeps most sharing components rack-local,
    which is exactly the regime where scoped recomputes diverge first if
    the dirty-set expansion under-reaches.
    """
    topo = three_tier_clos()  # 160 hosts
    for placement, seed in (("mindist", 1), ("minload", 2)):
        trace = generate_flow_trace(
            hosts=topo.hosts,
            distribution=make_distribution("websearch"),
            load=0.7,
            edge_capacity=1e9,
            num_arrivals=600,
            seed=seed,
        )
        run = replay_flow_trace(
            trace,
            topo,
            network_policy="srpt",
            placement=placement,
            incremental=True,
            shadow_verify=True,
        )
        assert len(run.records) == len(trace)


# ----------------------------------------------------------------------
# Coflow allocators: excluded from scoping
# ----------------------------------------------------------------------
def test_coflow_allocator_refuses_incremental():
    engine = Engine()
    with pytest.raises(FlowError):
        NetworkFabric(
            engine,
            single_switch(4),
            make_coflow_allocator("scf"),
            incremental=True,
        )


def test_coflow_allocator_defaults_to_full_recompute():
    engine = Engine()
    fabric = NetworkFabric(engine, single_switch(4), make_coflow_allocator("scf"))
    assert fabric.incremental is False
    flow_fabric = NetworkFabric(engine, single_switch(4), make_allocator("fair"))
    assert flow_fabric.incremental is True


# ----------------------------------------------------------------------
# Trace payload of rate_recompute
# ----------------------------------------------------------------------
def test_rate_recompute_trace_reports_component_size():
    import json

    buf = io.StringIO()
    telemetry = Telemetry(trace=JsonlTraceSink(buf))
    engine = Engine(telemetry=telemetry)
    fabric = NetworkFabric(
        engine, single_switch(4), make_allocator("fair"), telemetry=telemetry
    )
    hosts = list(fabric.topology.hosts)
    fabric.submit(hosts[0], hosts[1], 1e9)
    fabric.submit(hosts[2], hosts[3], 1e9)  # disjoint component
    engine.run()
    telemetry.close()
    events = [json.loads(line) for line in buf.getvalue().splitlines()]
    recomputes = [e for e in events if e["event"] == "rate_recompute"]
    assert recomputes, "no rate_recompute events traced"
    for event in recomputes:
        assert {"active_flows", "component_flows", "component_links"} <= set(
            event
        )
        assert event["component_flows"] <= event["active_flows"]
    # The second arrival touches a disjoint pair of edge links, so its
    # recompute must be scoped below the full active set.
    assert any(
        e["component_flows"] < e["active_flows"] for e in recomputes
    )
