"""Tests for the timeline sampler, fat-tree builder, and repetitions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, TopologyError
from repro.experiments.config import MacroConfig
from repro.experiments.repetitions import (
    aggregate,
    repeat_flow_macro,
)
from repro.metrics.timeline import TimelineSampler
from repro.network.fabric import NetworkFabric
from repro.network.policies.registry import make_allocator
from repro.sim.engine import Engine
from repro.topology.fabrics import fat_tree
from repro.topology.routing import Router


def fabric_with_traffic():
    engine = Engine()
    topo = fat_tree(4)
    fabric = NetworkFabric(engine, topo, make_allocator("fair"))
    return engine, fabric


class TestFatTree:
    def test_k4_dimensions(self):
        topo = fat_tree(4)
        # k=4: 16 hosts, 8 edge + 8 agg + 4 core switches.
        assert len(topo.hosts) == 16
        kinds = {}
        for node in topo.nodes():
            kinds[node.kind] = kinds.get(node.kind, 0) + 1
        assert kinds == {"host": 16, "tor": 8, "agg": 8, "core": 4}

    def test_k6_host_count(self):
        assert len(fat_tree(6).hosts) == 54  # (6/2)^2 * 6

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree(5)
        with pytest.raises(TopologyError):
            fat_tree(0)

    def test_all_pairs_routable(self):
        topo = fat_tree(4)
        router = Router(topo)
        hosts = topo.hosts
        path = router.path(hosts[0], hosts[-1])
        assert path.hop_count == 6  # cross-pod via core

    def test_permutation_traffic_bounded_by_ecmp_collisions(self):
        """A cross-pod permutation runs at line rate up to static-ECMP
        collisions: two same-rack flows hashing onto one uplink halve each
        other (the fabric itself is non-blocking)."""
        engine, fabric = fabric_with_traffic()
        hosts = fabric.topology.hosts
        flows = [
            fabric.submit(hosts[i], hosts[(i + 8) % 16], 1e9)
            for i in range(8)
        ]
        engine.run()
        fcts = sorted(flow.fct() for flow in flows)
        assert fcts[0] == pytest.approx(1.0, rel=0.01)  # collision-free
        assert fcts[-1] <= 2.0 + 1e-6  # at worst a 2-way hash collision


class TestTimelineSampler:
    def test_samples_active_traffic(self):
        engine, fabric = fabric_with_traffic()
        hosts = fabric.topology.hosts
        up = fabric.topology.host_uplink(hosts[0]).link_id
        sampler = TimelineSampler(fabric, interval=0.25, watch_links=[up])
        fabric.submit(hosts[0], hosts[5], 2e9)  # 2 seconds of traffic
        engine.run()
        assert sampler.peak_active_flows() == 1
        # 9 busy samples + 1 idle tail sample -> mean 0.9.
        assert sampler.mean_utilization(up) >= 0.85
        times = [s.time for s in sampler.samples]
        assert times == sorted(times)
        assert len(times) >= 8

    def test_queued_bits_decrease(self):
        engine, fabric = fabric_with_traffic()
        hosts = fabric.topology.hosts
        sampler = TimelineSampler(fabric, interval=0.5)
        fabric.submit(hosts[0], hosts[5], 2e9)
        engine.run()
        queued = [s.total_queued_bits for s in sampler.samples if s.total_queued_bits]
        assert queued == sorted(queued, reverse=True)

    def test_stops_when_idle(self):
        engine, fabric = fabric_with_traffic()
        TimelineSampler(fabric, interval=0.1)
        engine.run()  # no traffic: sampler must not spin forever
        assert engine.pending_events == 0

    def test_stop_method(self):
        engine, fabric = fabric_with_traffic()
        hosts = fabric.topology.hosts
        sampler = TimelineSampler(fabric, interval=0.25)
        fabric.submit(hosts[0], hosts[5], 4e9)
        engine.run(until=1.0)
        sampler.stop()
        count = len(sampler.samples)
        engine.run()
        assert len(sampler.samples) <= count + 1

    def test_validation(self):
        engine, fabric = fabric_with_traffic()
        with pytest.raises(ConfigError):
            TimelineSampler(fabric, interval=0.0)
        sampler = TimelineSampler(fabric, interval=1.0)
        with pytest.raises(ConfigError):
            sampler.mean_utilization("ghost->link")


class TestRepetitions:
    def test_aggregate_stats(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.stdev == pytest.approx(1.0)
        assert agg.count == 3
        assert "±" in str(agg)

    def test_aggregate_single_value(self):
        agg = aggregate([5.0])
        assert agg.stdev == 0.0

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ConfigError):
            aggregate([])

    def test_repeat_flow_macro(self):
        cfg = MacroConfig(
            pods=1, racks_per_pod=2, hosts_per_rack=6,
            workload="websearch", num_arrivals=150,
        )
        repeated = repeat_flow_macro(
            network_policy="fair", config=cfg, seeds=[1, 2, 3],
        )
        gaps = repeated.gap_aggregates()
        assert set(gaps) == {"neat", "minload", "mindist"}
        assert all(agg.count == 3 for agg in gaps.values())
        # NEAT on average no worse than minLoad across seeds.
        improvement = repeated.improvement_aggregate("minload")
        assert improvement.mean >= 1.0
        assert repeated.neat_always_wins(tolerance=1.2)

    def test_repeat_requires_seeds(self):
        cfg = MacroConfig(pods=1, racks_per_pod=1, hosts_per_rack=4)
        with pytest.raises(ConfigError):
            repeat_flow_macro(network_policy="fair", config=cfg, seeds=[])
