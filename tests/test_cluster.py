"""Tests for the cluster model: resources, jobs, and the job scheduler."""

from __future__ import annotations

import pytest

from repro.cluster.jobs import (
    JobSpec,
    StageSpec,
    TaskSpec,
    dag_job,
    mapreduce_job,
)
from repro.cluster.node import Cluster, ClusterNode, Resources
from repro.cluster.scheduler import JobScheduler
from repro.coflow.policies.registry import make_coflow_allocator
from repro.coflow.tracking import CoflowTracker
from repro.errors import PlacementError, WorkloadError
from repro.network.fabric import NetworkFabric
from repro.placement.neat import build_neat
from repro.sim.engine import Engine
from repro.topology.fabrics import single_switch


class TestResources:
    def test_arithmetic(self):
        a = Resources(cpu=2, memory=4.0)
        b = Resources(cpu=1, memory=1.0)
        assert (a + b) == Resources(cpu=3, memory=5.0)
        assert (a - b) == Resources(cpu=1, memory=3.0)

    def test_fits_within(self):
        assert Resources(1, 1).fits_within(Resources(2, 2))
        assert not Resources(3, 1).fits_within(Resources(2, 2))


class TestClusterNode:
    def test_allocate_release(self):
        node = ClusterNode("h0", Resources(cpu=4, memory=8))
        node.allocate(Resources(cpu=2, memory=4))
        assert node.available == Resources(cpu=2, memory=4)
        node.release(Resources(cpu=2, memory=4))
        assert node.available == Resources(cpu=4, memory=8)

    def test_over_allocation_rejected(self):
        node = ClusterNode("h0", Resources(cpu=1, memory=1))
        with pytest.raises(PlacementError):
            node.allocate(Resources(cpu=2, memory=0))

    def test_over_release_rejected(self):
        node = ClusterNode("h0", Resources(cpu=1, memory=1))
        with pytest.raises(PlacementError):
            node.release(Resources(cpu=1, memory=0))


class TestCluster:
    def test_candidates_filter_by_capacity(self):
        topo = single_switch(3)
        cluster = Cluster(topo, default_capacity=Resources(cpu=2, memory=2))
        cluster.node("h000").allocate(Resources(cpu=2, memory=0))
        candidates = cluster.candidates(Resources(cpu=1, memory=1))
        assert set(candidates) == {"h001", "h002"}

    def test_unknown_node_raises(self):
        cluster = Cluster(single_switch(2))
        with pytest.raises(PlacementError):
            cluster.node("ghost")


class TestJobSpecs:
    def test_task_requires_inputs(self):
        with pytest.raises(WorkloadError):
            TaskSpec(name="t", inputs=())

    def test_task_rejects_zero_input(self):
        with pytest.raises(WorkloadError):
            TaskSpec(name="t", inputs=(("h0", 0.0),))

    def test_stage_requires_tasks(self):
        with pytest.raises(WorkloadError):
            StageSpec(name="s", tasks=())

    def test_many_to_one_single_task(self):
        task = TaskSpec(name="t", inputs=(("h0", 1.0),))
        with pytest.raises(WorkloadError):
            StageSpec(name="s", tasks=(task, task), many_to_one=True)

    def test_mapreduce_builder_shapes(self):
        job = mapreduce_job(
            "j",
            input_blocks=[("h0", 4e9), ("h1", 4e9), ("h2", 4e9)],
            num_mappers=2,
            shuffle_fraction=0.5,
            num_reducers=2,
        )
        assert len(job.stages) == 2
        map_stage, shuffle_stage = job.stages
        assert len(map_stage.tasks) == 2
        assert len(shuffle_stage.tasks) == 2
        assert not shuffle_stage.many_to_one  # two reducers
        # Shuffle volume = half the input, split across two reducers.
        total_shuffle = sum(
            size for task in shuffle_stage.tasks for _n, size in task.inputs
        )
        assert total_shuffle == pytest.approx(12e9 * 0.5)
        # Shuffle inputs reference mapper placeholders.
        assert all(
            node.startswith("@task:j/map/")
            for task in shuffle_stage.tasks
            for node, _s in task.inputs
        )

    def test_mapreduce_validates(self):
        with pytest.raises(WorkloadError):
            mapreduce_job("j", input_blocks=[], num_mappers=1)
        with pytest.raises(WorkloadError):
            mapreduce_job("j", input_blocks=[("h0", 1.0)], num_mappers=0)

    def test_dag_job_chains_stages(self):
        s1 = StageSpec("a", (TaskSpec("t1", (("h0", 1.0),)),))
        s2 = StageSpec("b", (TaskSpec("t2", (("@task:t1", 1.0),)),))
        job = dag_job("d", [s1, s2])
        assert [s.name for s in job.stages] == ["a", "b"]


def scheduler_setup(hosts=8):
    engine = Engine()
    fabric = NetworkFabric(
        engine, single_switch(hosts), make_coflow_allocator("varys")
    )
    tracker = CoflowTracker(fabric)
    cluster = Cluster(fabric.topology)
    neat = build_neat(fabric, coflow_predictor="tcf")
    return engine, JobScheduler(cluster, tracker, neat), cluster


class TestJobScheduler:
    def test_mapreduce_end_to_end(self):
        engine, sched, cluster = scheduler_setup()
        job = mapreduce_job(
            "job0",
            input_blocks=[("h000", 2e9), ("h001", 2e9)],
            num_mappers=2,
            shuffle_fraction=0.5,
        )
        sched.submit_job(job)
        engine.run()
        result = sched.results[0]
        assert result.completion_time > 0
        assert set(result.stage_finish_times) == {"job0/map", "job0/shuffle"}
        assert len(result.task_hosts) == 3
        # Map stage finished before (or when) the shuffle stage did.
        assert (
            result.stage_finish_times["job0/map"]
            <= result.stage_finish_times["job0/shuffle"]
        )

    def test_resources_released_after_job(self):
        engine, sched, cluster = scheduler_setup()
        job = mapreduce_job(
            "job0",
            input_blocks=[("h000", 1e9)],
            num_mappers=1,
        )
        sched.submit_job(job)
        engine.run()
        assert all(
            cluster.node(h).used == Resources()
            for h in cluster.hosts()
        )

    def test_map_locality_gives_zero_map_time(self):
        """With NEAT, a mapper runs where its only block lives (local read)."""
        engine, sched, cluster = scheduler_setup()
        job = mapreduce_job(
            "job0", input_blocks=[("h000", 2e9)], num_mappers=1
        )
        sched.submit_job(job)
        engine.run()
        result = sched.results[0]
        assert result.task_hosts["job0/map/0"] == "h000"
        assert result.stage_finish_times["job0/map"] == pytest.approx(0.0)

    def test_two_concurrent_jobs_complete(self):
        engine, sched, cluster = scheduler_setup()
        for j in range(2):
            sched.submit_job(
                mapreduce_job(
                    f"job{j}",
                    input_blocks=[(f"h00{j}", 1e9), (f"h00{j+2}", 1e9)],
                    num_mappers=2,
                )
            )
        engine.run()
        assert len(sched.results) == 2

    def test_unresolved_placeholder_raises(self):
        engine, sched, cluster = scheduler_setup()
        bad = JobSpec(
            name="bad",
            stages=(
                StageSpec(
                    "s",
                    (TaskSpec("t", (("@task:ghost", 1.0),)),),
                ),
            ),
        )
        with pytest.raises(WorkloadError):
            sched.submit_job(bad)

    def test_exclude_data_nodes(self):
        engine = Engine()
        fabric = NetworkFabric(
            engine, single_switch(4), make_coflow_allocator("varys")
        )
        tracker = CoflowTracker(fabric)
        cluster = Cluster(fabric.topology)
        neat = build_neat(fabric, coflow_predictor="tcf")
        sched = JobScheduler(
            cluster, tracker, neat, exclude_data_nodes=True
        )
        job = mapreduce_job("j", input_blocks=[("h000", 1e9)], num_mappers=1)
        sched.submit_job(job)
        engine.run()
        assert sched.results[0].task_hosts["j/map/0"] != "h000"
