"""Golden-trace regression corpus: byte-compare against committed files.

The corpus under ``tests/goldens/`` pins one contended 20-host Clos
scenario per policy (see ``regen_goldens.py`` for the exact knobs and
the regeneration command).  The simulator's completion records and JSONL
trace must match the committed bytes exactly — under the Python backend
*and* the numpy kernel backend, which locks the kernels' bit-identity
contract to a fixed external artifact rather than only to each other.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.network import kernels

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

_spec = importlib.util.spec_from_file_location(
    "regen_goldens", GOLDEN_DIR / "regen_goldens.py"
)
regen_goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_spec and regen_goldens)

BACKENDS = kernels.available_backends()


@pytest.mark.parametrize("policy", regen_goldens.POLICIES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_corpus_byte_identical(policy, backend, monkeypatch):
    # Route even tiny priority groups through the vectorized kernel so
    # the numpy leg actually exercises it on this small scenario.
    if backend == "numpy":
        monkeypatch.setattr(kernels, "GROUP_CUTOFF", 1)
    records_text, trace_text = regen_goldens.generate(policy, backend)
    golden_records = (
        GOLDEN_DIR / f"{policy}.records.jsonl"
    ).read_text(encoding="utf-8")
    golden_trace = (GOLDEN_DIR / f"{policy}.trace.jsonl").read_text(
        encoding="utf-8"
    )
    assert records_text == golden_records, (
        f"{policy}/{backend}: completion records diverge from the golden "
        "corpus; if intentional, regenerate via "
        "`PYTHONPATH=src python tests/goldens/regen_goldens.py` and review"
    )
    assert trace_text == golden_trace, (
        f"{policy}/{backend}: JSONL trace diverges from the golden corpus"
    )
