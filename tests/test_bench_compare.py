"""Perf-regression gate and exporter tests (no real benchmarks run).

Covers the benchgate diff semantics (direction-aware regressions,
environment-fingerprint warnings, threshold parsing), the bench-compare
CLI exit codes on synthetic artifacts, the Prometheus text exporter, the
snapshot report renderer, and the merge_snapshots edge cases
(heterogeneous kinds, empty, singleton).
"""

from __future__ import annotations

import json

import pytest

from repro.benchgate import (
    compare_artifacts,
    load_artifact,
    parse_max_regress,
    render_comparison,
)
from repro.telemetry import MetricsRegistry, merge_snapshots
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.report import render_snapshot

BASELINE = {
    "perf_fabric_event_throughput": {
        "hosts": 32,
        "wall_seconds": 0.10,
        "events_per_second": 4000.0,
    },
    "incremental_allocation_speedup": {
        "full_wall_seconds": 5.0,
        "incremental_wall_seconds": 0.5,
        "speedup": 10.0,
    },
    "environment": {"python": "3.11.7", "machine": "x86_64"},
}


def _current(**tweaks):
    current = json.loads(json.dumps(BASELINE))
    for dotted, value in tweaks.items():
        section, key = dotted.split(":")
        current[section][key] = value
    return current


# ----------------------------------------------------------------------
# Diff semantics
# ----------------------------------------------------------------------
class TestCompareArtifacts:
    def test_unchanged_artifact_is_clean(self):
        result = compare_artifacts(BASELINE, _current(), max_regress=0.2)
        assert result.ok
        assert result.regressions == []
        assert result.environment_mismatch == []
        # config fields (hosts) are never compared
        assert not any(d.metric == "hosts" for d in result.deltas)

    def test_slower_wall_clock_regresses(self):
        current = _current(**{"perf_fabric_event_throughput:wall_seconds": 0.15})
        result = compare_artifacts(BASELINE, current, max_regress=0.2)
        bad = result.regressions
        assert [(d.section, d.metric) for d in bad] == [
            ("perf_fabric_event_throughput", "wall_seconds")
        ]
        assert bad[0].regression == pytest.approx(0.5)

    def test_lower_throughput_regresses(self):
        current = _current(
            **{"perf_fabric_event_throughput:events_per_second": 2000.0}
        )
        result = compare_artifacts(BASELINE, current, max_regress=0.2)
        assert [d.metric for d in result.regressions] == ["events_per_second"]

    def test_improvements_do_not_regress(self):
        current = _current(
            **{
                "perf_fabric_event_throughput:wall_seconds": 0.05,
                "incremental_allocation_speedup:speedup": 20.0,
            }
        )
        assert compare_artifacts(BASELINE, current, max_regress=0.2).ok

    def test_within_threshold_passes(self):
        current = _current(**{"perf_fabric_event_throughput:wall_seconds": 0.119})
        assert compare_artifacts(BASELINE, current, max_regress=0.2).ok

    def test_environment_mismatch_warns_but_does_not_fail(self):
        current = _current(**{"environment:python": "3.12.1"})
        result = compare_artifacts(BASELINE, current, max_regress=0.2)
        assert result.ok
        assert any("python" in item for item in result.environment_mismatch)
        text = render_comparison(result, max_regress=0.2)
        assert "WARNING" in text and "fingerprints differ" in text

    def test_missing_sections_are_notes_not_failures(self):
        current = _current()
        del current["incremental_allocation_speedup"]
        current["brand_new_bench"] = {"wall_seconds": 1.0}
        result = compare_artifacts(BASELINE, current, max_regress=0.2)
        assert result.ok
        assert any("only in baseline" in n for n in result.notes)
        assert any("only in current" in n for n in result.notes)

    def test_service_metric_directions(self):
        # Streaming-service metrics: placements/sec is higher-better,
        # decision latency (any *_decision_latency_seconds key) is
        # lower-better.
        base = {
            "service_placements_per_second": {
                "placements_per_second": 1000.0,
            },
            "service_p99_decision_latency": {
                "p99_decision_latency_seconds": 0.001,
            },
        }
        worse = json.loads(json.dumps(base))
        worse["service_placements_per_second"]["placements_per_second"] = 500.0
        worse["service_p99_decision_latency"][
            "p99_decision_latency_seconds"
        ] = 0.01
        result = compare_artifacts(base, worse, max_regress=0.2)
        assert sorted((d.section, d.direction) for d in result.regressions) == [
            ("service_p99_decision_latency", "lower"),
            ("service_placements_per_second", "higher"),
        ]
        better = json.loads(json.dumps(base))
        better["service_placements_per_second"][
            "placements_per_second"
        ] = 2000.0
        better["service_p99_decision_latency"][
            "p99_decision_latency_seconds"
        ] = 0.0001
        assert compare_artifacts(base, better, max_regress=0.2).ok

    def test_render_marks_regressions(self):
        current = _current(**{"incremental_allocation_speedup:speedup": 2.0})
        result = compare_artifacts(BASELINE, current, max_regress=0.2)
        text = render_comparison(result, max_regress=0.2)
        assert "!! incremental_allocation_speedup.speedup" in text
        assert "1 metric(s) regressed" in text


class TestParsing:
    def test_parse_max_regress(self):
        assert parse_max_regress("20%") == pytest.approx(0.2)
        assert parse_max_regress("0.2") == pytest.approx(0.2)
        assert parse_max_regress(" 5% ") == pytest.approx(0.05)
        with pytest.raises(ValueError):
            parse_max_regress("-1%")
        with pytest.raises(ValueError):
            parse_max_regress("fast")

    def test_load_artifact_normalises_legacy_layout(self, tmp_path):
        legacy = tmp_path / "legacy.json"
        legacy.write_text(
            json.dumps({"benchmark": "old_cell", "wall_seconds": 1.0})
        )
        assert load_artifact(str(legacy)) == {
            "old_cell": {"wall_seconds": 1.0}
        }
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_artifact(str(bad))


# ----------------------------------------------------------------------
# CLI exit codes (the CI contract)
# ----------------------------------------------------------------------
class TestBenchCompareCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_on_unchanged(self, tmp_path, capsys):
        from repro.__main__ import main

        base = self.write(tmp_path, "base.json", BASELINE)
        cur = self.write(tmp_path, "cur.json", _current())
        assert main(["bench-compare", base, cur]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        from repro.__main__ import main

        base = self.write(tmp_path, "base.json", BASELINE)
        cur = self.write(
            tmp_path, "cur.json",
            _current(**{"perf_fabric_event_throughput:wall_seconds": 0.13}),
        )
        assert main(["bench-compare", base, cur, "--max-regress", "20%"]) == 1
        assert "regressed" in capsys.readouterr().out
        # a looser threshold lets the same slowdown through
        capsys.readouterr()
        assert main(["bench-compare", base, cur, "--max-regress", "50%"]) == 0


# ----------------------------------------------------------------------
# Prometheus exporter
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_full_snapshot_mapping(self):
        reg = MetricsRegistry()
        reg.counter("bus.messages").inc(7)
        reg.gauge("engine.heap").set(3.0)
        with reg.timer("placement").time():
            pass
        for v in (1.0, 2.0, 3.0):
            reg.histogram("fct").observe(v)
        snapshot = reg.as_dict()
        snapshot["profile"] = {
            "flame": {
                "engine.event;alloc": {
                    "calls": 2,
                    "inclusive_seconds": 0.5,
                    "exclusive_seconds": 0.25,
                },
            }
        }
        text = render_prometheus(snapshot)
        assert "# TYPE repro_bus_messages_total counter" in text
        assert "repro_bus_messages_total 7.0" in text
        assert "repro_engine_heap 3.0" in text
        assert "repro_placement_seconds_total" in text
        assert "repro_placement_calls_total 1.0" in text
        assert '# TYPE repro_fct histogram' in text
        assert 'repro_fct_bucket{le="+Inf"} 3.0' in text
        assert "repro_fct_sum 6.0" in text
        assert "repro_fct_count 3.0" in text
        # Real cumulative buckets from the sketch: monotone, closed by
        # +Inf, and consistent with the total count.
        bucket_counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_fct_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 3.0
        assert (
            'repro_span_inclusive_seconds_total{path="engine.event;alloc"} 0.5'
            in text
        )
        assert text.endswith("\n")

    def test_name_sanitisation_and_prefix(self):
        text = render_prometheus(
            {"counters": {"weird-name.1": 2}}, prefix="x_"
        )
        assert "x_weird_name_1_total 2.0" in text

    def test_empty_snapshot(self):
        assert render_prometheus({}) == ""


# ----------------------------------------------------------------------
# Snapshot report renderer (repro report without --prometheus)
# ----------------------------------------------------------------------
class TestRenderSnapshot:
    def test_renders_sections_and_profile(self):
        reg = MetricsRegistry()
        reg.counter("fabric.flows_completed").inc(9)
        snapshot = reg.as_dict()
        snapshot["profile"] = {
            "flame": {
                "engine.event": {
                    "calls": 4,
                    "inclusive_seconds": 1.0,
                    "exclusive_seconds": 1.0,
                },
            },
            "labels": {},
        }
        snapshot["placement_decisions"] = {
            "decisions": 5, "joined": 4, "with_error": 3,
        }
        text = render_snapshot(snapshot)
        assert "fabric.flows_completed" in text
        assert "span profile" in text and "engine.event" in text
        assert "recorded=5" in text

    def test_merged_snapshot_without_quantiles(self):
        merged = merge_snapshots(
            [
                MetricsRegistry().as_dict(),
                {
                    "histograms": {
                        "fct": {"count": 2, "mean": 1.5, "min": 1, "max": 2}
                    }
                },
            ]
        )
        text = render_snapshot(merged)
        assert "fct: n=2 mean=1.5 max=2" in text  # no p50/p95 claimed


# ----------------------------------------------------------------------
# merge_snapshots edge cases (registry satellite)
# ----------------------------------------------------------------------
class TestMergeSnapshots:
    def test_empty_merge(self):
        merged = merge_snapshots([])
        assert merged == {
            "counters": {}, "gauges": {}, "histograms": {}, "timers": {},
        }

    def test_singleton_merge_preserves_values(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2.5)
        with reg.timer("t").time():
            pass
        for v in (1.0, 3.0):
            reg.histogram("h").observe(v)
        merged = merge_snapshots([reg.as_dict()])
        assert merged["counters"]["c"] == 3
        assert merged["gauges"]["g"] == 2.5
        assert merged["timers"]["t"]["calls"] == 1
        hist = merged["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["mean"] == 2.0
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0
        # Sketch-backed snapshots keep their quantiles through a merge.
        assert hist["p50"] == pytest.approx(1.0, rel=0.02)
        assert hist["p99"] == pytest.approx(3.0, rel=0.02)

    def test_heterogeneous_same_run_kinds_error(self):
        a = {"counters": {"m": 1.0}}
        b = {"histograms": {"m": {"count": 1, "mean": 2.0, "min": 2, "max": 2}}}
        with pytest.raises(ValueError, match="heterogeneous.*'m'"):
            merge_snapshots([a, b])

    def test_heterogeneous_counter_vs_gauge_errors(self):
        with pytest.raises(ValueError, match="counter.*gauge|gauge.*counter"):
            merge_snapshots(
                [{"counters": {"m": 1.0}}, {"gauges": {"m": 5.0}}]
            )

    def test_heterogeneous_empty_histogram_still_claims_kind(self):
        """An empty histogram must still conflict with a counter of the
        same name — the kind claim happens before the count==0 skip."""
        with pytest.raises(ValueError, match="heterogeneous"):
            merge_snapshots(
                [
                    {"histograms": {"m": {"count": 0}}},
                    {"counters": {"m": 1.0}},
                ]
            )

    def test_homogeneous_merge_sums_and_maxes(self):
        a = MetricsRegistry()
        a.counter("c").inc(1)
        a.gauge("g").set(1.0)
        b = MetricsRegistry()
        b.counter("c").inc(2)
        b.gauge("g").set(5.0)
        merged = merge_snapshots([a.as_dict(), b.as_dict()])
        assert merged["counters"]["c"] == 3
        assert merged["gauges"]["g"] == 5.0  # high-water semantics
