"""Smoke tests: every shipped example runs cleanly and prints its story.

These protect deliverable (b): the examples are user-facing documentation
and must keep working as the library evolves.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["Achieved completion times", "Control messages"],
    "policy_comparison.py": ["network scheduling: FAIR", "mean gaps"],
    "mapreduce_cluster.py": ["neat", "minload", "jobs"],
    "coflow_shuffle.py": ["mean CCT", "per-size breakdown"],
    "custom_policy.py": ["weighted-fair", "mean gap from optimal"],
    "dag_analytics.py": ["DAG jobs", "stage finish times"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs(name):
    output = run_example(name)
    for token in CASES[name]:
        assert token in output, f"{name} output missing {token!r}"


def test_every_example_is_covered():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(CASES), (
        "examples/ and the smoke-test table drifted apart"
    )
